//! Collective-communication stress: total exchange (all-to-all) has zero
//! temporal locality — the regime where §3.2 says the compiler should
//! emit *no* circuits. Verify (a) the trace shape matches that judgement,
//! (b) the pattern drains deadlock-free on both transports, and (c) CLRP
//! survives the pathological case where it tries to cache circuits for
//! one-shot destinations anyway.

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::topology::Topology;
use wavesim::verify::check_probe_livelock;
use wavesim::workloads::CarpTrace;
use wavesim_bench::{run_carp_trace, RunSpec};

#[test]
fn total_exchange_drains_on_wormhole() {
    let topo = Topology::mesh(&[6, 6]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::WormholeOnly,
            ..WaveConfig::default()
        },
    );
    let mut trace = CarpTrace::total_exchange(&topo, 16, 60);
    let sends = trace.num_sends() as u64;
    let r = run_carp_trace(&mut net, &mut trace, RunSpec::standard(0, 4_000));
    assert!(r.drained && !r.stalled, "{r:?}");
    assert_eq!(r.delivered, sends);
    assert_eq!(r.circuit_fraction, 0.0);
}

#[test]
fn total_exchange_survives_clrp_circuit_thrash() {
    // CLRP will try (and mostly waste) circuits for one-shot pairs; the
    // protocol must stay deadlock- and livelock-free and deliver all the
    // same.
    let topo = Topology::mesh(&[6, 6]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            cache_capacity: 2,
            ..WaveConfig::default()
        },
    );
    let mut trace = CarpTrace::total_exchange(&topo, 16, 60);
    let sends = trace.num_sends() as u64;
    let r = run_carp_trace(&mut net, &mut trace, RunSpec::standard(0, 4_000));
    assert!(r.drained && !r.stalled, "{r:?}");
    assert_eq!(r.delivered, sends);
    let live = check_probe_livelock(&net);
    assert!(live.livelock_free, "{live:?}");
    // Thrash happened: far more establishment attempts than reuses.
    assert!(r.wave.cache_misses > r.wave.cache_hits);
}

#[test]
fn carp_correctly_skips_circuits_for_all_to_all() {
    // Through a CARP network, the total-exchange trace (which contains no
    // ESTABLISH ops — the compiler judged the locality insufficient) must
    // use pure wormhole and never probe.
    let topo = Topology::mesh(&[5, 5]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Carp,
            ..WaveConfig::default()
        },
    );
    let mut trace = CarpTrace::total_exchange(&topo, 24, 80);
    let sends = trace.num_sends() as u64;
    let r = run_carp_trace(&mut net, &mut trace, RunSpec::standard(0, 4_000));
    assert!(r.drained && !r.stalled);
    assert_eq!(r.delivered, sends);
    assert_eq!(r.wave.probes_sent, 0, "no ESTABLISH ops, no probes");
    assert_eq!(r.circuit_fraction, 0.0);
}
