//! Randomized-but-deterministic tests over the core invariants:
//!
//! * conservation — every accepted message is delivered exactly once,
//!   under arbitrary loads, lengths, protocols, and cache pressures;
//! * the §4 theorems as properties — no stall, probe steps within bound,
//!   structural audit clean — over randomly drawn configurations;
//! * topology algebra (coordinate/link round-trips, distance symmetry)
//!   over random shapes;
//! * routing candidates are always minimal and in range.
//!
//! Configurations are drawn from a seeded [`SimRng`] (the offline build
//! has no property-testing framework), so each case sweeps many random
//! configurations while staying exactly reproducible.

use std::collections::HashSet;
use wavesim::core::{ProtocolKind, ReplacementPolicy, WaveConfig, WaveNetwork};
use wavesim::network::Message;
use wavesim::sim::SimRng;
use wavesim::topology::{NodeId, RoutingKind, Topology};
use wavesim::verify::check_probe_livelock;
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Clrp,
    ProtocolKind::WormholeOnly,
    ProtocolKind::Carp,
];

const POLICIES: [ReplacementPolicy; 4] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::Lfu,
    ReplacementPolicy::Fifo,
    ReplacementPolicy::Random,
];

/// Conservation + deadlock/livelock freedom over random configs.
#[test]
fn random_runs_deliver_everything() {
    let mut draw = SimRng::new(0xc05e7e);
    for case in 0..24 {
        let seed = draw.below(1_000);
        let load = 0.02 + draw.unit() * 0.58;
        let len = 1 + draw.below(159) as u32;
        let cache = 1 + draw.index(5);
        let k = 1 + draw.below(3) as u8;
        let m = draw.below(4) as u8;
        let protocol = *draw.choose(&PROTOCOLS).unwrap();
        let policy = *draw.choose(&POLICIES).unwrap();
        let torus = draw.chance(0.5);
        let topo = if torus {
            Topology::torus(&[4, 4])
        } else {
            Topology::mesh(&[4, 4])
        };
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol,
                cache_capacity: cache,
                k,
                misroutes: m,
                replacement: policy,
                seed,
                ..WaveConfig::default()
            },
        );
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load,
                pattern: TrafficPattern::Uniform,
                len: LengthDist::Fixed(len),
                seed,
                stop_at: 1_500,
            },
        );
        let mut delivered: Vec<u64> = Vec::new();
        let mut now = 0u64;
        loop {
            for msg in src.poll(now) {
                net.send(now, msg);
            }
            if now >= 1_500 && !net.busy() {
                break;
            }
            net.tick(now);
            for d in net.drain_deliveries() {
                delivered.push(d.msg.id.0);
            }
            now += 1;
            assert!(now < 3_000_000, "case {case}: run refused to drain");
        }
        // Exactly-once delivery.
        let unique: HashSet<u64> = delivered.iter().copied().collect();
        assert_eq!(unique.len(), delivered.len(), "case {case}: duplicate");
        assert_eq!(
            delivered.len() as u64,
            src.generated(),
            "case {case}: lost messages"
        );
        // Theorems 3/4 as a property.
        let live = check_probe_livelock(&net);
        assert!(live.livelock_free, "case {case}: {live:?}");
        // Structural consistency.
        let audit = net.audit();
        assert!(audit.is_empty(), "case {case}: {audit:?}");
    }
}

/// Coordinate/id round-trips and distance metric laws on random shapes.
#[test]
fn topology_algebra() {
    let mut draw = SimRng::new(0x7090);
    for _ in 0..24 {
        let dims = [
            2 + draw.below(4) as u16,
            2 + draw.below(4) as u16,
            2 + draw.below(2) as u16,
        ];
        let torus = draw.chance(0.5);
        let topo = if torus && dims.iter().all(|&d| d >= 3) {
            Topology::torus(&dims)
        } else {
            Topology::mesh(&dims)
        };
        let mut rng = SimRng::new(draw.next_u64());
        for _ in 0..32 {
            let a = NodeId(rng.below(u64::from(topo.num_nodes())) as u32);
            let b = NodeId(rng.below(u64::from(topo.num_nodes())) as u32);
            // Round trip.
            assert_eq!(topo.node(topo.coords(a)), a);
            // Distance symmetry, identity, triangle inequality via a midpoint.
            assert_eq!(topo.distance(a, b), topo.distance(b, a));
            assert_eq!(topo.distance(a, a), 0);
            let c = NodeId(rng.below(u64::from(topo.num_nodes())) as u32);
            assert!(topo.distance(a, b) <= topo.distance(a, c) + topo.distance(c, b));
            // min_ports steps reduce distance by exactly one.
            if a != b {
                for p in topo.min_ports(a, b) {
                    let n = topo.neighbor(a, p).expect("minimal ports exist");
                    assert_eq!(topo.distance(n, b) + 1, topo.distance(a, b));
                }
            }
        }
        // Link involution over every link.
        for l in topo.links() {
            assert_eq!(topo.reverse_link(topo.reverse_link(l)), l);
        }
    }
}

/// Routing functions only ever emit minimal, in-range candidates, and
/// at least one per reachable pair.
#[test]
fn routing_candidates_are_sound() {
    let mut draw = SimRng::new(0x50d);
    for _ in 0..16 {
        let torus = draw.chance(0.5);
        let adaptive = draw.chance(0.5);
        let w = 1 + draw.below(4) as u8;
        let topo = if torus {
            Topology::torus(&[4, 4])
        } else {
            Topology::mesh(&[4, 4])
        };
        let kind = if adaptive {
            RoutingKind::Adaptive
        } else {
            RoutingKind::Deterministic
        };
        // Clamp w to the function's legal minimum.
        let w = match (kind, torus) {
            (RoutingKind::Deterministic, false) => w,
            (RoutingKind::Deterministic, true) => (w.max(2) / 2) * 2,
            (RoutingKind::Adaptive, false) => w.max(2),
            (RoutingKind::Adaptive, true) => w.max(3),
        };
        let routing = kind.build(&topo, w);
        let mut out = Vec::new();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a == b {
                    continue;
                }
                out.clear();
                routing.route(&topo, a, b, &mut out);
                assert!(!out.is_empty());
                for c in &out {
                    assert!(c.vc < routing.vcs_per_link());
                    let n = topo.neighbor(a, c.port).expect("no boundary candidates");
                    assert_eq!(topo.distance(n, b) + 1, topo.distance(a, b));
                }
            }
        }
    }
}

/// Scripted single-pair traffic: circuit deliveries preserve FIFO
/// order regardless of message sizes.
#[test]
fn circuit_fifo_property() {
    let mut draw = SimRng::new(0xf1f0);
    for case in 0..24 {
        let seed = draw.next_u64();
        let n = 2 + draw.index(10);
        let lens: Vec<u32> = (0..n).map(|_| 1 + draw.below(199) as u32).collect();
        let topo = Topology::mesh(&[4, 4]);
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                seed,
                ..WaveConfig::default()
            },
        );
        let src = NodeId(0);
        let dest = NodeId(15);
        for (i, len) in lens.iter().enumerate() {
            net.send(0, Message::new(i as u64, src, dest, *len, 0));
        }
        let mut order = Vec::new();
        let mut now = 0;
        while net.busy() {
            net.tick(now);
            for d in net.drain_deliveries() {
                order.push(d.msg.id.0);
            }
            now += 1;
            assert!(now < 1_000_000, "case {case}");
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(order, sorted, "case {case}");
    }
}
