//! Property-based tests (proptest) over the core invariants:
//!
//! * conservation — every accepted message is delivered exactly once,
//!   under arbitrary loads, lengths, protocols, and cache pressures;
//! * the §4 theorems as properties — no stall, probe steps within bound,
//!   structural audit clean — over randomly drawn configurations;
//! * topology algebra (coordinate/link round-trips, distance symmetry)
//!   over random shapes;
//! * routing candidates are always minimal and in range.

use proptest::prelude::*;
use std::collections::HashSet;
use wavesim::core::{ProtocolKind, ReplacementPolicy, WaveConfig, WaveNetwork};
use wavesim::network::Message;
use wavesim::sim::SimRng;
use wavesim::topology::{NodeId, RoutingKind, Topology};
use wavesim::verify::check_probe_livelock;
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};

fn arb_protocol() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Clrp),
        Just(ProtocolKind::WormholeOnly),
        Just(ProtocolKind::Carp),
    ]
}

fn arb_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Lfu),
        Just(ReplacementPolicy::Fifo),
        Just(ReplacementPolicy::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    /// Conservation + deadlock/livelock freedom over random configs.
    #[test]
    fn random_runs_deliver_everything(
        seed in 0u64..1_000,
        load in 0.02f64..0.6,
        len in 1u32..160,
        cache in 1usize..6,
        k in 1u8..4,
        m in 0u8..4,
        protocol in arb_protocol(),
        policy in arb_policy(),
        torus in any::<bool>(),
    ) {
        let topo = if torus { Topology::torus(&[4, 4]) } else { Topology::mesh(&[4, 4]) };
        let mut net = WaveNetwork::new(topo.clone(), WaveConfig {
            protocol,
            cache_capacity: cache,
            k,
            misroutes: m,
            replacement: policy,
            seed,
            ..WaveConfig::default()
        });
        let mut src = TrafficSource::new(topo, TrafficConfig {
            load,
            pattern: TrafficPattern::Uniform,
            len: LengthDist::Fixed(len),
            seed,
            stop_at: 1_500,
        });
        let mut delivered: Vec<u64> = Vec::new();
        let mut now = 0u64;
        loop {
            for msg in src.poll(now) {
                net.send(now, msg);
            }
            if now >= 1_500 && !net.busy() {
                break;
            }
            net.tick(now);
            for d in net.drain_deliveries() {
                delivered.push(d.msg.id.0);
            }
            now += 1;
            prop_assert!(now < 3_000_000, "run refused to drain (deadlock?)");
        }
        // Exactly-once delivery.
        let unique: HashSet<u64> = delivered.iter().copied().collect();
        prop_assert_eq!(unique.len(), delivered.len(), "duplicate delivery");
        prop_assert_eq!(delivered.len() as u64, src.generated(), "lost messages");
        // Theorems 3/4 as a property.
        let live = check_probe_livelock(&net);
        prop_assert!(live.livelock_free, "{:?}", live);
        // Structural consistency.
        let audit = net.audit();
        prop_assert!(audit.is_empty(), "{:?}", audit);
    }

    /// Coordinate/id round-trips and distance metric laws on random shapes.
    #[test]
    fn topology_algebra(
        d0 in 2u16..6,
        d1 in 2u16..6,
        d2 in 2u16..4,
        torus in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let dims = [d0, d1, d2];
        let topo = if torus && dims.iter().all(|&d| d >= 3) {
            Topology::torus(&dims)
        } else {
            Topology::mesh(&dims)
        };
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            let a = NodeId(rng.below(u64::from(topo.num_nodes())) as u32);
            let b = NodeId(rng.below(u64::from(topo.num_nodes())) as u32);
            // Round trip.
            prop_assert_eq!(topo.node(topo.coords(a)), a);
            // Distance symmetry, identity, triangle inequality via a midpoint.
            prop_assert_eq!(topo.distance(a, b), topo.distance(b, a));
            prop_assert_eq!(topo.distance(a, a), 0);
            let c = NodeId(rng.below(u64::from(topo.num_nodes())) as u32);
            prop_assert!(topo.distance(a, b) <= topo.distance(a, c) + topo.distance(c, b));
            // min_ports steps reduce distance by exactly one.
            if a != b {
                for p in topo.min_ports(a, b) {
                    let n = topo.neighbor(a, p).expect("minimal ports exist");
                    prop_assert_eq!(topo.distance(n, b) + 1, topo.distance(a, b));
                }
            }
        }
        // Link involution over every link.
        for l in topo.links() {
            prop_assert_eq!(topo.reverse_link(topo.reverse_link(l)), l);
        }
    }

    /// Routing functions only ever emit minimal, in-range candidates, and
    /// at least one per reachable pair.
    #[test]
    fn routing_candidates_are_sound(
        torus in any::<bool>(),
        adaptive in any::<bool>(),
        w in 1u8..5,
    ) {
        let topo = if torus { Topology::torus(&[4, 4]) } else { Topology::mesh(&[4, 4]) };
        let kind = if adaptive { RoutingKind::Adaptive } else { RoutingKind::Deterministic };
        // Clamp w to the function's legal minimum.
        let w = match (kind, torus) {
            (RoutingKind::Deterministic, false) => w,
            (RoutingKind::Deterministic, true) => (w.max(2) / 2) * 2,
            (RoutingKind::Adaptive, false) => w.max(2),
            (RoutingKind::Adaptive, true) => w.max(3),
        };
        let routing = kind.build(&topo, w);
        let mut out = Vec::new();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a == b { continue; }
                out.clear();
                routing.route(&topo, a, b, &mut out);
                prop_assert!(!out.is_empty());
                for c in &out {
                    prop_assert!(c.vc < routing.vcs_per_link());
                    let n = topo.neighbor(a, c.port).expect("no boundary candidates");
                    prop_assert_eq!(topo.distance(n, b) + 1, topo.distance(a, b));
                }
            }
        }
    }

    /// Scripted single-pair traffic: circuit deliveries preserve FIFO
    /// order regardless of message sizes.
    #[test]
    fn circuit_fifo_property(
        lens in proptest::collection::vec(1u32..200, 2..12),
        seed in any::<u64>(),
    ) {
        let topo = Topology::mesh(&[4, 4]);
        let mut net = WaveNetwork::new(topo.clone(), WaveConfig {
            protocol: ProtocolKind::Clrp,
            seed,
            ..WaveConfig::default()
        });
        let src = NodeId(0);
        let dest = NodeId(15);
        for (i, len) in lens.iter().enumerate() {
            net.send(0, Message::new(i as u64, src, dest, *len, 0));
        }
        let mut order = Vec::new();
        let mut now = 0;
        while net.busy() {
            net.tick(now);
            for d in net.drain_deliveries() {
                order.push(d.msg.id.0);
            }
            now += 1;
            prop_assert!(now < 1_000_000);
        }
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(order, sorted);
    }
}
