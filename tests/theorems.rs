//! Integration tests for the paper's §4 theorems, run across crates:
//! the protocols (wavesim-core) under workload (wavesim-workloads) with
//! the detectors armed (wavesim-verify).
//!
//! Positive runs assert the theorems hold; the negative control asserts
//! the detectors actually detect (a deliberately broken routing function
//! must deadlock and be diagnosed).

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::network::{Message, WormholeConfig, WormholeFabric};
use wavesim::topology::{Coords, NaiveTorusDor, RoutingKind, Topology};
use wavesim::verify::{check_fabric, check_probe_livelock, check_wave};
use wavesim::workloads::{
    CarpOp, CarpTrace, LengthDist, TrafficConfig, TrafficPattern, TrafficSource,
};
use wavesim_bench::{run_open_loop, RunSpec};

fn traffic(topo: &Topology, load: f64, seed: u64) -> TrafficSource {
    TrafficSource::new(
        topo.clone(),
        TrafficConfig {
            load,
            pattern: TrafficPattern::Uniform,
            len: LengthDist::Bimodal {
                short: 8,
                long: 128,
                frac_long: 0.25,
            },
            seed,
            stop_at: u64::MAX,
        },
    )
}

/// Theorem 1 (CLRP deadlock freedom), on both topology families, at a
/// load beyond wormhole saturation.
#[test]
fn theorem1_clrp_is_deadlock_free_under_saturation() {
    for topo in [Topology::mesh(&[6, 6]), Topology::torus(&[6, 6])] {
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                cache_capacity: 2, // extra churn: evictions + force probes
                ..WaveConfig::default()
            },
        );
        let mut src = traffic(&topo, 0.9, 17);
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(1_000, 8_000));
        assert!(!r.stalled, "CLRP stalled on {topo:?}");
        assert!(r.drained, "CLRP failed to drain on {topo:?}");
        assert_eq!(r.sent, r.delivered, "messages lost on {topo:?}");
        let rep = check_wave(&net, r.end, 10_000);
        assert!(!rep.deadlocked, "{rep:?}");
    }
}

/// Theorem 2 (CARP deadlock freedom): dense phased traces with
/// overlapping circuits on both topologies.
#[test]
fn theorem2_carp_is_deadlock_free() {
    for topo in [Topology::mesh(&[6, 6]), Topology::torus(&[5, 5])] {
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol: ProtocolKind::Carp,
                ..WaveConfig::default()
            },
        );
        let mut trace = CarpTrace::pairwise(
            &topo,
            &wavesim::workloads::carp::PairwiseSpec {
                partners: 4,
                phases: 3,
                msgs_per_burst: 6,
                len: 96,
                phase_gap: 3_000,
                setup_lead: 300,
                send_gap: 20,
                seed: 23,
                ..wavesim::workloads::carp::PairwiseSpec::default()
            },
        );
        let sends = trace.num_sends() as u64;
        let mut now = 0;
        let horizon = trace.horizon();
        let mut delivered = 0u64;
        loop {
            for op in trace.due(now) {
                match op {
                    CarpOp::Establish { src, dest } => net.carp_establish(now, src, dest),
                    CarpOp::Teardown { src, dest } => net.carp_teardown(now, src, dest),
                    CarpOp::Send(m) => net.send(now, m),
                }
            }
            net.tick(now);
            delivered += net.drain_deliveries().len() as u64;
            if now > horizon && !net.busy() {
                break;
            }
            now += 1;
            assert!(now < 5_000_000, "CARP run refused to drain on {topo:?}");
        }
        assert_eq!(delivered, sends);
        let rep = check_wave(&net, now, 10_000);
        assert!(!rep.deadlocked);
    }
}

/// Theorems 3 & 4 (livelock freedom): under maximal circuit churn every
/// probe terminates within the History-Store step bound.
#[test]
fn theorems3_4_probes_are_livelock_free() {
    let topo = Topology::mesh(&[6, 6]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            cache_capacity: 1,
            misroutes: 4,
            k: 1, // single wave switch: maximal lane contention
            ..WaveConfig::default()
        },
    );
    let mut src = traffic(&topo, 0.6, 31);
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(500, 6_000));
    assert!(r.drained && !r.stalled);
    let live = check_probe_livelock(&net);
    assert!(live.livelock_free, "{live:?}");
    assert!(
        live.max_probe_steps > 0,
        "the stress run must actually exercise probes"
    );
    assert!(
        net.stats().probe_backtracks > 0,
        "churn must force backtracking"
    );
}

/// Negative control: the detectors must trip on a genuinely deadlocking
/// configuration (single-class torus DOR with ring-wrapping wormholes).
#[test]
fn detectors_trip_on_broken_routing() {
    let topo = Topology::torus(&[4, 4]);
    let mut fabric = WormholeFabric::with_routing(
        topo.clone(),
        WormholeConfig {
            w: 1,
            buffer_depth: 1,
            routing: RoutingKind::Deterministic,
            routing_delay: 1,
        },
        Box::new(NaiveTorusDor::new(1)),
    );
    // Fill every row ring with wrapping wormholes.
    let mut id = 0;
    for y in 0..4u16 {
        for x in 0..4u16 {
            let src = topo.node(Coords::new(&[x, y]));
            let dest = topo.node(Coords::new(&[(x + 2) % 4, y]));
            fabric.inject(Message::new(id, src, dest, 64, 0));
            id += 1;
        }
    }
    let mut now = 0;
    while fabric.busy() && now < 20_000 {
        fabric.tick(now);
        now += 1;
    }
    assert!(fabric.busy(), "broken routing must deadlock");
    let rep = check_fabric(&fabric, now, 1_000);
    assert!(rep.deadlocked, "{rep:?}");
    let cycle = rep.wait_cycle.expect("a concrete circular wait");
    assert!(cycle.len() >= 2);
}

/// The §4 proofs assume the wormhole fall-back routing function is
/// deadlock-free; certify the exact functions used by every default
/// configuration.
#[test]
fn fallback_routing_functions_are_certified() {
    use wavesim::verify::check_deadlock_freedom;
    for (topo, kind, w) in [
        (Topology::mesh(&[8, 8]), RoutingKind::Deterministic, 2u8),
        (Topology::torus(&[8, 8]), RoutingKind::Deterministic, 2),
        (Topology::mesh(&[8, 8]), RoutingKind::Adaptive, 3),
        (Topology::torus(&[6, 6]), RoutingKind::Adaptive, 3),
        (Topology::hypercube(4), RoutingKind::Deterministic, 1),
    ] {
        let routing = kind.build(&topo, w);
        let rep = check_deadlock_freedom(&topo, routing.as_ref());
        assert!(
            rep.deadlock_free,
            "{:?} on {topo:?}: {rep:?}",
            routing.name()
        );
    }
}

// ---------------------------------------------------------------------
// Exhaustive model checking (wavesim-model): the theorems proved over
// EVERY interleaving on small fabrics, not just the interleavings one
// simulator run happens to produce. State/transition counts are pinned:
// exploration is deterministic, so a drifting count means the protocol
// automaton itself changed and the proofs must be re-reviewed.
// ---------------------------------------------------------------------

/// Theorems 1–4, machine-checked: CLRP, CARP, and pure probe/MB
/// backtracking (CLRP with Force disabled) on a 2x2 mesh and a 3x3 torus
/// (the torus constructor requires radix >= 3, so 2x2 tori do not exist).
#[test]
fn theorems_1_to_4_exhaustive_on_small_fabrics() {
    use wavesim::model::{check, ModelProtocol, ModelSpec};
    let mesh_msgs = |spec: ModelSpec| spec.msg(0, 3).msg(3, 0).msg(1, 2);
    let torus_msgs = |spec: ModelSpec| spec.msg(0, 4).msg(4, 8).msg(8, 0);
    let matrix: Vec<(&str, ModelSpec, u64, u64)> = vec![
        (
            "clrp/mesh2x2",
            mesh_msgs(ModelSpec::new(
                Topology::mesh(&[2, 2]),
                ModelProtocol::Clrp,
                1,
            )),
            7767,
            19753,
        ),
        (
            "carp/mesh2x2",
            mesh_msgs(ModelSpec::new(
                Topology::mesh(&[2, 2]),
                ModelProtocol::Carp,
                1,
            )),
            6220,
            17828,
        ),
        (
            "probe/mesh2x2",
            mesh_msgs(ModelSpec::new(
                Topology::mesh(&[2, 2]),
                ModelProtocol::ClrpNoForce,
                1,
            )),
            2351,
            6510,
        ),
        (
            "clrp/torus3x3",
            torus_msgs(ModelSpec::new(
                Topology::torus(&[3, 3]),
                ModelProtocol::Clrp,
                1,
            )),
            1728,
            4752,
        ),
        (
            "carp/torus3x3",
            torus_msgs(ModelSpec::new(
                Topology::torus(&[3, 3]),
                ModelProtocol::Carp,
                1,
            )),
            4913,
            14739,
        ),
        (
            "probe/torus3x3",
            torus_msgs(ModelSpec::new(
                Topology::torus(&[3, 3]),
                ModelProtocol::ClrpNoForce,
                1,
            )),
            1728,
            4752,
        ),
    ];
    for (name, spec, states, transitions) in matrix {
        let out = check(&spec, 20_000_000);
        assert!(out.proved(), "{name}: {}", out.verdict());
        assert_eq!(out.states, states, "{name}: state count drifted");
        assert_eq!(
            out.transitions, transitions,
            "{name}: transition count drifted"
        );
    }
}

/// The fault/RetryWait path, exhaustively: a lane fault mid-protocol
/// (with repair for CLRP, without for CARP) cannot introduce a deadlock
/// or livelock in ANY interleaving of fault vs. protocol steps.
#[test]
fn exhaustive_check_survives_lane_fault_and_retrywait() {
    use wavesim::model::{check, ModelProtocol, ModelSpec};
    let clrp = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
        .msg(0, 3)
        .msg(3, 0)
        .fault_on_first_path(true);
    let out = check(&clrp, 20_000_000);
    assert!(out.proved(), "clrp+fault+repair: {}", out.verdict());
    assert_eq!(out.states, 816, "clrp fault state count drifted");
    assert_eq!(out.transitions, 1924);

    let carp = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Carp, 1)
        .msg(0, 3)
        .msg(3, 0)
        .fault_on_first_path(false);
    let out = check(&carp, 20_000_000);
    assert!(out.proved(), "carp+fault: {}", out.verdict());
    assert_eq!(out.states, 612, "carp fault state count drifted");
    assert_eq!(out.transitions, 1496);
}

/// Negative controls: each protocol mutation re-introduces a known-unsafe
/// behavior, and the checker must find it, shrink it, and produce a
/// schedule whose concrete replay round-trips through the trace tooling.
#[test]
fn mutations_yield_shrunk_replayable_counterexamples() {
    use wavesim::model::{
        check, replay_schedule, shrink, ModelProtocol, ModelSpec, Mutation, ViolationKind,
    };
    use wavesim::trace::{read_columnar, stream::read_jsonl};

    // drop-release: the Force victim's release never wakes the parked
    // probe — a lost-wakeup deadlock with NO circular wait.
    let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
        .msg(0, 1)
        .msg(2, 3)
        .msg(0, 3)
        .mutate(Mutation::DropRelease);
    let cx = check(&spec, 20_000_000)
        .violation
        .expect("drop-release must deadlock");
    let ViolationKind::Deadlock { wait_cycle } = &cx.kind else {
        panic!("expected deadlock, got {:?}", cx.kind)
    };
    assert!(wait_cycle.is_none(), "lost wakeup has no wait cycle");
    let shrunk = shrink(&spec, &cx);
    assert!(shrunk.schedule.len() <= cx.schedule.len());
    let rep = replay_schedule(&spec, &shrunk.schedule);
    assert!(rep.survived(), "real CLRP does not drop releases: {rep:?}");
    assert_eq!(
        read_jsonl(&rep.jsonl()).expect("valid JSONL").len(),
        rep.records.len()
    );
    assert_eq!(
        read_columnar(&rep.columnar())
            .expect("valid WSTRACE1")
            .len(),
        rep.records.len()
    );

    // skip-backoff: an exhausted probe relaunches with a cleared History
    // Store instead of escaping to wormhole — a livelock lasso.
    let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Carp, 1)
        .msg(0, 1)
        .msg(2, 3)
        .msg(0, 3)
        .mutate(Mutation::SkipBackoff);
    let cx = check(&spec, 20_000_000)
        .violation
        .expect("skip-backoff must livelock");
    assert_eq!(cx.kind, ViolationKind::Livelock);
    let loop_start = cx.loop_start.expect("lasso has a loop");
    assert!(loop_start < cx.schedule.len());
    let shrunk = shrink(&spec, &cx);
    assert!(shrunk.schedule.len() <= cx.schedule.len());
    assert!(shrunk.loop_start.is_some(), "shrinking must keep the loop");

    // wait-establishing: force probes wait on Establishing circuits —
    // exactly what the §4 no-wait rule forbids — and four ring messages
    // on a 4x4 torus row close a genuine circular wait.
    let spec = ModelSpec::new(Topology::torus(&[4, 4]), ModelProtocol::Clrp, 1)
        .msg(0, 2)
        .msg(1, 3)
        .msg(2, 0)
        .msg(3, 1)
        .mutate(Mutation::WaitEstablishing);
    let cx = check(&spec, 20_000_000)
        .violation
        .expect("wait-establishing must deadlock");
    let ViolationKind::Deadlock { wait_cycle } = &cx.kind else {
        panic!("expected deadlock, got {:?}", cx.kind)
    };
    let cycle = wait_cycle.as_ref().expect("a genuine circular wait");
    assert!(cycle.len() >= 2, "cycle involves several probes: {cycle:?}");
}
