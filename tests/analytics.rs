//! The trace-analytics engine, end to end: the analyzer report is pinned
//! and byte-identical across sweep parallelism, the JSONL stream encodes
//! records losslessly, and the reconstructed latency waterfalls agree
//! with the simulator's own delivery accounting at evaluation scale.

use wavesim::core::{WaveConfig, WaveNetwork};
use wavesim::topology::Topology;
use wavesim::trace::stream::{self, JsonlSink};
use wavesim::trace::{TraceRecord, TraceSink, VecSink};
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};
use wavesim_analyze::{analyze, report, AnalyzeOptions};
use wavesim_bench::{run_open_loop, runner::ParallelSweep, RunSpec};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn hash_str(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn golden_check(name: &str, got: u64, want: u64) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN {name} = 0x{got:016x}");
        return;
    }
    assert_eq!(
        got, want,
        "{name}: analyzer output changed (got 0x{got:016x}, want 0x{want:016x}); \
         re-capture with GOLDEN_PRINT=1 only if the report change is intentional"
    );
}

/// Runs one fully traced CLRP workload and returns the captured records.
/// Everything derives from the arguments, so sweep workers reproduce it
/// bit-for-bit regardless of scheduling.
fn traced_run(side: u16, seed: u64, warmup: u64, cycles: u64) -> (Vec<TraceRecord>, f64, u64) {
    let topo = Topology::mesh(&[side, side]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            seed,
            ..WaveConfig::default()
        },
    );
    net.install_trace_sink(Box::new(VecSink::new()));
    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.2,
            pattern: TrafficPattern::HotPairs {
                partners: 3,
                locality: 0.7,
            },
            len: LengthDist::Fixed(32),
            seed,
            stop_at: u64::MAX,
        },
    );
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(warmup, cycles));
    let records = net.take_trace_sink().expect("sink installed").snapshot();
    (records, r.avg_latency, r.delivered)
}

/// The 2×2 CLRP analyzer report is byte-identical whether the sweep runs
/// on one worker or four, and its bytes are pinned: any change to event
/// capture, span reconstruction, sorting, or formatting flips this hash.
#[test]
fn golden_analyzer_report_is_stable_across_sweep_parallelism() {
    let seeds = [1u64, 2, 3, 4];
    let render = |_: usize, &seed: &u64| {
        let (records, _, _) = traced_run(2, seed, 100, 600);
        report::render(&analyze(&records, AnalyzeOptions::default()))
    };
    let one = ParallelSweep::new(1).run(&seeds, render);
    let four = ParallelSweep::new(4).run(&seeds, render);
    assert_eq!(one, four, "report must not depend on worker count");
    golden_check(
        "analyze_2x2_clrp_report",
        hash_str(&one.join("\n")),
        0xb32c_7db0_1d29_f6e3,
    );
}

/// Round-tripping a real record stream through the JSONL encoder and
/// parser reproduces every record exactly — the streaming sink is a
/// lossless capture, not a summary.
#[test]
fn jsonl_stream_round_trips_records_exactly() {
    let (records, _, _) = traced_run(2, 9, 100, 600);
    assert!(!records.is_empty());
    let mut sink = JsonlSink::new(Vec::new());
    for &rec in &records {
        sink.record(rec);
    }
    let bytes = sink.finish_into().expect("in-memory writer cannot fail");
    let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
    let back = stream::read_jsonl(&text).expect("own output parses");
    assert_eq!(back, records);
}

/// At evaluation scale (16×16 CLRP) the reconstructed waterfall agrees
/// with the simulator's own accounting: one span per delivered message,
/// segments that partition each latency exactly, and a measured-window
/// mean equal to the run's reported average latency.
#[test]
fn waterfall_totals_match_delivered_latencies_at_scale() {
    let warmup = 400;
    let (records, avg_latency, delivered) = traced_run(16, 7, warmup, 2000);
    let a = analyze(&records, AnalyzeOptions::default());
    assert_eq!(a.summary.delivered, delivered);
    for s in &a.spans.spans {
        assert_eq!(
            s.setup + s.queue + s.transit,
            s.latency(),
            "segments must partition the latency: {s:?}"
        );
    }
    let measured: Vec<u64> = a
        .spans
        .spans
        .iter()
        .filter(|s| s.created >= warmup)
        .map(|s| s.latency())
        .collect();
    assert!(!measured.is_empty());
    let mean = measured.iter().sum::<u64>() as f64 / measured.len() as f64;
    let rel = (mean - avg_latency).abs() / avg_latency.max(1.0);
    assert!(
        rel < 1e-9,
        "span mean {mean} != run avg latency {avg_latency} (rel {rel})"
    );
}
