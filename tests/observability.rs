//! The flight-recorder observability subsystem, end to end: Perfetto
//! export pinned against a golden hash, schema validation at evaluation
//! scale, and proof that tracing is a pure observer (byte-identical
//! delivery schedules with the recorder on and off).

use wavesim::core::{WaveConfig, WaveNetwork};
use wavesim::network::Message;
use wavesim::topology::{NodeId, Topology};
use wavesim::trace::perfetto;
use wavesim::trace::VecSink;
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};
use wavesim_bench::{run_open_loop, tracecap, RunSpec};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn hash_str(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn golden_check(name: &str, got: u64, want: u64) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN {name} = 0x{got:016x}");
        return;
    }
    assert_eq!(
        got, want,
        "{name}: trace output changed (got 0x{got:016x}, want 0x{want:016x}); \
         re-capture with GOLDEN_PRINT=1 only if the schema change is intentional"
    );
}

/// Runs a tiny fully-deterministic CLRP workload — two messages to the
/// same destination, so the trace covers a cache miss, a probe walk, a
/// circuit setup, a transfer, and a cache hit — and returns the exported
/// Perfetto document.
fn tiny_clrp_trace() -> wavesim::json::Value {
    let mut net = WaveNetwork::new(Topology::mesh(&[2, 2]), WaveConfig::default());
    net.install_trace_sink(Box::new(VecSink::new()));
    net.send(0, Message::new(1, NodeId(0), NodeId(3), 24, 0));
    let mut now = 0;
    let mut resend = true;
    while net.busy() || resend {
        if !net.busy() && resend {
            net.send(now, Message::new(2, NodeId(0), NodeId(3), 24, now));
            resend = false;
        }
        net.tick(now);
        net.drain_deliveries();
        now += 1;
        assert!(now < 10_000, "tiny run must quiesce");
    }
    let sink = net.take_trace_sink().expect("sink installed");
    perfetto::export(&sink.snapshot())
}

/// The exported document for the tiny 2×2 run is pinned byte-for-byte:
/// any change to the record stream, the event mapping, or the JSON
/// serialization flips this hash.
#[test]
fn golden_perfetto_export_for_tiny_clrp_run() {
    let doc = tiny_clrp_trace();
    let summary = perfetto::validate(&doc).expect("exporter emits valid traces");
    assert!(summary.spans >= 2, "setup + transfer spans: {summary:?}");
    golden_check(
        "perfetto_2x2_clrp",
        hash_str(&doc.compact()),
        0x0e0a_50bf_763e_96c4,
    );
}

/// The tiny export is also structurally what ui.perfetto.dev expects:
/// the trace_event envelope, metadata naming every process, and only
/// known phases.
#[test]
fn tiny_export_has_the_trace_event_envelope() {
    let doc = tiny_clrp_trace();
    assert_eq!(doc["displayTimeUnit"], "ms");
    let events = doc["traceEvents"].as_array().expect("event array");
    assert!(
        events
            .iter()
            .any(|e| e["ph"] == "M" && e["name"] == "process_name"),
        "process metadata present"
    );
    assert!(events
        .iter()
        .all(|e| { matches!(e["ph"].as_str(), Some("M" | "b" | "e" | "i")) }));
}

/// Acceptance criterion: a traced 16×16 CLRP run emits a schema-valid
/// Perfetto document with real content on every plane.
#[test]
fn traced_16x16_clrp_run_emits_valid_perfetto() {
    let topo = Topology::mesh(&[16, 16]);
    let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.05,
            pattern: TrafficPattern::HotPairs {
                partners: 2,
                locality: 0.8,
            },
            len: LengthDist::Fixed(32),
            seed: 11,
            ..TrafficConfig::default()
        },
    );
    tracecap::arm_flight_recorder(1 << 18);
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(200, 1_000));
    tracecap::disarm_flight_recorder();
    let traces = tracecap::take_captured();
    assert_eq!(traces.len(), 1);
    assert!(r.clean(), "{r:?}");

    let doc = perfetto::export(&traces[0].records);
    let summary = perfetto::validate(&doc).expect("valid at evaluation scale");
    assert!(summary.events > 100, "{summary:?}");
    assert!(summary.spans > 10, "{summary:?}");

    // All three planes (wormhole pid 1 is idle here only if no fallback
    // happened; control pid 2 and circuit pid 3 must both appear).
    let events = doc["traceEvents"].as_array().unwrap();
    let has_pid = |pid: f64| {
        events
            .iter()
            .any(|e| e["ph"] != "M" && e["pid"].as_f64() == Some(pid))
    };
    assert!(has_pid(2.0), "control-plane track missing");
    assert!(has_pid(3.0), "circuit-plane track missing");
}

/// Tracing must be a pure observer: the delivery schedule of a traced run
/// is byte-identical to the untraced run, and the flight-recorder ring
/// (tiny on purpose, to force wraparound) never feeds back into the
/// simulation.
#[test]
fn tracing_on_and_off_produce_identical_schedules() {
    let schedule = |traced: bool| {
        let topo = Topology::mesh(&[5, 5]);
        let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
        if traced {
            net.install_trace_sink(Box::new(wavesim::trace::FlightRecorder::new(64)));
        }
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load: 0.25,
                pattern: TrafficPattern::HotPairs {
                    partners: 2,
                    locality: 0.6,
                },
                len: LengthDist::Fixed(48),
                seed: 23,
                stop_at: 2_000,
            },
        );
        let mut out = Vec::new();
        let mut now = 0;
        loop {
            for m in src.poll(now) {
                net.send(now, m);
            }
            if now >= 2_000 && !net.busy() {
                break;
            }
            net.tick(now);
            for d in net.drain_deliveries() {
                out.push((d.msg.id.0, d.delivered_at));
            }
            now += 1;
            assert!(now < 1_000_000);
        }
        if traced {
            let sink = net.take_trace_sink().expect("recorder installed");
            assert!(sink.dropped() > 0, "64 slots must wrap on this run");
        }
        out
    };
    let off = schedule(false);
    let on = schedule(true);
    assert!(!off.is_empty());
    assert_eq!(off, on, "the flight recorder must not perturb the run");
}
