//! Cross-crate protocol behaviour: end-to-end scenarios exercising CLRP's
//! three phases, CARP's instruction interface, circuit properties the
//! paper promises (in-order delivery, buffer reuse via In-use, fault
//! fallback), and the interplay between the two transport planes.

use wavesim::core::{
    CircuitStatus, ClrpVariant, LaneId, ProtocolKind, ReplacementPolicy, WaveConfig, WaveNetwork,
};
use wavesim::network::message::DeliveryMode;
use wavesim::network::Message;
use wavesim::topology::{Coords, NodeId, Topology};

fn run(net: &mut WaveNetwork, from: u64, max: u64) -> u64 {
    let mut now = from;
    while net.busy() && now < max {
        net.tick(now);
        now += 1;
    }
    assert!(!net.busy(), "network did not drain by {max}");
    now
}

#[test]
fn clrp_interleaves_circuit_and_wormhole_traffic() {
    let topo = Topology::mesh(&[8, 8]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            cache_capacity: 4,
            ..WaveConfig::default()
        },
    );
    // Many nodes, many destinations: some sends hit circuits, evictions
    // and failures push others to wormhole; everything must arrive.
    let mut id = 0;
    for n in 0..32u32 {
        for off in [1u32, 9, 17, 33] {
            net.send(
                0,
                Message::new(id, NodeId(n), NodeId((n + off) % 64), 40, 0),
            );
            id += 1;
        }
    }
    run(&mut net, 0, 2_000_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len() as u64, id);
    let circuits = ds
        .iter()
        .filter(|d| d.mode == DeliveryMode::Circuit)
        .count();
    assert!(circuits > 0, "some messages must ride circuits");
    assert!(net.audit().is_empty(), "{:?}", net.audit());
}

#[test]
fn circuit_delivery_is_fifo_per_destination() {
    let topo = Topology::mesh(&[8, 8]);
    let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
    let src = topo.node(Coords::new(&[0, 0]));
    let dest = topo.node(Coords::new(&[7, 7]));
    for i in 0..25u64 {
        net.send(i, Message::new(i, src, dest, 16 + (i % 5) as u32 * 30, i));
    }
    run(&mut net, 0, 500_000);
    let ds = net.drain_deliveries();
    let circuit_ids: Vec<u64> = ds
        .iter()
        .filter(|d| d.mode == DeliveryMode::Circuit)
        .map(|d| d.msg.id.0)
        .collect();
    let mut sorted = circuit_ids.clone();
    sorted.sort_unstable();
    assert_eq!(circuit_ids, sorted, "in-order delivery on a circuit (§2)");
}

#[test]
fn carp_circuits_survive_between_bursts_clrp_style_thrash_does_not() {
    // CARP holds a circuit across idle gaps until TEARDOWN; verify the
    // entry persists and later sends still hit it.
    let topo = Topology::mesh(&[6, 6]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Carp,
            ..WaveConfig::default()
        },
    );
    let a = NodeId(0);
    let b = NodeId(35);
    net.carp_establish(0, a, b);
    let t = run(&mut net, 0, 100_000);
    // Long idle gap...
    let t = t + 10_000;
    net.send(t, Message::new(1, a, b, 64, t));
    let t2 = run(&mut net, t, t + 100_000);
    assert_eq!(net.stats().cache_hits, 1, "circuit survived the gap");
    assert_eq!(net.circuits().len(), 1);
    assert_eq!(
        net.circuits().values().next().unwrap().status,
        CircuitStatus::Ready
    );
    net.carp_teardown(t2, a, b);
    run(&mut net, t2, t2 + 100_000);
    assert_eq!(net.circuits().len(), 0);
}

#[test]
fn force_phase_chain_reaction_stays_consistent() {
    // k=1 on a line: every new circuit must force the previous one out.
    let topo = Topology::mesh(&[8]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            k: 1,
            misroutes: 0,
            ..WaveConfig::default()
        },
    );
    // Chain of overlapping circuits: 0->7, then 1->6, then 2->5, 3->4.
    let mut t = 0;
    for (i, (s, d)) in [(0u32, 7u32), (1, 6), (2, 5), (3, 4)].iter().enumerate() {
        net.send(t, Message::new(i as u64, NodeId(*s), NodeId(*d), 32, t));
        t = run(&mut net, t, t + 100_000);
    }
    let s = net.stats();
    assert!(
        s.forced_remote_releases + s.forced_local_releases >= 3,
        "each new circuit had to force its predecessor: {s:?}"
    );
    assert!(net.audit().is_empty(), "{:?}", net.audit());
    // Only the last circuit remains.
    assert_eq!(net.circuits().len(), 1);
    assert!(net.cache(NodeId(3)).get(NodeId(4)).is_some());
}

#[test]
fn replacement_policies_all_keep_caches_within_capacity() {
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Lfu,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let topo = Topology::mesh(&[5, 5]);
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                cache_capacity: 2,
                replacement: policy,
                ..WaveConfig::default()
            },
        );
        let mut id = 0;
        for round in 0..4u32 {
            for d in 1..8u32 {
                net.send(
                    0,
                    Message::new(id, NodeId(0), NodeId((d * 3 + round) % 25), 16, 0),
                );
                id += 1;
            }
        }
        run(&mut net, 0, 2_000_000);
        assert!(net.cache(NodeId(0)).len() <= 2, "{policy:?} overflowed");
        assert_eq!(net.drain_deliveries().len() as u64, id);
        assert!(net.audit().is_empty());
    }
}

#[test]
fn dead_wave_plane_degrades_to_pure_wormhole() {
    let topo = Topology::mesh(&[6, 6]);
    let cfg = WaveConfig {
        protocol: ProtocolKind::Clrp,
        ..WaveConfig::default()
    };
    let mut net = WaveNetwork::new(topo.clone(), cfg);
    for link in topo.links() {
        for s in 1..=cfg.k {
            net.inject_lane_fault(LaneId::new(link, s))
                .expect("fault plan matches topology");
        }
    }
    let mut id = 0;
    for n in 0..36u32 {
        net.send(0, Message::new(id, NodeId(n), NodeId((n + 13) % 36), 24, 0));
        id += 1;
    }
    run(&mut net, 0, 2_000_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len() as u64, id);
    assert!(ds.iter().all(|d| d.mode == DeliveryMode::Wormhole));
    assert_eq!(net.stats().setups_ok, 0);
}

#[test]
fn clrp_variants_deliver_identical_message_sets() {
    // Different phase policies change timing, never delivery.
    let variants = [
        ClrpVariant::default(),
        ClrpVariant {
            skip_phase1: true,
            ..ClrpVariant::default()
        },
        ClrpVariant {
            single_switch_force: true,
            ..ClrpVariant::default()
        },
        ClrpVariant {
            enable_force: false,
            ..ClrpVariant::default()
        },
    ];
    for v in variants {
        let topo = Topology::mesh(&[6, 6]);
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                clrp: v,
                cache_capacity: 2,
                k: 1,
                ..WaveConfig::default()
            },
        );
        let mut id = 0;
        for n in 0..36u32 {
            for off in [5u32, 11] {
                net.send(
                    0,
                    Message::new(id, NodeId(n), NodeId((n + off) % 36), 32, 0),
                );
                id += 1;
            }
        }
        run(&mut net, 0, 3_000_000);
        let mut got: Vec<u64> = net.drain_deliveries().iter().map(|d| d.msg.id.0).collect();
        got.sort_unstable();
        assert_eq!(
            got,
            (0..id).collect::<Vec<_>>(),
            "variant {v:?} lost messages"
        );
        assert!(net.audit().is_empty());
    }
}

#[test]
fn hypercube_topology_works_end_to_end() {
    let topo = Topology::hypercube(4); // 16 nodes
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            ..WaveConfig::default()
        },
    );
    let mut id = 0;
    for n in 0..16u32 {
        net.send(0, Message::new(id, NodeId(n), NodeId(n ^ 0xF), 64, 0));
        id += 1;
    }
    run(&mut net, 0, 1_000_000);
    assert_eq!(net.drain_deliveries().len() as u64, id);
    assert!(net.audit().is_empty());
}
