//! Edge cases of circuit management: release-request races, windowing
//! effects, initial-switch staggering, and queue-drain semantics.

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::network::message::DeliveryMode;
use wavesim::network::Message;
use wavesim::topology::{Coords, NodeId, Topology};

fn run(net: &mut WaveNetwork, from: u64, max: u64) -> u64 {
    let mut now = from;
    while net.busy() && now < max {
        net.tick(now);
        now += 1;
    }
    assert!(!net.busy(), "network did not drain by {max}");
    now
}

/// Two probes simultaneously force-request the *same* victim circuit from
/// different nodes: the paper's §4 discard rule ("the second control flit
/// will be discarded") must apply, and both probes must still complete.
#[test]
fn concurrent_release_requests_one_discarded_both_probes_succeed() {
    let topo = Topology::mesh(&[6]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            k: 1,
            misroutes: 0,
            ..WaveConfig::default()
        },
    );
    // Victim A spans the whole line 0 -> 5.
    net.send(0, Message::new(1, NodeId(0), NodeId(5), 16, 0));
    let t = run(&mut net, 0, 50_000);
    // B (1 -> 2) and C (3 -> 4) both need lanes of A, at different nodes,
    // in the same cycle.
    net.send(t, Message::new(2, NodeId(1), NodeId(2), 16, t));
    net.send(t, Message::new(3, NodeId(3), NodeId(4), 16, t));
    run(&mut net, t, t + 100_000);
    let s = net.stats();
    assert_eq!(net.drain_deliveries().len(), 3);
    assert!(
        s.forced_remote_releases >= 2,
        "both probes had to request the release: {s:?}"
    );
    assert!(
        s.release_requests_discarded >= 1,
        "the second request for the same circuit is discarded: {s:?}"
    );
    assert!(net.audit().is_empty(), "{:?}", net.audit());
}

/// A small window throttles long-haul circuit transfers (the §2 windowing
/// protocol); a window sized past bandwidth × RTT restores full rate.
#[test]
fn window_size_gates_circuit_throughput() {
    let latency_with_window = |window: u32| {
        let topo = Topology::mesh(&[8, 8]);
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                window,
                ..WaveConfig::default()
            },
        );
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[7, 7]));
        net.send(0, Message::new(1, src, dest, 512, 0));
        run(&mut net, 0, 200_000);
        let ds = net.drain_deliveries();
        assert_eq!(ds[0].mode, DeliveryMode::Circuit);
        ds[0].latency()
    };
    let tight = latency_with_window(4);
    let ample = latency_with_window(256);
    assert!(
        tight > ample * 2,
        "a 4-flit window over 14 hops must throttle hard: {tight} vs {ample}"
    );
}

/// Neighbouring nodes start their searches on different wave switches —
/// the paper's `1 + (x + y) mod k` staggering rule.
#[test]
fn initial_switch_staggering_follows_coordinate_sum() {
    let topo = Topology::mesh(&[4, 4]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            k: 2,
            ..WaveConfig::default()
        },
    );
    // Two neighbouring sources establish circuits; their cached entries
    // record different initial switches.
    let a = topo.node(Coords::new(&[0, 0])); // sum 0 -> switch 1
    let b = topo.node(Coords::new(&[1, 0])); // sum 1 -> switch 2
    net.send(
        0,
        Message::new(1, a, topo.node(Coords::new(&[3, 3])), 16, 0),
    );
    net.send(
        0,
        Message::new(2, b, topo.node(Coords::new(&[3, 2])), 16, 0),
    );
    run(&mut net, 0, 50_000);
    let ea = net.cache(a).get(topo.node(Coords::new(&[3, 3]))).unwrap();
    let eb = net.cache(b).get(topo.node(Coords::new(&[3, 2]))).unwrap();
    assert_eq!(ea.initial_switch, 1);
    assert_eq!(eb.initial_switch, 2);
}

/// When a remote force-release hits a circuit with queued messages, the
/// queue drains to wormhole and every message still arrives.
#[test]
fn forced_release_reroutes_queued_messages() {
    let topo = Topology::mesh(&[6]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            k: 1,
            misroutes: 0,
            ..WaveConfig::default()
        },
    );
    // A long circuit with a deep queue of long messages.
    for i in 0..6u64 {
        net.send(0, Message::new(i, NodeId(0), NodeId(5), 256, 0));
    }
    // Give establishment a moment, then force from the middle while the
    // queue is still draining.
    let mut now = 0;
    for _ in 0..60 {
        net.tick(now);
        now += 1;
    }
    net.send(now, Message::new(100, NodeId(2), NodeId(3), 16, now));
    run(&mut net, now, now + 500_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 7, "all messages incl. queued ones delivered");
    let s = net.stats();
    assert!(
        s.wormhole_fallbacks > 0,
        "queued messages went wormhole: {s:?}"
    );
    assert!(net.audit().is_empty());
}

/// CLRP eviction of an idle circuit does not disturb an unrelated circuit
/// sharing no lanes.
#[test]
fn eviction_is_surgical() {
    let topo = Topology::mesh(&[4, 4]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol: ProtocolKind::Clrp,
            cache_capacity: 1,
            ..WaveConfig::default()
        },
    );
    let a = topo.node(Coords::new(&[0, 0]));
    let b = topo.node(Coords::new(&[3, 3]));
    // Unrelated circuit from another source.
    net.send(
        0,
        Message::new(1, b, topo.node(Coords::new(&[0, 3])), 16, 0),
    );
    let t = run(&mut net, 0, 50_000);
    let other_circuit = net
        .cache(b)
        .get(topo.node(Coords::new(&[0, 3])))
        .unwrap()
        .circuit;
    // Source `a` cycles through two destinations, evicting its own entry.
    net.send(
        t,
        Message::new(2, a, topo.node(Coords::new(&[2, 0])), 16, t),
    );
    let t = run(&mut net, t, t + 50_000);
    net.send(
        t,
        Message::new(3, a, topo.node(Coords::new(&[0, 2])), 16, t),
    );
    run(&mut net, t, t + 50_000);
    assert_eq!(net.stats().cache_evictions, 1);
    // b's circuit is untouched.
    let still = net.cache(b).get(topo.node(Coords::new(&[0, 3]))).unwrap();
    assert_eq!(still.circuit, other_circuit);
    assert!(still.ack_returned);
    assert_eq!(net.drain_deliveries().len(), 3);
}

/// Messages queued while a circuit is establishing ride it once the ack
/// arrives (no wormhole detour).
#[test]
fn messages_queued_behind_probe_use_the_circuit() {
    let topo = Topology::mesh(&[8, 8]);
    let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
    let src = topo.node(Coords::new(&[0, 0]));
    let dest = topo.node(Coords::new(&[7, 0]));
    // Burst faster than the setup round-trip.
    for i in 0..5u64 {
        net.send(i, Message::new(i, src, dest, 32, i));
    }
    run(&mut net, 5, 100_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 5);
    assert!(
        ds.iter().all(|d| d.mode == DeliveryMode::Circuit),
        "queued messages must use the newly established circuit"
    );
    assert_eq!(net.stats().probes_sent, 1);
}
