//! The binary columnar trace format, end to end: a property round-trip
//! of every event kind through encode/decode (including extreme cycle
//! deltas and maximal ids), exact agreement with the JSONL codec over
//! the same records, byte-identity across shard counts, and the
//! compression floor the format is shipped for.

use wavesim::core::{WaveConfig, WaveNetwork};
use wavesim::topology::Topology;
use wavesim::trace::stream;
use wavesim::trace::{read_columnar, ColumnarBuf, PlaneId, TraceEvent, TraceRecord, TraceSink};
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};
use wavesim_bench::{run_open_loop, tracecap, RunSpec};

/// The largest integer the JSONL codec can carry exactly (its number
/// layer is f64); the binary codec carries full `u64`, so tests that
/// compare the two formats cap `u64` fields here while binary-only tests
/// use `u64::MAX`.
const MAX_JSONL: u64 = 1 << 53;

/// One instance of every `TraceEvent` variant, pushed toward the edges of
/// its value space: `big` in every `u64`-wide id/count field, maximal
/// node and link ids, maximal switch numbers, both Force-bit polarities.
fn every_event_extreme(big: u64) -> Vec<TraceEvent> {
    let u64_max = big;
    vec![
        TraceEvent::PlaneTick {
            plane: PlaneId::Data,
        },
        TraceEvent::PlaneTick {
            plane: PlaneId::Control,
        },
        TraceEvent::PlaneTick {
            plane: PlaneId::Circuit,
        },
        TraceEvent::ProbeLaunch {
            circuit: u64_max,
            src: u32::MAX,
            dest: 0,
            switch: u8::MAX,
            force: true,
        },
        TraceEvent::ProbeLaunch {
            circuit: 0,
            src: 0,
            dest: u32::MAX,
            switch: 1,
            force: false,
        },
        TraceEvent::ProbeHop {
            circuit: u64_max,
            probe: u64_max,
            node: u32::MAX,
            link: u32::MAX,
            misroute: true,
        },
        TraceEvent::ProbeHop {
            circuit: 1,
            probe: 2,
            node: 3,
            link: 4,
            misroute: false,
        },
        TraceEvent::ProbeBacktrack {
            circuit: u64_max - 1,
            probe: u64_max,
            node: u32::MAX,
        },
        TraceEvent::ProbePark {
            circuit: u64_max,
            probe: 0,
            node: u32::MAX,
            victim: u64_max,
        },
        TraceEvent::ProbeReached {
            circuit: u64_max,
            probe: u64_max,
            dest: u32::MAX,
            steps: u64_max,
        },
        TraceEvent::ProbeExhausted {
            circuit: u64_max,
            src: u32::MAX,
            switch: u8::MAX,
            force: true,
        },
        TraceEvent::ProbeExhausted {
            circuit: 7,
            src: 8,
            switch: 2,
            force: false,
        },
        TraceEvent::CircuitEstablished {
            circuit: u64_max,
            src: u32::MAX,
            dest: u32::MAX,
            hops: u32::MAX,
        },
        TraceEvent::CircuitReleased { circuit: u64_max },
        TraceEvent::CircuitAbandoned { circuit: u64_max },
        TraceEvent::ForcedRelease {
            circuit: u64_max,
            src: u32::MAX,
        },
        TraceEvent::CacheHit {
            node: u32::MAX,
            dest: u32::MAX,
            circuit: u64_max,
        },
        TraceEvent::CacheMiss {
            node: u32::MAX,
            dest: u32::MAX,
        },
        TraceEvent::CacheEvict {
            node: u32::MAX,
            victim_dest: u32::MAX,
            circuit: u64_max,
        },
        TraceEvent::TransferStart {
            circuit: u64_max,
            msg: u64_max,
            src: u32::MAX,
            dest: u32::MAX,
            len_flits: u32::MAX,
        },
        TraceEvent::WormholeInject {
            msg: u64_max,
            src: u32::MAX,
            dest: u32::MAX,
            len_flits: u32::MAX,
        },
        TraceEvent::WormholeDeliver {
            msg: u64_max,
            src: u32::MAX,
            dest: u32::MAX,
            latency: u64_max,
        },
        TraceEvent::CircuitDeliver {
            msg: u64_max,
            src: u32::MAX,
            dest: u32::MAX,
            latency: u64_max,
        },
        TraceEvent::LaneFault {
            link: u32::MAX,
            switch: u8::MAX,
        },
        TraceEvent::LaneRepair {
            link: u32::MAX,
            switch: u8::MAX,
        },
        TraceEvent::CircuitBroken {
            circuit: u64_max,
            src: u32::MAX,
            dest: u32::MAX,
        },
        TraceEvent::EstablishRetry {
            circuit: u64_max,
            src: u32::MAX,
            dest: u32::MAX,
            attempt: u8::MAX,
        },
    ]
}

/// Timestamps chosen to exercise the zigzag delta codec at its extremes:
/// forward jumps of `big`, backward jumps of the same magnitude, and
/// zero-width deltas, cycled over the event list.
fn extreme_records(consecutive_seq: bool, big: u64) -> Vec<TraceRecord> {
    let cycles = [0u64, big, 0, 1, big - 1, big, 12_345, 12_345];
    every_event_extreme(big)
        .into_iter()
        .enumerate()
        .map(|(i, ev)| TraceRecord {
            at: cycles[i % cycles.len()],
            seq: if consecutive_seq {
                i as u64
            } else {
                // Huge gaps, scaled so the top stays near `big` (wrapping
                // only when `big` spans the whole u64 range).
                (i as u64).wrapping_mul(big / 32 + 1)
            },
            ev,
        })
        .collect()
}

fn encode_jsonl(recs: &[TraceRecord]) -> String {
    let mut text = String::new();
    for rec in recs {
        stream::encode_record(&mut text, rec);
        text.push('\n');
    }
    text
}

/// The binary codec alone carries the full `u64` value space: every
/// variant with ids, counts, and cycle stamps at `u64::MAX` (and deltas
/// spanning the whole range in both directions) round-trips exactly.
#[test]
fn binary_round_trips_full_u64_extremes() {
    for consecutive in [true, false] {
        let recs = extreme_records(consecutive, u64::MAX);
        let mut buf = ColumnarBuf::new();
        buf.record_many(&recs);
        let back = read_columnar(&buf.into_bytes()).expect("decode own encoding");
        assert_eq!(back, recs, "binary round trip (consecutive={consecutive})");
    }
}

/// Every variant, with every id field at the edge of the JSONL-exact
/// domain (`2^53`, its number layer being f64), survives the binary
/// encode/decode round trip exactly — and agrees record-for-record with
/// the JSONL codec applied to the same buffer.
#[test]
fn every_variant_round_trips_binary_and_matches_jsonl() {
    for consecutive in [true, false] {
        let recs = extreme_records(consecutive, MAX_JSONL);
        let mut buf = ColumnarBuf::new();
        buf.record_many(&recs);
        let bytes = buf.into_bytes();
        let back = read_columnar(&bytes).expect("decode own encoding");
        assert_eq!(back, recs, "binary round trip (consecutive={consecutive})");

        let jsonl = encode_jsonl(&recs);
        let via_json = stream::read_jsonl(&jsonl).expect("decode own JSONL");
        assert_eq!(via_json, back, "JSONL and binary decodes must agree");

        // And the format sniffer sends each encoding to the right decoder.
        assert_eq!(
            stream::read_trace_bytes(&bytes).expect("autodetect binary"),
            recs
        );
        assert_eq!(
            stream::read_trace_bytes(jsonl.as_bytes()).expect("autodetect JSONL"),
            recs
        );
    }
}

/// Tiny frames force the chunking edge cases: one record per frame, and a
/// chunk boundary landing between the extreme timestamp jumps (each frame
/// restarts the delta base and the dictionary).
#[test]
fn single_record_frames_round_trip() {
    let recs = extreme_records(false, u64::MAX);
    let mut buf = ColumnarBuf::with_chunk(1);
    buf.record_many(&recs);
    let back = read_columnar(&buf.into_bytes()).expect("decode 1-record frames");
    assert_eq!(back, recs);
}

fn capture_workload() -> (WaveNetwork, TrafficSource) {
    let topo = Topology::mesh(&[8, 8]);
    let net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            seed: 99,
            ..WaveConfig::default()
        },
    );
    let src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.2,
            pattern: TrafficPattern::HotPairs {
                partners: 3,
                locality: 0.7,
            },
            len: LengthDist::Fixed(64),
            seed: 99,
            stop_at: u64::MAX,
        },
    );
    (net, src)
}

/// Streams one real 8x8 run to disk in both formats and checks the
/// tentpole's contract: the binary stream decodes to exactly the JSONL
/// stream's records (lossless) in at most a quarter of the bytes.
#[test]
fn real_run_binary_stream_is_lossless_and_compact() {
    let pid = std::process::id();
    let jpath = std::env::temp_dir().join(format!("wavesim_bt_lossless_{pid}.jsonl"));
    let bpath = std::env::temp_dir().join(format!("wavesim_bt_lossless_{pid}.wstrace"));
    let (mut net, mut src) = capture_workload();
    tracecap::arm_jsonl_stream(&jpath).expect("arm jsonl");
    tracecap::arm_bin_stream(&bpath, 1).expect("arm bin");
    let r = run_open_loop(&mut net, &mut src, RunSpec::standard(400, 2_000));
    assert!(r.clean(), "{r:?}");
    for t in tracecap::take_captured() {
        assert!(t.stream_error.is_none(), "{:?}", t.stream_error);
    }
    let jbytes = std::fs::read(&jpath).expect("read jsonl");
    let bbytes = std::fs::read(&bpath).expect("read bin");
    let from_jsonl = stream::read_trace_bytes(&jbytes).expect("decode jsonl");
    let from_bin = stream::read_trace_bytes(&bbytes).expect("decode bin");
    assert!(!from_bin.is_empty());
    assert_eq!(from_bin, from_jsonl, "binary stream must be lossless");
    assert!(
        bbytes.len() * 4 <= jbytes.len(),
        "binary must be <= 25% of JSONL ({} vs {} bytes)",
        bbytes.len(),
        jbytes.len()
    );
    let _ = std::fs::remove_file(&jpath);
    let _ = std::fs::remove_file(&bpath);
}

/// Runs the same workload at several shard counts and requires the binary
/// stream files to be byte-identical — the PR 6 determinism invariant,
/// extended through the columnar encoder (including its sampling path,
/// whose keep-counter walks the merged deterministic record order).
#[test]
fn binary_stream_is_byte_identical_at_any_shard_count() {
    let pid = std::process::id();
    for sample in [1u64, 8] {
        let mut reference: Option<Vec<u8>> = None;
        for shards in [1usize, 2, 4] {
            let path = std::env::temp_dir()
                .join(format!("wavesim_bt_shards_{pid}_{sample}_{shards}.wstrace"));
            let (mut net, mut src) = capture_workload();
            net.set_shards(shards);
            tracecap::arm_bin_stream(&path, sample).expect("arm bin");
            let r = run_open_loop(&mut net, &mut src, RunSpec::standard(400, 2_000));
            assert!(r.clean(), "{r:?}");
            for t in tracecap::take_captured() {
                assert!(t.stream_error.is_none(), "{:?}", t.stream_error);
            }
            let bytes = std::fs::read(&path).expect("read bin");
            let _ = std::fs::remove_file(&path);
            match &reference {
                None => reference = Some(bytes),
                Some(want) => assert_eq!(
                    &bytes, want,
                    "shards={shards} sample={sample} changed the stream bytes"
                ),
            }
        }
    }
}

/// Sampling keeps every lifecycle event and exactly the deterministic
/// 1-in-N spine of the bulk kinds — so a sampled stream is a strict,
/// reproducible subset of the lossless one.
#[test]
fn sampled_stream_is_deterministic_subset() {
    let pid = std::process::id();
    let full_path = std::env::temp_dir().join(format!("wavesim_bt_full_{pid}.wstrace"));
    let samp_path = std::env::temp_dir().join(format!("wavesim_bt_samp_{pid}.wstrace"));
    // Two identical deterministic runs, one lossless and one sampled: the
    // record streams match, so the sampled file must be a subset.
    for (path, sample) in [(&full_path, 1u64), (&samp_path, 8)] {
        let (mut net, mut src) = capture_workload();
        tracecap::arm_bin_stream(path, sample).expect("arm bin");
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(400, 2_000));
        assert!(r.clean(), "{r:?}");
        for t in tracecap::take_captured() {
            assert!(t.stream_error.is_none(), "{:?}", t.stream_error);
        }
    }
    let full = read_columnar(&std::fs::read(&full_path).expect("read full")).expect("decode");
    let samp = read_columnar(&std::fs::read(&samp_path).expect("read samp")).expect("decode");
    let _ = std::fs::remove_file(&full_path);
    let _ = std::fs::remove_file(&samp_path);
    assert!(!samp.is_empty() && samp.len() < full.len());
    // Subset check: sampled records appear in the full stream in order.
    let mut it = full.iter();
    for rec in &samp {
        assert!(
            it.any(|f| f == rec),
            "sampled record missing from lossless stream: {rec:?}"
        );
    }
    // Lifecycle events all survive sampling.
    let lifecycle = |r: &&TraceRecord| !stream::is_bulk_kind(&r.ev);
    assert_eq!(
        samp.iter().filter(lifecycle).count(),
        full.iter().filter(lifecycle).count(),
        "sampling must keep every lifecycle event"
    );
}
