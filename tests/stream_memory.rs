//! Bounded-memory guarantee of the streaming trace reader: decoding a
//! multi-frame columnar capture through [`StreamingReader`] must peak far
//! below materializing the same capture as a `Vec<TraceRecord>`.
//!
//! Measured with a counting global allocator, so this suite owns its own
//! integration binary (one test — allocation accounting is process-wide).

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};

use wavesim::trace::stream::{self, ColumnarSink, TraceReader};
use wavesim::trace::{TraceEvent, TraceRecord, TraceSink};

/// [`System`] wrapped with live-byte and high-water accounting.
struct CountingAlloc;

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how far live-heap grew above its starting point.
fn peak_growth<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    (out, PEAK.load(Ordering::Relaxed).saturating_sub(base))
}

/// A synthetic capture big enough to span many columnar frames.
fn big_capture(records: usize) -> Vec<u8> {
    let mut sink = ColumnarSink::with_chunk(Vec::new(), 1024);
    for i in 0..records as u64 {
        sink.record(TraceRecord {
            at: i / 4,
            seq: i,
            ev: TraceEvent::ProbeHop {
                circuit: i % 97,
                probe: i % 31,
                node: (i % 64) as u32,
                link: (i % 4) as u32,
                misroute: i % 13 == 0,
            },
        });
    }
    sink.finish_into().expect("in-memory capture")
}

#[test]
fn streaming_reader_peaks_far_below_materializing() {
    const N: usize = 200_000;
    let bytes = big_capture(N);
    assert!(bytes.len() > 200_000, "capture spans many frames");

    // Materialized baseline: the whole Vec<TraceRecord> lives at once.
    let (records, peak_materialized) =
        peak_growth(|| stream::read_trace_bytes(&bytes).expect("valid capture"));
    assert_eq!(records.len(), N);
    drop(records);

    // Streaming pass over the identical bytes: fold without retaining.
    let ((count, last_seq), peak_streaming) = peak_growth(|| {
        let mut reader = stream::StreamingReader::new(Cursor::new(&bytes)).expect("sniff");
        let (mut count, mut last_seq) = (0u64, 0u64);
        while let Some(rec) = reader.next_record() {
            let rec = rec.expect("valid record");
            count += 1;
            last_seq = rec.seq;
        }
        (count, last_seq)
    });
    assert_eq!(count, N as u64);
    assert_eq!(last_seq, N as u64 - 1);

    // The streaming pass holds one frame plus its read window; the
    // materialized pass holds every record. Demand a decisive gap, not a
    // hair's width, so allocator noise can't flake the suite.
    assert!(
        peak_streaming * 4 < peak_materialized,
        "streaming peaked at {peak_streaming} bytes vs {peak_materialized} materialized — \
         expected at least a 4x gap"
    );
}
