//! Reproducibility: a simulation is a pure function of its configuration
//! and seed. EXPERIMENTS.md's numbers are only meaningful because of
//! this property, so it gets its own integration suite.

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::topology::Topology;
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};
use wavesim_bench::experiments::e11_loadsweep;
use wavesim_bench::{run_open_loop, ParallelSweep, RunSpec, Scale};

fn full_run(seed: u64, protocol: ProtocolKind) -> Vec<(u64, u64)> {
    let topo = Topology::mesh(&[5, 5]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol,
            cache_capacity: 3,
            ..WaveConfig::default()
        },
    );
    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.3,
            pattern: TrafficPattern::HotPairs {
                partners: 2,
                locality: 0.6,
            },
            len: LengthDist::Bimodal {
                short: 8,
                long: 96,
                frac_long: 0.3,
            },
            seed,
            stop_at: 4_000,
        },
    );
    // Collect the delivery schedule directly (ids + times).
    let mut out = Vec::new();
    let mut now = 0;
    loop {
        for m in src.poll(now) {
            net.send(now, m);
        }
        if now >= 4_000 && !net.busy() {
            break;
        }
        net.tick(now);
        for d in net.drain_deliveries() {
            out.push((d.msg.id.0, d.delivered_at));
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    out
}

#[test]
fn identical_seeds_identical_schedules() {
    for protocol in [ProtocolKind::Clrp, ProtocolKind::WormholeOnly] {
        let a = full_run(7, protocol);
        let b = full_run(7, protocol);
        assert_eq!(a, b, "{protocol:?} replay diverged");
        assert!(!a.is_empty());
    }
}

#[test]
fn different_seeds_differ() {
    let a = full_run(7, ProtocolKind::Clrp);
    let b = full_run(8, ProtocolKind::Clrp);
    assert_ne!(a, b);
}

#[test]
fn runner_results_are_reproducible() {
    let go = || {
        let topo = Topology::mesh(&[4, 4]);
        let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load: 0.2,
                seed: 99,
                ..TrafficConfig::default()
            },
        );
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(500, 2_000));
        (
            r.sent,
            r.delivered,
            r.avg_latency.to_bits(),
            r.throughput.to_bits(),
            r.wave.probe_hops,
        )
    };
    assert_eq!(go(), go(), "runner must be bit-for-bit reproducible");
}

/// Golden trace for the parallel executor: an E11-style load sweep run
/// point-by-point in this test, through `ParallelSweep` with one job, and
/// through `ParallelSweep` with four jobs must produce bit-identical
/// `RunResult`s. Each point derives its whole world (network, source,
/// seed) from the point value, so thread scheduling cannot leak in.
#[test]
fn parallel_sweep_results_match_serial_golden_trace() {
    let loads = [0.05_f64, 0.2, 0.6];
    let point = |_: usize, &load: &f64| {
        let topo = Topology::mesh(&[4, 4]);
        let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load,
                pattern: TrafficPattern::HotPairs {
                    partners: 3,
                    locality: 0.7,
                },
                len: LengthDist::Fixed(64),
                seed: 131,
                ..TrafficConfig::default()
            },
        );
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(500, 2_000));
        // Debug output covers every field, including float bit patterns
        // rendered exactly, so string equality is bitwise equality.
        format!("{r:?}")
    };
    let golden: Vec<String> = loads.iter().enumerate().map(|(i, l)| point(i, l)).collect();
    assert_eq!(
        golden,
        ParallelSweep::new(1).run(&loads, point),
        "jobs=1 diverged from the serial golden trace"
    );
    assert_eq!(
        golden,
        ParallelSweep::new(4).run(&loads, point),
        "jobs=4 diverged from the serial golden trace"
    );
}

/// The full E11 table — the artifact EXPERIMENTS.md prints — is
/// byte-identical across job counts.
#[test]
fn e11_table_is_identical_across_job_counts() {
    let scale = Scale {
        side: 4,
        measure: 2_000,
        warmup: 500,
        sweep_points: 3,
    };
    let serial = e11_loadsweep::run(scale);
    let one = e11_loadsweep::run_with_jobs(scale, 1);
    let four = e11_loadsweep::run_with_jobs(scale, 4);
    assert!(!serial.rows.is_empty());
    assert_eq!(serial.rows, one.rows);
    assert_eq!(serial.rows, four.rows, "--jobs 4 must not change the table");
}
