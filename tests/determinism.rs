//! Reproducibility: a simulation is a pure function of its configuration
//! and seed. EXPERIMENTS.md's numbers are only meaningful because of
//! this property, so it gets its own integration suite.

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::topology::Topology;
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};
use wavesim_bench::{run_open_loop, RunSpec};

fn full_run(seed: u64, protocol: ProtocolKind) -> Vec<(u64, u64)> {
    let topo = Topology::mesh(&[5, 5]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol,
            cache_capacity: 3,
            ..WaveConfig::default()
        },
    );
    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.3,
            pattern: TrafficPattern::HotPairs {
                partners: 2,
                locality: 0.6,
            },
            len: LengthDist::Bimodal {
                short: 8,
                long: 96,
                frac_long: 0.3,
            },
            seed,
            stop_at: 4_000,
        },
    );
    // Collect the delivery schedule directly (ids + times).
    let mut out = Vec::new();
    let mut now = 0;
    loop {
        for m in src.poll(now) {
            net.send(now, m);
        }
        if now >= 4_000 && !net.busy() {
            break;
        }
        net.tick(now);
        for d in net.drain_deliveries() {
            out.push((d.msg.id.0, d.delivered_at));
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    out
}

#[test]
fn identical_seeds_identical_schedules() {
    for protocol in [ProtocolKind::Clrp, ProtocolKind::WormholeOnly] {
        let a = full_run(7, protocol);
        let b = full_run(7, protocol);
        assert_eq!(a, b, "{protocol:?} replay diverged");
        assert!(!a.is_empty());
    }
}

#[test]
fn different_seeds_differ() {
    let a = full_run(7, ProtocolKind::Clrp);
    let b = full_run(8, ProtocolKind::Clrp);
    assert_ne!(a, b);
}

#[test]
fn runner_results_are_reproducible() {
    let go = || {
        let topo = Topology::mesh(&[4, 4]);
        let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load: 0.2,
                seed: 99,
                ..TrafficConfig::default()
            },
        );
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(500, 2_000));
        (
            r.sent,
            r.delivered,
            r.avg_latency.to_bits(),
            r.throughput.to_bits(),
            r.wave.probe_hops,
        )
    };
    assert_eq!(go(), go(), "runner must be bit-for-bit reproducible");
}
