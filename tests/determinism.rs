//! Reproducibility: a simulation is a pure function of its configuration
//! and seed. EXPERIMENTS.md's numbers are only meaningful because of
//! this property, so it gets its own integration suite.

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::topology::Topology;
use wavesim::workloads::{collectives, trace_io};
use wavesim::workloads::{
    CarpTrace, FaultSchedule, LengthDist, TrafficConfig, TrafficPattern, TrafficSource,
};
use wavesim_bench::experiments::{e11_loadsweep, e13_dsm, e14_dynamic_faults, e15_collectives};
use wavesim_bench::{
    apply_fault_schedule, run_carp_trace, run_dep_trace, run_open_loop, ParallelSweep, RunSpec,
    Scale,
};

fn full_run(seed: u64, protocol: ProtocolKind) -> Vec<(u64, u64)> {
    let topo = Topology::mesh(&[5, 5]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol,
            cache_capacity: 3,
            ..WaveConfig::default()
        },
    );
    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.3,
            pattern: TrafficPattern::HotPairs {
                partners: 2,
                locality: 0.6,
            },
            len: LengthDist::Bimodal {
                short: 8,
                long: 96,
                frac_long: 0.3,
            },
            seed,
            stop_at: 4_000,
        },
    );
    // Collect the delivery schedule directly (ids + times).
    let mut out = Vec::new();
    let mut now = 0;
    loop {
        for m in src.poll(now) {
            net.send(now, m);
        }
        if now >= 4_000 && !net.busy() {
            break;
        }
        net.tick(now);
        for d in net.drain_deliveries() {
            out.push((d.msg.id.0, d.delivered_at));
        }
        now += 1;
        assert!(now < 1_000_000);
    }
    out
}

#[test]
fn identical_seeds_identical_schedules() {
    for protocol in [ProtocolKind::Clrp, ProtocolKind::WormholeOnly] {
        let a = full_run(7, protocol);
        let b = full_run(7, protocol);
        assert_eq!(a, b, "{protocol:?} replay diverged");
        assert!(!a.is_empty());
    }
}

#[test]
fn different_seeds_differ() {
    let a = full_run(7, ProtocolKind::Clrp);
    let b = full_run(8, ProtocolKind::Clrp);
    assert_ne!(a, b);
}

#[test]
fn runner_results_are_reproducible() {
    let go = || {
        let topo = Topology::mesh(&[4, 4]);
        let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load: 0.2,
                seed: 99,
                ..TrafficConfig::default()
            },
        );
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(500, 2_000));
        (
            r.sent,
            r.delivered,
            r.avg_latency.to_bits(),
            r.throughput.to_bits(),
            r.wave.probe_hops,
        )
    };
    assert_eq!(go(), go(), "runner must be bit-for-bit reproducible");
}

/// Golden trace for the parallel executor: an E11-style load sweep run
/// point-by-point in this test, through `ParallelSweep` with one job, and
/// through `ParallelSweep` with four jobs must produce bit-identical
/// `RunResult`s. Each point derives its whole world (network, source,
/// seed) from the point value, so thread scheduling cannot leak in.
#[test]
fn parallel_sweep_results_match_serial_golden_trace() {
    let loads = [0.05_f64, 0.2, 0.6];
    let point = |_: usize, &load: &f64| {
        let topo = Topology::mesh(&[4, 4]);
        let mut net = WaveNetwork::new(topo.clone(), WaveConfig::default());
        let mut src = TrafficSource::new(
            topo,
            TrafficConfig {
                load,
                pattern: TrafficPattern::HotPairs {
                    partners: 3,
                    locality: 0.7,
                },
                len: LengthDist::Fixed(64),
                seed: 131,
                ..TrafficConfig::default()
            },
        );
        let r = run_open_loop(&mut net, &mut src, RunSpec::standard(500, 2_000));
        // Debug output covers every field, including float bit patterns
        // rendered exactly, so string equality is bitwise equality.
        format!("{r:?}")
    };
    let golden: Vec<String> = loads.iter().enumerate().map(|(i, l)| point(i, l)).collect();
    assert_eq!(
        golden,
        ParallelSweep::new(1).run(&loads, point),
        "jobs=1 diverged from the serial golden trace"
    );
    assert_eq!(
        golden,
        ParallelSweep::new(4).run(&loads, point),
        "jobs=4 diverged from the serial golden trace"
    );
}

/// The full E11 table — the artifact EXPERIMENTS.md prints — is
/// byte-identical across job counts.
#[test]
fn e11_table_is_identical_across_job_counts() {
    let scale = Scale {
        side: 4,
        measure: 2_000,
        warmup: 500,
        sweep_points: 3,
    };
    let serial = e11_loadsweep::run(scale);
    let one = e11_loadsweep::run_with_jobs(scale, 1);
    let four = e11_loadsweep::run_with_jobs(scale, 4);
    assert!(!serial.rows.is_empty());
    assert_eq!(serial.rows, one.rows);
    assert_eq!(serial.rows, four.rows, "--jobs 4 must not change the table");
}

/// Closed-loop traffic must not cost determinism either: the E13 DSM
/// table — request/reply round trips with bounded outstanding windows —
/// is byte-identical across job counts.
#[test]
fn e13_table_is_identical_across_job_counts() {
    let scale = Scale {
        side: 4,
        measure: 2_000,
        warmup: 500,
        sweep_points: 3,
    };
    let serial = e13_dsm::run(scale);
    let one = e13_dsm::run_with_jobs(scale, 1);
    let four = e13_dsm::run_with_jobs(scale, 4);
    assert!(!serial.rows.is_empty());
    assert_eq!(serial.rows, one.rows);
    assert_eq!(serial.rows, four.rows, "--jobs 4 must not change the table");
}

/// Dynamic faults must not cost determinism: the E14 table — every run
/// under a drawn `FaultSchedule`, with mid-run teardowns, retries, and
/// wormhole degradation — is byte-identical across job counts.
#[test]
fn e14_fault_schedule_table_is_identical_across_job_counts() {
    let scale = Scale {
        side: 4,
        measure: 2_000,
        warmup: 500,
        sweep_points: 3,
    };
    let serial = e14_dynamic_faults::run(scale);
    let one = e14_dynamic_faults::run_with_jobs(scale, 1);
    let four = e14_dynamic_faults::run_with_jobs(scale, 4);
    assert!(!serial.rows.is_empty());
    assert_eq!(serial.rows, one.rows);
    assert_eq!(serial.rows, four.rows, "--jobs 4 must not change the table");
}

// ---------------------------------------------------------------------
// Golden traces pinned against the seed (pre-active-set) cycle kernel.
//
// The hashes below were captured from the original O(routers × ports ×
// VCs) kernel before the active-set/arena rewrite. Any kernel change
// that alters a single delivery time, arbitration decision, or counter
// flips these hashes — they prove the optimized kernel is observationally
// byte-identical to the seed kernel, not merely "still deterministic".
// To re-capture after an *intentional* semantic change, run:
//     GOLDEN_PRINT=1 cargo test --test determinism golden -- --nocapture
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_bytes(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

fn hash_schedule(schedule: &[(u64, u64)]) -> u64 {
    let mut h = FNV_OFFSET;
    for &(id, at) in schedule {
        fnv1a_bytes(&mut h, &id.to_le_bytes());
        fnv1a_bytes(&mut h, &at.to_le_bytes());
    }
    h
}

fn hash_str(s: &str) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a_bytes(&mut h, s.as_bytes());
    h
}

fn golden_check(name: &str, got: u64, want: u64) {
    if std::env::var("GOLDEN_PRINT").is_ok() {
        println!("GOLDEN {name} = 0x{got:016x}");
        return;
    }
    assert_eq!(
        got, want,
        "{name}: kernel output diverged from the seed kernel (got 0x{got:016x}, want 0x{want:016x})"
    );
}

/// CLRP and wormhole-only delivery schedules (ids + cycles) on a 5×5 mesh
/// under bimodal hot-pair traffic — covers VA/SA arbitration, injection,
/// probes, circuit transfers, and wormhole fallback end to end.
#[test]
fn golden_trace_open_loop_schedules_match_seed_kernel() {
    let clrp = full_run(7, ProtocolKind::Clrp);
    let worm = full_run(7, ProtocolKind::WormholeOnly);
    assert!(!clrp.is_empty() && !worm.is_empty());
    golden_check("clrp_schedule", hash_schedule(&clrp), 0x954f_4883_7849_bf93);
    golden_check(
        "wormhole_schedule",
        hash_schedule(&worm),
        0xf26d_d0b6_cc24_7821,
    );
}

/// The small E11 table (the EXPERIMENTS.md artifact) rendered to its
/// exact row strings, including float bit patterns.
#[test]
fn golden_trace_e11_table_matches_seed_kernel() {
    let scale = Scale {
        side: 4,
        measure: 2_000,
        warmup: 500,
        sweep_points: 3,
    };
    let table = e11_loadsweep::run(scale);
    golden_check(
        "e11_rows",
        hash_str(&format!("{:?}", table.rows)),
        0x560c_6391_ee34_3045,
    );
}

/// The small E14 dynamic-fault table rendered to its exact row strings:
/// pins the entire fault pipeline — MTBF schedule drawing, mid-run
/// teardown-then-fault, bounded retries, and the resulting counters.
#[test]
fn golden_trace_e14_table_is_reproducible() {
    let scale = Scale {
        side: 4,
        measure: 2_000,
        warmup: 500,
        sweep_points: 3,
    };
    let table = e14_dynamic_faults::run(scale);
    golden_check(
        "e14_rows",
        hash_str(&format!("{:?}", table.rows)),
        0x8f53_4c28_6f64_a6f1,
    );
}

/// A mixed CLRP + CARP workload: the same stencil instruction trace is
/// replayed on a CARP network (explicit establish/teardown executed) and
/// a CLRP network (circuits managed implicitly); both full `RunResult`s —
/// every counter and float bit pattern — are pinned.
#[test]
fn golden_trace_clrp_carp_mixed_workload_matches_seed_kernel() {
    let go = |protocol: ProtocolKind| {
        let topo = Topology::mesh(&[4, 4]);
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol,
                cache_capacity: 4,
                ..WaveConfig::default()
            },
        );
        let mut trace = CarpTrace::stencil(&topo, 3, 4, 32, 600, 200);
        let r = run_carp_trace(&mut net, &mut trace, RunSpec::standard(100, 1_500));
        assert!(r.delivered > 0, "{protocol:?} stencil must deliver");
        format!("{r:?}")
    };
    // Re-pinned when `WaveStats` grew the dynamic-fault counters (all
    // zero here — the filtered strings still hash to the seed goldens
    // 0x22f1_b1c8_63b9_97d1 / 0xbdc6_8777_3a97_ad83; only the Debug
    // schema changed, not a single counter or delivery).
    golden_check(
        "carp_stencil_result",
        hash_str(&go(ProtocolKind::Carp)),
        0x8941_d425_5398_c2ae,
    );
    golden_check(
        "clrp_stencil_result",
        hash_str(&go(ProtocolKind::Clrp)),
        0xf632_b5ec_e635_f488,
    );
}

// ---------------------------------------------------------------------
// Spatial sharding: `--shards N` partitions the wormhole fabric into N
// contiguous router bands stepped on N threads with conservative
// cross-shard synchronization. The contract is *byte identity* — not
// statistical equivalence — so every counter and float bit pattern of
// the `RunResult` is compared across shard counts, and representative
// configurations are pinned against the serial kernel with goldens.
// ---------------------------------------------------------------------

/// One complete run on a `side`×`side` torus at the given shard count.
/// CLRP runs the open-loop hot-pair workload; CARP replays a stencil
/// instruction trace. With `faults`, a drawn MTBF link fail/repair
/// schedule tears circuits down mid-run.
fn sharded_run(side: u16, protocol: ProtocolKind, shards: usize, faults: bool) -> String {
    let topo = Topology::torus(&[side, side]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            protocol,
            cache_capacity: 8,
            ..WaveConfig::default()
        },
    );
    net.set_shards(shards);
    if faults {
        let sched = FaultSchedule::random_mtbf(&topo, 4_000, 300, 1_000, 17);
        assert!(!sched.is_empty(), "fault schedule drew no events");
        apply_fault_schedule(&mut net, &sched).expect("schedule fits the network");
    }
    let r = match protocol {
        ProtocolKind::Carp => {
            let mut trace = CarpTrace::stencil(&topo, 3, 4, 32, 400, 150);
            run_carp_trace(&mut net, &mut trace, RunSpec::standard(150, 1_200))
        }
        _ => {
            let mut src = TrafficSource::new(
                topo,
                TrafficConfig {
                    load: 0.25,
                    pattern: TrafficPattern::HotPairs {
                        partners: 3,
                        locality: 0.7,
                    },
                    len: LengthDist::Fixed(48),
                    seed: 131,
                    ..TrafficConfig::default()
                },
            );
            run_open_loop(&mut net, &mut src, RunSpec::standard(300, 1_200))
        }
    };
    assert!(r.delivered > 0, "{side}x{side} {protocol:?} must deliver");
    // Debug output covers every field, including float bit patterns
    // rendered exactly, so string equality is bitwise equality.
    format!("{r:?}")
}

/// The full matrix: 8×8 and 16×16 tori, CLRP and CARP, with and without
/// a dynamic fault schedule — `--shards 2` and `--shards 4` must produce
/// the exact `RunResult` bytes of `--shards 1`.
#[test]
fn sharded_runs_are_byte_identical_across_shard_counts() {
    for side in [8u16, 16] {
        for protocol in [ProtocolKind::Clrp, ProtocolKind::Carp] {
            for faults in [false, true] {
                let serial = sharded_run(side, protocol, 1, faults);
                for shards in [2usize, 4] {
                    assert_eq!(
                        serial,
                        sharded_run(side, protocol, shards, faults),
                        "{side}x{side} torus {protocol:?} faults={faults}: \
                         --shards {shards} diverged from --shards 1"
                    );
                }
            }
        }
    }
}

/// Representative sharded configurations pinned against the serial seed
/// kernel: the shard partitioning must not merely be self-consistent
/// across shard counts — it must reproduce the original single-thread
/// kernel byte for byte.
#[test]
fn golden_trace_sharded_runs_match_seed_kernel() {
    golden_check(
        "sharded_clrp_8x8_faults",
        hash_str(&sharded_run(8, ProtocolKind::Clrp, 4, true)),
        0x2283_ec3d_743c_71ba,
    );
    golden_check(
        "sharded_carp_16x16",
        hash_str(&sharded_run(16, ProtocolKind::Carp, 4, false)),
        0xfbe4_3188_c230_e789,
    );
}

// ---------------------------------------------------------------------
// Dependency-aware replay (`run --replay-trace`, E15): release order is
// set by delivery events, which makes determinism *harder* — a dependent
// message's injection cycle is itself a simulation output. The replay
// must still be a pure function of (trace, config), byte-identical
// across shard counts and job counts.
// ---------------------------------------------------------------------

/// One all-to-all collective replayed to completion at the given shard
/// count; the full `RunResult` Debug string pins every counter and float
/// bit pattern.
fn replayed_collective(protocol: ProtocolKind, shards: usize) -> String {
    let topo = Topology::mesh(&[4, 4]);
    let trace = collectives::all_to_all(&topo, 24);
    let mut net = WaveNetwork::new(
        topo,
        WaveConfig {
            protocol,
            cache_capacity: 8,
            ..WaveConfig::default()
        },
    );
    net.set_shards(shards);
    let r = run_dep_trace(&mut net, &trace, RunSpec::replay(trace.horizon()));
    assert_eq!(
        r.delivered,
        trace.len() as u64,
        "{protocol:?} --shards {shards}: the whole collective must deliver"
    );
    format!("{r:?}")
}

/// The diamond criterion at scale: an all-to-all dependency trace (every
/// phase gated on the previous phase's deliveries) replays byte-identically
/// across `--shards 1/2/4`, under CLRP and under plain wormhole.
#[test]
fn dep_trace_replay_is_byte_identical_across_shard_counts() {
    for protocol in [ProtocolKind::Clrp, ProtocolKind::WormholeOnly] {
        let serial = replayed_collective(protocol, 1);
        for shards in [2usize, 4] {
            assert_eq!(
                serial,
                replayed_collective(protocol, shards),
                "{protocol:?}: replay diverged at --shards {shards}"
            );
        }
    }
}

/// The full E15 collective grid — every collective × protocol × length —
/// is byte-identical across job counts.
#[test]
fn e15_table_is_identical_across_job_counts() {
    let scale = Scale {
        side: 4,
        measure: 2_000,
        warmup: 500,
        sweep_points: 2,
    };
    let serial = e15_collectives::run(scale);
    let one = e15_collectives::run_with_jobs(scale, 1);
    let four = e15_collectives::run_with_jobs(scale, 4);
    assert!(!serial.rows.is_empty());
    assert_eq!(serial.rows, one.rows);
    assert_eq!(serial.rows, four.rows, "--jobs 4 must not change the table");
}

/// The small E13 and E15 tables rendered to their exact row strings:
/// pins the closed-loop request/reply pipeline and the dependency-gated
/// collective replay against this kernel.
#[test]
fn golden_trace_e13_and_e15_tables_are_reproducible() {
    let scale = Scale {
        side: 4,
        measure: 2_000,
        warmup: 500,
        sweep_points: 3,
    };
    golden_check(
        "e13_rows",
        hash_str(&format!("{:?}", e13_dsm::run(scale).rows)),
        0x0a2a_730d_def9_e8e4,
    );
    let scale = Scale {
        sweep_points: 2,
        ..scale
    };
    golden_check(
        "e15_rows",
        hash_str(&format!("{:?}", e15_collectives::run(scale).rows)),
        0x3c9a_aca5_3ba0_b86a,
    );
}

/// A cyclic dependency trace can never finish replaying, so it must be
/// rejected when *loaded*, with an error naming a stuck message — not
/// hang the replay loop later.
#[test]
fn cyclic_dep_traces_are_rejected_at_load() {
    let text = r#"{"version": 1}
{"id": 0, "src": 0, "dest": 5, "len": 8, "created": 0, "deps": [2]}
{"id": 1, "src": 5, "dest": 6, "len": 8, "created": 0, "deps": [0]}
{"id": 2, "src": 6, "dest": 0, "len": 8, "created": 0, "deps": [1]}
"#;
    let err = trace_io::load_dep_trace(text.as_bytes()).expect_err("cycle must be rejected");
    assert!(
        err.contains("cyclic dependency") && err.contains('0'),
        "error must diagnose the cycle and name a stuck message: {err}"
    );

    // Unknown dependency ids are caught the same way.
    let text = r#"{"version": 1}
{"id": 0, "src": 0, "dest": 5, "len": 8, "created": 0, "deps": [99]}
"#;
    let err = trace_io::load_dep_trace(text.as_bytes()).expect_err("dangling dep must be rejected");
    assert!(err.contains("unknown message id 99"), "{err}");
}
