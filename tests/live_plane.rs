//! The live observability plane, end to end: the global status board, the
//! HTTP endpoint, the in-run analytics fold, and the watchdog subsystem —
//! plus the determinism guarantee that arming all of it changes nothing
//! about a run's results.
//!
//! The status board is process-global (the serving thread reads what the
//! drive loop writes), so every test that arms it serializes on [`PLANE`];
//! this suite owns its process, so nothing else races the board.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;

use wavesim::core::{ProtocolKind, WaveConfig, WaveNetwork};
use wavesim::network::Message;
use wavesim::sim::stats::Histogram;
use wavesim::topology::{NodeId, Topology};
use wavesim::trace::timeseries::WindowSeries;
use wavesim::trace::TraceRecord;
use wavesim::workloads::{LengthDist, TrafficConfig, TrafficPattern, TrafficSource};
use wavesim_analyze::{analyze, report, take_analysis, AnalyzeOptions};
use wavesim_bench::{livestate, run_open_loop, run_scripted, serve, tracecap, watchdog, RunSpec};

/// Serializes tests that arm the process-global status board.
static PLANE: Mutex<()> = Mutex::new(());

fn lock_plane() -> std::sync::MutexGuard<'static, ()> {
    PLANE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One deterministic open-loop workload; everything derives from the
/// arguments so repeat runs are bit-identical.
fn drive_workload(seed: u64, shards: usize) -> wavesim_bench::RunResult {
    let topo = Topology::mesh(&[4, 4]);
    let mut net = WaveNetwork::new(
        topo.clone(),
        WaveConfig {
            seed,
            ..WaveConfig::default()
        },
    );
    net.set_shards(shards);
    let mut src = TrafficSource::new(
        topo,
        TrafficConfig {
            load: 0.2,
            pattern: TrafficPattern::HotPairs {
                partners: 3,
                locality: 0.7,
            },
            len: LengthDist::Fixed(32),
            seed,
            stop_at: u64::MAX,
        },
    );
    run_open_loop(&mut net, &mut src, RunSpec::standard(500, 3000))
}

/// Runs [`drive_workload`] with the flight recorder armed (and, when
/// `live`, the in-run analytics fold teed beside it). Returns the run
/// result, the live analysis, and the captured record stream.
fn captured_run(
    seed: u64,
    shards: usize,
    live: bool,
) -> (
    wavesim_bench::RunResult,
    Option<wavesim_analyze::Analysis>,
    Vec<TraceRecord>,
) {
    tracecap::arm_flight_recorder(1 << 20);
    let handle = live.then(|| {
        let (handle, sink) = wavesim_analyze::live_sink(AnalyzeOptions::default());
        let mut slot = Some(sink);
        tracecap::arm_extra_sink(move || {
            Box::new(slot.take().expect("one live sink per armed run"))
        });
        handle
    });
    let r = drive_workload(seed, shards);
    tracecap::disarm_flight_recorder();
    tracecap::disarm_extra_sink();
    let mut caps = tracecap::take_captured();
    assert_eq!(caps.len(), 1);
    let cap = caps.pop().unwrap();
    assert_eq!(cap.dropped, 0, "ring must hold the whole run");
    let analysis = handle.as_ref().and_then(take_analysis);
    (r, analysis, cap.records)
}

#[test]
fn armed_board_publishes_consistent_vitals() {
    let _guard = lock_plane();
    livestate::arm(false);
    let r = drive_workload(11, 1);
    let status = livestate::snapshot().expect("armed board has a status");
    livestate::disarm();
    assert!(status.done, "finish() marks the run done");
    assert_eq!(status.cycle, r.end);
    assert_eq!(status.sent, r.sent);
    assert_eq!(status.delivered, r.delivered);
    assert!(status.run.starts_with("clrp mesh-4x4"), "{}", status.run);
    assert!(status.cycles_per_sec > 0.0);
    assert!((0.0..=1.0).contains(&status.hit_rate()));
    assert!(livestate::snapshot().is_none(), "disarm hides the board");
}

#[test]
fn endpoint_serves_armed_board_over_http() {
    let _guard = lock_plane();
    livestate::arm(false);
    let r = drive_workload(12, 1);
    let addr = serve::serve("127.0.0.1:0").expect("bind");
    let get = |path: &str| {
        let mut c = TcpStream::connect(addr).expect("connect");
        c.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .expect("send");
        let mut out = String::new();
        c.read_to_string(&mut out).expect("read");
        out
    };
    let prom = get("/metrics");
    let json = get("/status");
    livestate::disarm();

    assert!(prom.starts_with("HTTP/1.0 200"), "{prom}");
    let body = prom.split("\r\n\r\n").nth(1).expect("body");
    assert!(body.contains("wavesim_live_run_info{run=\"clrp mesh-4x4"));
    // Exposition-format check: every sample line is `name[{labels}] value`.
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample line");
        assert!(value.parse::<f64>().is_ok(), "non-numeric sample: {line:?}");
    }
    assert!(body.contains(&format!("wavesim_live_cycle {}", r.end)));

    assert!(json.starts_with("HTTP/1.0 200"), "{json}");
    let body = json.split("\r\n\r\n").nth(1).expect("body");
    let doc = wavesim::json::Value::parse(body).expect("valid JSON status");
    assert_eq!(
        doc.get("delivered").and_then(wavesim::json::Value::as_u64),
        Some(r.delivered)
    );
    assert_eq!(
        doc.get("done").and_then(|v| match v {
            wavesim::json::Value::Bool(b) => Some(*b),
            _ => None,
        }),
        Some(true)
    );
}

#[test]
fn live_fold_matches_offline_analyze_across_shards() {
    let _guard = lock_plane();
    let mut reports = Vec::new();
    for shards in [1usize, 3] {
        let (r, live, records) = captured_run(21, shards, true);
        assert!(r.clean(), "{r:?}");
        let live = live.expect("armed live fold yields an analysis");
        let offline = analyze(&records, AnalyzeOptions::default());
        // The live report (folded during the run on the writer thread) is
        // byte-identical to the offline pass over the same capture.
        let live_report = report::render(&live);
        assert_eq!(live_report, report::render(&offline), "shards={shards}");
        assert_eq!(
            wavesim::json::Value::pretty(&report::to_json(&live)),
            wavesim::json::Value::pretty(&report::to_json(&offline)),
            "shards={shards}"
        );
        reports.push(live_report);
    }
    // And identical across shard counts: sharding changes wall-clock
    // only, never the event stream.
    assert_eq!(reports[0], reports[1]);
}

#[test]
fn fully_armed_plane_leaves_the_run_untouched() {
    let _guard = lock_plane();
    let (baseline, _, base_records) = captured_run(31, 1, false);
    // Arm everything at once: board, echo off, generous watchdog, live
    // fold. The run result and the captured record stream must not move.
    livestate::arm(false);
    watchdog::arm(watchdog::WatchdogConfig {
        stall_cycles: Some(1_000_000),
        retry_limit: Some(1_000_000),
        deadlock: true,
        abort: true,
        ..watchdog::WatchdogConfig::default()
    });
    let (armed, live, armed_records) = captured_run(31, 1, true);
    watchdog::disarm();
    livestate::disarm();
    let wd = watchdog::take_reports();
    assert_eq!(wd.len(), 1);
    assert!(wd[0].trips.is_empty(), "{:?}", wd[0]);
    assert!(live.is_some());
    assert_eq!(format!("{baseline:?}"), format!("{armed:?}"));
    assert_eq!(base_records, armed_records);
}

#[test]
fn watchdog_abort_truncates_the_sampled_series_at_the_trip() {
    let _guard = lock_plane();
    // One long wormhole message and a 16-cycle stall SLO: the first
    // 64-cycle observation trips and aborts, mid-window for the sampler.
    let mut net = WaveNetwork::new(
        Topology::mesh(&[4, 4]),
        WaveConfig {
            protocol: ProtocolKind::WormholeOnly,
            ..WaveConfig::default()
        },
    );
    let script = [(0u64, Message::new(1, NodeId(0), NodeId(15), 512, 0))];
    watchdog::arm(watchdog::WatchdogConfig {
        stall_cycles: Some(16),
        abort: true,
        ..watchdog::WatchdogConfig::default()
    });
    wavesim_bench::timeseries::arm_sampler(1000, false);
    let r = run_scripted(&mut net, &script, RunSpec::standard(0, 100));
    wavesim_bench::timeseries::disarm_sampler();
    watchdog::disarm();
    let reports = watchdog::take_reports();
    assert!(reports[0].aborted);
    assert!(r.stalled && !r.clean());
    let series = wavesim_bench::timeseries::take_series().expect("sampled");
    // The final (partial) window ends at the abort cycle, not at the
    // window boundary — early aborts never fabricate a full window.
    let last = series.rows.last().expect("at least one window");
    assert_eq!(last.end, r.end, "{last:?}");
    assert!(!last.end.is_multiple_of(1000), "abort lands mid-window");
    assert!(last.end < 1000, "tripped at the first 64-cycle observation");
}

#[test]
fn histogram_merge_is_order_independent_across_shards() {
    // Shards absorb per-shard histograms in whatever order the sweep
    // collects them; merged percentiles must not depend on that order.
    let lats: Vec<u64> = (0..400u64).map(|i| (i * 37) % 1000 + 1).collect();
    let whole = {
        let mut h = Histogram::new();
        for &l in &lats {
            h.record(l);
        }
        h
    };
    // Split into 4 "shards" two different ways, merge in forward and
    // reverse order.
    let shard = |stride: usize| -> Vec<Histogram> {
        let mut hs: Vec<Histogram> = (0..4).map(|_| Histogram::new()).collect();
        for (i, &l) in lats.iter().enumerate() {
            hs[(i / stride) % 4].record(l);
        }
        hs
    };
    for parts in [shard(1), shard(25)] {
        for reverse in [false, true] {
            let mut merged = Histogram::new();
            let order: Vec<&Histogram> = if reverse {
                parts.iter().rev().collect()
            } else {
                parts.iter().collect()
            };
            for h in order {
                merged.merge(h);
            }
            assert_eq!(merged.count(), whole.count());
            assert_eq!(merged.p50(), whole.p50());
            assert_eq!(merged.p95(), whole.p95());
            assert_eq!(merged.p99(), whole.p99());
            assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        }
    }
}

#[test]
fn window_series_keeps_real_end_when_cut_mid_window() {
    // Direct WindowSeries check mirroring the watchdog-abort test above:
    // deliveries land in windows [0,100) and [100,200), then the run is
    // cut at 137 — the trailing window must report its true extent.
    let mut s = WindowSeries::new(100, 16);
    s.record_delivery(40, 12, 8);
    s.record_delivery(110, 20, 8);
    s.record_delivery(130, 25, 8);
    let rows = s.finish(137);
    assert_eq!(rows.len(), 2);
    assert_eq!((rows[0].start, rows[0].end), (0, 100));
    assert_eq!(rows[0].delivered, 1);
    assert_eq!((rows[1].start, rows[1].end), (100, 137));
    assert_eq!(rows[1].delivered, 2);
}
