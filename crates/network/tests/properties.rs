//! Randomized-but-deterministic tests of the wormhole fabric:
//! conservation laws that must hold for any workload on any topology with
//! any legal routing function. Configurations are drawn from a seeded
//! [`SimRng`] so coverage is property-style while runs stay reproducible.

use wavesim_network::{Message, WormholeConfig, WormholeFabric};
use wavesim_sim::SimRng;
use wavesim_topology::{NodeId, RoutingKind, Topology};

fn drive(f: &mut WormholeFabric, max: u64) -> u64 {
    let mut now = 0;
    while f.busy() && now < max {
        f.tick(now);
        now += 1;
    }
    now
}

/// Flit conservation: for minimal routing, every flit crosses exactly
/// `distance(src, dest)` links, and every injected flit is delivered.
#[test]
fn flit_conservation() {
    let mut rng = SimRng::new(0x77a7e);
    for case in 0..20 {
        let torus = rng.chance(0.5);
        let adaptive = rng.chance(0.5);
        let topo = if torus {
            Topology::torus(&[4, 4])
        } else {
            Topology::mesh(&[4, 4])
        };
        let kind = if adaptive {
            RoutingKind::Adaptive
        } else {
            RoutingKind::Deterministic
        };
        let w = 1 + rng.below(3) as u8;
        let w = match (kind, torus) {
            (RoutingKind::Deterministic, false) => w,
            (RoutingKind::Deterministic, true) => (w.max(2) / 2) * 2,
            (RoutingKind::Adaptive, false) => w.max(2),
            (RoutingKind::Adaptive, true) => w.max(3),
        };
        let depth = 1 + rng.below(5) as u32;
        let nmsgs = 1 + rng.index(59);
        let mut f = WormholeFabric::new(
            topo.clone(),
            WormholeConfig {
                w,
                buffer_depth: depth,
                routing: kind,
                routing_delay: 1,
            },
        );
        let mut total_flits = 0u64;
        let mut total_hop_flits = 0u64;
        for i in 0..nmsgs {
            let src = NodeId(rng.below(16) as u32);
            let mut dest = NodeId(rng.below(16) as u32);
            while dest == src {
                dest = NodeId(rng.below(16) as u32);
            }
            let len = 1 + rng.below(32) as u32;
            f.inject(Message::new(i as u64, src, dest, len, 0));
            total_flits += u64::from(len);
            total_hop_flits += u64::from(len) * u64::from(topo.distance(src, dest));
        }
        drive(&mut f, 2_000_000);
        assert!(!f.busy(), "case {case}: fabric must drain");
        let s = f.stats();
        assert_eq!(s.delivered_msgs, nmsgs as u64);
        assert_eq!(s.delivered_flits, total_flits, "every flit delivered");
        assert_eq!(
            s.flit_hops, total_hop_flits,
            "minimal routing: flit-hops equal len x distance exactly"
        );
        assert_eq!(f.in_flight_flits(), 0);
        assert_eq!(f.in_flight_msgs(), 0);
    }
}

/// Deliveries are exactly-once and per-source-destination FIFO on
/// deterministic routing (single path + VC ordering).
#[test]
fn per_pair_fifo_on_deterministic_routing() {
    let mut rng = SimRng::new(0xf1f0);
    for _ in 0..20 {
        let nmsgs = 2 + rng.index(38);
        let topo = Topology::mesh(&[4, 4]);
        let mut f = WormholeFabric::new(
            topo,
            WormholeConfig {
                w: 1, // single VC: strict per-pair order
                ..WormholeConfig::default()
            },
        );
        let pairs = [(0u32, 15u32), (3, 12), (5, 10)];
        let mut expected: std::collections::HashMap<(u32, u32), Vec<u64>> =
            std::collections::HashMap::new();
        for i in 0..nmsgs {
            let &(s, d) = &pairs[rng.index(pairs.len())];
            let len = 1 + rng.below(16) as u32;
            f.inject(Message::new(i as u64, NodeId(s), NodeId(d), len, 0));
            expected.entry((s, d)).or_default().push(i as u64);
        }
        drive(&mut f, 2_000_000);
        let mut got: std::collections::HashMap<(u32, u32), Vec<u64>> =
            std::collections::HashMap::new();
        for d in f.drain_deliveries() {
            got.entry((d.msg.src.0, d.msg.dest.0))
                .or_default()
                .push(d.msg.id.0);
        }
        assert_eq!(got, expected, "per-pair FIFO with a single VC");
    }
}
