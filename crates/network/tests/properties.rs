//! Property-based tests of the wormhole fabric: conservation laws that
//! must hold for any workload on any topology with any legal routing
//! function.

use proptest::prelude::*;
use wavesim_network::{Message, WormholeConfig, WormholeFabric};
use wavesim_sim::SimRng;
use wavesim_topology::{NodeId, RoutingKind, Topology};

fn drive(f: &mut WormholeFabric, max: u64) -> u64 {
    let mut now = 0;
    while f.busy() && now < max {
        f.tick(now);
        now += 1;
    }
    now
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 20,
        .. ProptestConfig::default()
    })]

    /// Flit conservation: for minimal routing, every flit crosses exactly
    /// `distance(src, dest)` links, and every injected flit is delivered.
    #[test]
    fn flit_conservation(
        seed in any::<u64>(),
        w in 1u8..4,
        depth in 1u32..6,
        nmsgs in 1usize..60,
        adaptive in any::<bool>(),
        torus in any::<bool>(),
    ) {
        let topo = if torus { Topology::torus(&[4, 4]) } else { Topology::mesh(&[4, 4]) };
        let kind = if adaptive { RoutingKind::Adaptive } else { RoutingKind::Deterministic };
        let w = match (kind, torus) {
            (RoutingKind::Deterministic, false) => w,
            (RoutingKind::Deterministic, true) => (w.max(2) / 2) * 2,
            (RoutingKind::Adaptive, false) => w.max(2),
            (RoutingKind::Adaptive, true) => w.max(3),
        };
        let mut f = WormholeFabric::new(topo.clone(), WormholeConfig {
            w,
            buffer_depth: depth,
            routing: kind,
            routing_delay: 1,
        });
        let mut rng = SimRng::new(seed);
        let mut total_flits = 0u64;
        let mut total_hop_flits = 0u64;
        for i in 0..nmsgs {
            let src = NodeId(rng.below(16) as u32);
            let mut dest = NodeId(rng.below(16) as u32);
            while dest == src {
                dest = NodeId(rng.below(16) as u32);
            }
            let len = 1 + rng.below(32) as u32;
            f.inject(Message::new(i as u64, src, dest, len, 0));
            total_flits += u64::from(len);
            total_hop_flits += u64::from(len) * u64::from(topo.distance(src, dest));
        }
        drive(&mut f, 2_000_000);
        prop_assert!(!f.busy(), "fabric must drain");
        let s = f.stats();
        prop_assert_eq!(s.delivered_msgs, nmsgs as u64);
        prop_assert_eq!(s.delivered_flits, total_flits, "every flit delivered");
        prop_assert_eq!(
            s.flit_hops, total_hop_flits,
            "minimal routing: flit-hops equal len x distance exactly"
        );
        prop_assert_eq!(f.in_flight_flits(), 0);
        prop_assert_eq!(f.in_flight_msgs(), 0);
    }

    /// Deliveries are exactly-once and per-source-destination FIFO on
    /// deterministic routing (single path + VC ordering).
    #[test]
    fn per_pair_fifo_on_deterministic_routing(
        seed in any::<u64>(),
        nmsgs in 2usize..40,
    ) {
        let topo = Topology::mesh(&[4, 4]);
        let mut f = WormholeFabric::new(topo, WormholeConfig {
            w: 1, // single VC: strict per-pair order
            ..WormholeConfig::default()
        });
        let mut rng = SimRng::new(seed);
        let pairs = [(0u32, 15u32), (3, 12), (5, 10)];
        let mut expected: std::collections::HashMap<(u32, u32), Vec<u64>> =
            std::collections::HashMap::new();
        for i in 0..nmsgs {
            let &(s, d) = &pairs[rng.index(pairs.len())];
            let len = 1 + rng.below(16) as u32;
            f.inject(Message::new(i as u64, NodeId(s), NodeId(d), len, 0));
            expected.entry((s, d)).or_default().push(i as u64);
        }
        drive(&mut f, 2_000_000);
        let mut got: std::collections::HashMap<(u32, u32), Vec<u64>> =
            std::collections::HashMap::new();
        for d in f.drain_deliveries() {
            got.entry((d.msg.src.0, d.msg.dest.0)).or_default().push(d.msg.id.0);
        }
        prop_assert_eq!(got, expected, "per-pair FIFO with a single VC");
    }
}
