//! # wavesim-network — flit-level wormhole fabric
//!
//! Substrate #4 of the reproduction: the conventional wormhole-switched
//! network that forms switch `S0` of every wave router (paper Fig. 1/2).
//! The wave-switching protocols fall back on this fabric whenever a
//! circuit cannot be established (CLRP phase 3, CARP fallback), and the
//! paper's deadlock proofs lean on its routing algorithm being
//! deadlock-free — which `wavesim-topology::cdg` certifies and this crate
//! enforces structurally (packets only ever wait on virtual channels their
//! routing function offers).
//!
//! Model fidelity (matching the level of detail of 1990s interconnect
//! papers):
//!
//! * messages are wormholes: a head flit carrying the route, body flits,
//!   and a tail flit that releases channels behind it;
//! * each unidirectional physical link carries `w` virtual channels with
//!   private `buffer_depth`-flit input buffers and credit-based flow
//!   control (one-cycle link and credit latency);
//! * a router moves at most one flit per input port and per output port
//!   per cycle (crossbar constraint), with round-robin arbitration;
//! * heads pay a configurable `routing_delay` at every hop;
//! * delivery consumes one flit per cycle per node (single ejection
//!   channel) and is never refused — the sink-always-accepts assumption
//!   both the Dally–Seitz and Duato proofs require.
//!
//! One simplification relative to the paper is documented in DESIGN.md:
//! the `k` one-flit *control channels* that share physical bandwidth with
//! the data VCs in the real router are modelled as a separate narrow
//! control plane (in `wavesim-core`) that does not steal data-flit slots;
//! probe traffic is a negligible fraction of link bandwidth.

#![warn(missing_docs)]

pub mod fabric;
pub mod message;
pub mod router;

pub use fabric::{FabricStats, WormholeConfig, WormholeFabric};
pub use message::{Delivery, Flit, Message, MessageId};
