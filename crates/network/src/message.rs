//! Messages, flits, and delivery records.

use wavesim_sim::Cycle;
use wavesim_topology::NodeId;

/// Globally unique message identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

impl std::fmt::Display for MessageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A message as submitted by a traffic source.
///
/// Lengths are in flits and include the head flit; a `len_flits == 1`
/// message is a single head+tail flit, as in the paper's short-message
/// discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Unique id (assigned by the traffic layer).
    pub id: MessageId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Total length in flits, head included (≥ 1).
    pub len_flits: u32,
    /// Cycle at which the source generated the message (queueing delay at
    /// the source counts toward reported latency, as in the literature).
    pub created_at: Cycle,
}

impl Message {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics if `len_flits == 0` or `src == dest` (self-sends never enter
    /// the network in this model).
    #[must_use]
    pub fn new(id: u64, src: NodeId, dest: NodeId, len_flits: u32, created_at: Cycle) -> Self {
        assert!(len_flits >= 1, "a message has at least the head flit");
        assert_ne!(src, dest, "self-sends do not enter the network");
        Self {
            id: MessageId(id),
            src,
            dest,
            len_flits,
            created_at,
        }
    }
}

/// One flit of a wormhole message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Owning message.
    pub msg: MessageId,
    /// Destination (replicated from the header for routing convenience;
    /// hardware keeps it in per-VC state after the head passes).
    pub dest: NodeId,
    /// Position within the message (0 = head).
    pub seq: u32,
    /// Fabric-assigned arena slot of the in-flight message record. Carried
    /// in every flit so tail processing reaches the metadata without a
    /// map lookup; meaningless outside the fabric that assigned it.
    pub slot: u32,
    /// True for the first flit — carries routing information.
    pub is_head: bool,
    /// True for the last flit — releases resources behind it.
    pub is_tail: bool,
}

impl Flit {
    /// Builds flit `seq` of `msg`, tagged with the fabric arena `slot`.
    #[must_use]
    pub fn of(msg: &Message, seq: u32, slot: u32) -> Self {
        Self {
            msg: msg.id,
            dest: msg.dest,
            seq,
            slot,
            is_head: seq == 0,
            is_tail: seq + 1 == msg.len_flits,
        }
    }
}

/// How a delivered message travelled — recorded for per-mode statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryMode {
    /// Flit-by-flit through the wormhole fabric (switch `S0`).
    Wormhole,
    /// Over a pre-established physical circuit (switches `S1..Sk`).
    Circuit,
}

/// Record of a completed message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The message.
    pub msg: Message,
    /// Cycle the last flit reached the destination's delivery buffer.
    pub delivered_at: Cycle,
    /// Transport used.
    pub mode: DeliveryMode,
}

impl Delivery {
    /// End-to-end latency in cycles (creation to last-flit delivery).
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.delivered_at.saturating_sub(self.msg.created_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_framing() {
        let m = Message::new(1, NodeId(0), NodeId(5), 4, 100);
        let f0 = Flit::of(&m, 0, 7);
        assert!(f0.is_head && !f0.is_tail);
        let f3 = Flit::of(&m, 3, 7);
        assert!(!f3.is_head && f3.is_tail);
        let f1 = Flit::of(&m, 1, 7);
        assert!(!f1.is_head && !f1.is_tail);
    }

    #[test]
    fn single_flit_message_is_head_and_tail() {
        let m = Message::new(2, NodeId(0), NodeId(1), 1, 0);
        let f = Flit::of(&m, 0, 0);
        assert!(f.is_head && f.is_tail);
    }

    #[test]
    fn delivery_latency() {
        let m = Message::new(3, NodeId(0), NodeId(1), 8, 50);
        let d = Delivery {
            msg: m,
            delivered_at: 130,
            mode: DeliveryMode::Wormhole,
        };
        assert_eq!(d.latency(), 80);
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn self_send_rejected() {
        let _ = Message::new(4, NodeId(3), NodeId(3), 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least the head flit")]
    fn zero_length_rejected() {
        let _ = Message::new(5, NodeId(0), NodeId(1), 0, 0);
    }
}
