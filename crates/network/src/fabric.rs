//! The wormhole fabric: every router of the network plus the per-cycle
//! pipeline that moves flits between them.
//!
//! Each simulated cycle runs four phases over all routers in deterministic
//! node order:
//!
//! 1. **VA** — routing + virtual-channel allocation: unrouted head flits at
//!    buffer fronts ask the routing function for candidates and try to
//!    acquire a free output VC (round-robin over input VCs);
//! 2. **SA** — switch allocation + traversal: every output port forwards at
//!    most one flit from an eligible input VC (credits permitting), every
//!    input port contributes at most one flit (crossbar constraint);
//! 3. **Injection** — queued messages claim idle injection VCs and stream
//!    one flit per cycle into their buffers;
//! 4. **Commit** — flits sent in phase 2 arrive in downstream buffers and
//!    credits return upstream, both with one-cycle latency.
//!
//! Tail flits release resources as they pass: the input-VC route when the
//! tail leaves a router, the output-VC ownership when the tail is forwarded
//! through it — the defining behaviour of wormhole switching that makes
//! blocked messages hold channels (paper §1) and deadlock a real danger.
//!
//! # Active-set scheduling
//!
//! The tick loop is O(work), not O(network): only routers in the *active
//! set* are scanned. A router enters the set when a message is injected at
//! it or a flit arrives in one of its buffers, and leaves only after being
//! scanned through a full tick and found [`Router::idle`]. The invariant is
//! that every non-idle router is in the set; idle routers carry no
//! cycle-dependent state (the VA round-robin pointer is derived from the
//! cycle number, and SA pointers only move on grants), so skipping them is
//! byte-identical to scanning them. The set is iterated in ascending router
//! id, preserving the seed kernel's deterministic phase order. Within a
//! router, the VA and SA stages scan per-VC bitsets ([`Router::va_pending`],
//! [`Router::sa_ready`]) instead of sweeping every VC linearly, so
//! `vcs_touched` counts VCs that could actually make progress.
//!
//! # Deterministic spatial sharding
//!
//! A run can be partitioned across threads with [`WormholeFabric::set_shards`]
//! without changing a single output byte. The partition is spatial:
//! contiguous router-id bands (row-major node numbering makes these
//! contiguous regions of the mesh/torus). The scheme works because the VA,
//! SA, and injection phases are **router-local**: they read and write only
//! the state of the router being scanned, plus immutable topology/routing
//! tables. Every cross-router effect — flit arrivals, credit returns,
//! message-slab bookkeeping, deliveries — is buffered in a per-shard
//! scratch (`ShardScratch`) and applied in a serial merge in shard-index
//! order.
//! Since shards cover ascending id ranges and each shard visits its routers
//! ascending, the merge replays effects in exactly the order the serial
//! kernel produced them. The sync model is conservative with a one-cycle
//! lookahead (the link latency): shards run a full cycle independently,
//! then barrier at the merge; no shard can observe another's cycle-`t`
//! output before cycle `t+1`, which is precisely the flit/credit pipeline
//! latency the serial kernel already enforces.

use wavesim_sim::{BitSet, Cycle, CycleKernelStats};
use wavesim_topology::{Candidate, NodeId, PortDir, RoutingKind, Topology, WormholeRouting};

use crate::message::{Delivery, DeliveryMode, Flit, Message, MessageId};
use crate::router::{
    route_pack, route_port, route_vc, Emitting, Queued, Router, OWNER_NONE, ROUTE_NONE,
};

/// Configuration of the wormhole fabric (the paper's `S0` switch plane).
#[derive(Debug, Clone, Copy)]
pub struct WormholeConfig {
    /// Virtual channels per physical link — the paper's `w` parameter.
    pub w: u8,
    /// Flit buffer depth per virtual channel.
    pub buffer_depth: u32,
    /// Routing function family.
    pub routing: RoutingKind,
    /// Cycles a head flit spends in the routing control unit per hop.
    pub routing_delay: u32,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        Self {
            w: 2,
            buffer_depth: 4,
            routing: RoutingKind::Deterministic,
            routing_delay: 1,
        }
    }
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricStats {
    /// Messages accepted by [`WormholeFabric::inject`].
    pub injected_msgs: u64,
    /// Messages fully delivered.
    pub delivered_msgs: u64,
    /// Flits handed to destination delivery buffers.
    pub delivered_flits: u64,
    /// Flits forwarded across links (hop count · flit count).
    pub flit_hops: u64,
    /// Successful output-VC allocations.
    pub va_allocs: u64,
}

impl FabricStats {
    /// Field-wise accumulation of a per-shard delta.
    fn absorb(&mut self, d: &FabricStats) {
        self.injected_msgs += d.injected_msgs;
        self.delivered_msgs += d.delivered_msgs;
        self.delivered_flits += d.delivered_flits;
        self.flit_hops += d.flit_hops;
        self.va_allocs += d.va_allocs;
    }
}

/// A node in the output-VC wait-for graph exposed for deadlock diagnosis:
/// `(router id, dense output-VC index)`.
pub type WaitVc = (u32, u16);

/// One in-flight message record: metadata plus the output VCs it holds.
struct MsgSlot {
    msg: Option<Message>,
    /// Output VCs currently held by this message, in path order.
    held: Vec<WaitVc>,
}

/// Arena of in-flight message records. Every flit carries its record's
/// slot index, so the hot path (tail delivery, held-VC bookkeeping) is a
/// direct vector index instead of a hash lookup. Freed slots are recycled
/// LIFO and each slot's `held` vector keeps its capacity across reuse, so
/// the steady-state fabric allocates nothing per message.
#[derive(Default)]
struct MsgSlab {
    slots: Vec<MsgSlot>,
    free: Vec<u32>,
    live: usize,
}

impl MsgSlab {
    fn insert(&mut self, msg: Message) -> u32 {
        self.live += 1;
        if let Some(s) = self.free.pop() {
            let slot = &mut self.slots[s as usize];
            debug_assert!(slot.msg.is_none() && slot.held.is_empty());
            slot.msg = Some(msg);
            s
        } else {
            self.slots.push(MsgSlot {
                msg: Some(msg),
                held: Vec::new(),
            });
            u32::try_from(self.slots.len() - 1).expect("fewer than 2^32 in-flight messages")
        }
    }

    fn remove(&mut self, s: u32) -> Message {
        let slot = &mut self.slots[s as usize];
        let msg = slot
            .msg
            .take()
            .expect("delivered message must have metadata");
        slot.held.clear();
        self.free.push(s);
        self.live -= 1;
        msg
    }

    fn held(&self, s: u32) -> &[WaitVc] {
        &self.slots[s as usize].held
    }

    fn held_mut(&mut self, s: u32) -> &mut Vec<WaitVc> {
        &mut self.slots[s as usize].held
    }
}

/// Per-shard staging area: everything a shard's VA/SA/injection pass wants
/// to do *outside its own routers* is recorded here and replayed by the
/// serial merge, in shard-index order. Buffers keep their capacity across
/// ticks, so the steady-state exchange is allocation-free.
#[derive(Default)]
struct ShardScratch {
    /// Routing-candidate scratch for the VA stage.
    cand: Vec<Candidate>,
    /// Rotated VA visit order snapshot (dense VC indices).
    order: Vec<u16>,
    /// Flits forwarded to downstream routers: `(router, input VC, flit)`.
    arrivals: Vec<(u32, u16, Flit)>,
    /// Credits returned to upstream routers: `(router, output VC)`.
    credit_returns: Vec<(u32, u16)>,
    /// Tail flits delivered this cycle: `(slab slot, message id)`, in SA
    /// visit order.
    delivered_tails: Vec<(u32, MessageId)>,
    /// Output VCs acquired by VA this cycle: `(slot, router, output VC)`.
    held_pushes: Vec<(u32, u32, u16)>,
    /// Output VCs released by a forwarded tail: `(slot, router, output VC)`.
    held_removes: Vec<(u32, u32, u16)>,
    /// Fabric-stat deltas accumulated by this shard this cycle.
    stats: FabricStats,
    /// `vcs_touched` delta (bitset visits in VA + SA).
    vcs_touched: u64,
    /// Net change to the in-flight flit count.
    in_flight_delta: i64,
    /// Net change to the emitting-message count.
    emitting_delta: i64,
    /// True when any flit moved in this shard (progress signal).
    progressed: bool,
    /// Wall-clock nanoseconds spent in this shard's phases this cycle.
    wall_ns: u64,
}

impl ShardScratch {
    /// Clears per-cycle staging (called by the merge); keeps capacity.
    fn reset(&mut self) {
        self.delivered_tails.clear();
        self.held_pushes.clear();
        self.held_removes.clear();
        self.stats = FabricStats::default();
        self.vcs_touched = 0;
        self.in_flight_delta = 0;
        self.emitting_delta = 0;
        self.progressed = false;
        self.wall_ns = 0;
    }
}

/// Minimum worklist size before a multi-shard tick actually spawns
/// threads; below it the shards run serially (same code, same scratches,
/// byte-identical results) because scoped-thread startup would dominate.
const PARALLEL_MIN_ROUTERS: usize = 128;

/// The flit-level wormhole network.
pub struct WormholeFabric {
    topo: Topology,
    routing: Box<dyn WormholeRouting>,
    cfg: WormholeConfig,
    w: usize,
    nports: usize,
    local: usize,
    routers: Vec<Router>,
    /// In-flight message records; flits carry their slot.
    slab: MsgSlab,
    /// Active-set bitset: bit `r` set ⇒ router `r` may have work. Set on
    /// injection and flit arrival; cleared only after the router was
    /// scanned through a full tick and found [`Router::idle`].
    active: BitSet,
    /// Scratch worklist of active router ids, reused across ticks.
    worklist: Vec<u32>,
    /// Shard boundaries over router ids: shard `s` owns
    /// `shard_bounds[s]..shard_bounds[s+1]`.
    shard_bounds: Vec<u32>,
    /// Per-shard staging areas, index-aligned with `shard_bounds` windows.
    scratch: Vec<ShardScratch>,
    /// Cumulative wall-clock nanoseconds spent inside each shard's phase
    /// loops (the per-shard work breakdown the bench records).
    shard_wall_ns: Vec<u64>,
    deliveries: Vec<Delivery>,
    in_flight_flits: u64,
    emitting_msgs: u64,
    last_progress: Cycle,
    stats: FabricStats,
    kernel: CycleKernelStats,
}

impl WormholeFabric {
    /// Builds the fabric for `topo` under `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg.w` is insufficient for the routing function on this
    /// topology (see [`RoutingKind::build`]) or `buffer_depth == 0`.
    #[must_use]
    pub fn new(topo: Topology, cfg: WormholeConfig) -> Self {
        let routing = cfg.routing.build(&topo, cfg.w);
        Self::with_routing(topo, cfg, routing)
    }

    /// Builds the fabric with an explicit routing function (used by tests
    /// and by the verify crate's negative controls, which deliberately run
    /// broken functions the safe constructor would reject).
    ///
    /// # Panics
    /// Panics if the function's VC requirement differs from `cfg.w` or
    /// `buffer_depth == 0`.
    #[must_use]
    pub fn with_routing(
        topo: Topology,
        cfg: WormholeConfig,
        routing: Box<dyn WormholeRouting>,
    ) -> Self {
        assert!(cfg.buffer_depth >= 1, "buffers need at least one slot");
        assert_eq!(
            routing.vcs_per_link(),
            cfg.w,
            "routing must use exactly w VCs"
        );
        let w = cfg.w as usize;
        let nports = 2 * topo.ndims() + 1;
        let routers: Vec<Router> = (0..topo.num_nodes())
            .map(|_| Router::new(nports, w, cfg.buffer_depth))
            .collect();
        let active = BitSet::new(routers.len());
        let mut f = Self {
            w,
            nports,
            local: nports - 1,
            routers,
            slab: MsgSlab::default(),
            active,
            worklist: Vec::new(),
            shard_bounds: Vec::new(),
            scratch: Vec::new(),
            shard_wall_ns: Vec::new(),
            deliveries: Vec::new(),
            in_flight_flits: 0,
            emitting_msgs: 0,
            last_progress: 0,
            stats: FabricStats::default(),
            kernel: CycleKernelStats::default(),
            routing,
            topo,
            cfg,
        };
        f.set_shards(1);
        f
    }

    /// The topology this fabric runs on.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The fabric configuration.
    #[must_use]
    pub fn config(&self) -> &WormholeConfig {
        &self.cfg
    }

    /// The routing function in use.
    #[must_use]
    pub fn routing(&self) -> &dyn WormholeRouting {
        self.routing.as_ref()
    }

    /// Replaces the routing function (testing/negative controls only).
    ///
    /// # Panics
    /// Panics if the function's VC requirement differs from `cfg.w`.
    pub fn set_routing_for_test(&mut self, routing: Box<dyn WormholeRouting>) {
        assert_eq!(routing.vcs_per_link() as usize, self.w);
        self.routing = routing;
    }

    /// Partitions the run into `n` spatial shards (clamped to
    /// `1..=num_nodes`): contiguous router-id bands processed by one thread
    /// each. Results are **byte-identical at any shard count** — see the
    /// module docs for why — so this only trades wall-clock for cores.
    pub fn set_shards(&mut self, n: usize) {
        let nodes = self.topo.num_nodes() as usize;
        let n = n.clamp(1, nodes.max(1));
        self.shard_bounds = (0..=n)
            .map(|s| u32::try_from(nodes * s / n).expect("node count fits u32"))
            .collect();
        self.scratch = (0..n).map(|_| ShardScratch::default()).collect();
        self.shard_wall_ns = vec![0; n];
    }

    /// The configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shard_bounds.len() - 1
    }

    /// Which shard owns `node`.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.shard_bounds.partition_point(|&b| b <= node.0) - 1
    }

    /// Cumulative wall-clock nanoseconds spent inside each shard's phase
    /// loops (one entry per shard), for the bench's per-shard breakdown.
    #[must_use]
    pub fn shard_wall_ns(&self) -> &[u64] {
        &self.shard_wall_ns
    }

    /// Accepts a message for injection at its source node.
    pub fn inject(&mut self, msg: Message) {
        assert!(msg.src.0 < self.topo.num_nodes(), "source out of range");
        assert!(msg.dest.0 < self.topo.num_nodes(), "dest out of range");
        let slot = self.slab.insert(msg);
        let src = msg.src.0 as usize;
        self.routers[src].inj_queue.push_back(Queued { msg, slot });
        self.active.set(src);
        self.emitting_msgs += 1;
        self.stats.injected_msgs += 1;
    }

    /// Messages injected but not yet delivered.
    #[must_use]
    pub fn in_flight_msgs(&self) -> usize {
        self.slab.live
    }

    /// Flits currently buffered somewhere in the network.
    #[must_use]
    pub fn in_flight_flits(&self) -> u64 {
        self.in_flight_flits
    }

    /// Cycles since any flit last moved (0 when progress happened at `now`).
    #[must_use]
    pub fn progress_age(&self, now: Cycle) -> u64 {
        now.saturating_sub(self.last_progress)
    }

    /// Routers currently in the active set (a popcount over the active
    /// bitset — the instantaneous "how much of the network is working"
    /// gauge the time-series sampler reads each cycle).
    #[must_use]
    pub fn active_routers(&self) -> u64 {
        self.active.count() as u64
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Cycle-kernel work counters (scanning effort per tick).
    #[must_use]
    pub fn kernel_stats(&self) -> CycleKernelStats {
        self.kernel
    }

    /// Drains and returns all deliveries completed since the last call.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Swaps completed deliveries into `out` (cleared first), retaining the
    /// old buffer's capacity for the next collection cycle. Ping-ponging a
    /// caller-owned buffer through this keeps the steady state allocation
    /// free.
    pub fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.clear();
        std::mem::swap(&mut self.deliveries, out);
    }

    /// True while any message is queued, emitting, or in flight.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.in_flight_flits > 0 || self.emitting_msgs > 0
    }

    /// Advances the fabric by one cycle: scans only the active set, in
    /// ascending router order (the same order the seed kernel's full scan
    /// visited them, so arbitration and delivery order are unchanged).
    /// With shards configured, the scan is split into contiguous bands run
    /// concurrently and merged deterministically — see the module docs.
    pub fn tick(&mut self, now: Cycle) {
        self.kernel.ticks += 1;
        let mut wl = std::mem::take(&mut self.worklist);
        wl.clear();
        for (wi, &word) in self.active.words().iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                wl.push((wi as u32) * 64 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        self.kernel.routers_scanned += wl.len() as u64;

        let nshards = self.shards();
        {
            // Field-level borrows so the router slice, scratches, and the
            // immutable tables can be handed to shard workers.
            let topo = &self.topo;
            let routing = self.routing.as_ref();
            let cfg = self.cfg;
            let (w, nports, local) = (self.w, self.nports, self.local);
            let bounds = &self.shard_bounds;
            let scratches = &mut self.scratch;

            // Partition the (ascending) worklist at the shard boundaries
            // and the router vector into the matching disjoint slices.
            let mut jobs: Vec<(u32, &mut [Router], &[u32], &mut ShardScratch)> =
                Vec::with_capacity(nshards);
            let mut routers_rest: &mut [Router] = &mut self.routers;
            let mut wl_rest: &[u32] = &wl;
            for (s, scr) in scratches.iter_mut().enumerate() {
                let lo = bounds[s] as usize;
                let hi = bounds[s + 1] as usize;
                let (chunk, r2) = routers_rest.split_at_mut(hi - lo);
                routers_rest = r2;
                let cut = wl_rest.partition_point(|&r| (r as usize) < hi);
                let (wlp, w2) = wl_rest.split_at(cut);
                wl_rest = w2;
                if !wlp.is_empty() {
                    jobs.push((lo as u32, chunk, wlp, scr));
                }
            }

            if nshards > 1 && wl.len() >= PARALLEL_MIN_ROUTERS {
                std::thread::scope(|sc| {
                    for (base, chunk, wlp, scr) in jobs {
                        sc.spawn(move || {
                            run_shard(
                                base, chunk, wlp, topo, routing, cfg, w, nports, local, now, scr,
                            );
                        });
                    }
                });
            } else {
                for (base, chunk, wlp, scr) in jobs {
                    run_shard(
                        base, chunk, wlp, topo, routing, cfg, w, nports, local, now, scr,
                    );
                }
            }
        }

        self.merge(now);

        // Retire provably quiescent routers. Routers that just received an
        // arrival in the merge fail `idle` and stay in the set.
        for &r in &wl {
            if self.routers[r as usize].idle() {
                self.active.clear(r as usize);
            }
        }
        self.worklist = wl;
    }

    /// The serial merge: replays every cross-router effect staged by the
    /// shards, in shard-index order — which, shards being ascending-id
    /// bands visited ascending, is exactly the serial kernel's order. Held
    /// pushes (VA) apply before held removes (SA) because the serial tick
    /// runs all VA before all SA; slab removals replay in delivery order so
    /// the LIFO free list recycles slots identically.
    fn merge(&mut self, now: Cycle) {
        for si in 0..self.scratch.len() {
            for k in 0..self.scratch[si].held_pushes.len() {
                let (slot, r, oidx) = self.scratch[si].held_pushes[k];
                self.slab.held_mut(slot).push((r, oidx));
            }
        }
        for si in 0..self.scratch.len() {
            for k in 0..self.scratch[si].held_removes.len() {
                let (slot, r, oidx) = self.scratch[si].held_removes[k];
                let hs = self.slab.held_mut(slot);
                let pos = hs
                    .iter()
                    .position(|&(hr, ho)| hr == r && ho == oidx)
                    .expect("held list tracks allocations in path order");
                hs.remove(pos);
            }
        }
        for si in 0..self.scratch.len() {
            for k in 0..self.scratch[si].delivered_tails.len() {
                let (slot, id) = self.scratch[si].delivered_tails[k];
                let msg = self.slab.remove(slot);
                debug_assert_eq!(msg.id, id, "slot/id mismatch at delivery");
                self.stats.delivered_msgs += 1;
                self.deliveries.push(Delivery {
                    msg,
                    delivered_at: now,
                    mode: DeliveryMode::Wormhole,
                });
            }
        }
        for si in 0..self.scratch.len() {
            let mut arrivals = std::mem::take(&mut self.scratch[si].arrivals);
            for (r, ivc, flit) in arrivals.drain(..) {
                self.active.set(r as usize);
                let router = &mut self.routers[r as usize];
                router.push_flit(ivc as usize, flit);
                assert!(
                    router.bufs[ivc as usize].len() <= self.cfg.buffer_depth as usize,
                    "credit protocol violated: buffer overflow at router {r} vc {ivc}"
                );
            }
            self.scratch[si].arrivals = arrivals;
            let mut credits = std::mem::take(&mut self.scratch[si].credit_returns);
            for (r, ovc) in credits.drain(..) {
                let c = &mut self.routers[r as usize].out_credits[ovc as usize];
                *c += 1;
                assert!(
                    *c <= self.cfg.buffer_depth,
                    "credit protocol violated: credit overflow at router {r} ovc {ovc}"
                );
            }
            self.scratch[si].credit_returns = credits;

            let s = &mut self.scratch[si];
            self.stats.absorb(&s.stats);
            self.kernel.vcs_touched += s.vcs_touched;
            self.in_flight_flits = self
                .in_flight_flits
                .checked_add_signed(s.in_flight_delta)
                .expect("in-flight flit count stays non-negative");
            self.emitting_msgs = self
                .emitting_msgs
                .checked_add_signed(s.emitting_delta)
                .expect("emitting message count stays non-negative");
            if s.progressed {
                self.last_progress = now;
            }
            self.shard_wall_ns[si] += s.wall_ns;
            s.reset();
        }
    }

    /// Builds the current output-VC wait-for graph for deadlock diagnosis:
    /// one edge per `(held VC → requested VC)` pair over packets whose head
    /// flit is waiting for a free output VC. For deterministic routing a
    /// cycle in this graph is a genuine deadlock.
    #[must_use]
    pub fn wait_edges(&self) -> Vec<(WaitVc, WaitVc)> {
        let mut edges = Vec::new();
        let mut cand = Vec::new();
        for (r, router) in self.routers.iter().enumerate() {
            let node = NodeId(r as u32);
            for i in 0..router.bufs.len() {
                if router.route[i] != ROUTE_NONE {
                    continue;
                }
                let Some(front) = router.bufs[i].front() else {
                    continue;
                };
                if !front.is_head || front.dest == node {
                    continue;
                }
                // An empty held list means the head is still at its source
                // and holds nothing yet.
                let Some(&holder) = self.slab.held(front.slot).last() else {
                    continue;
                };
                cand.clear();
                self.routing.route(&self.topo, node, front.dest, &mut cand);
                for c in &cand {
                    let oidx = c.port.index() * self.w + c.vc as usize;
                    edges.push((holder, (r as u32, oidx as u16)));
                }
            }
        }
        edges
    }

    /// Per-VC buffer occupancy snapshot `(router, dense input VC, flits)`,
    /// for instrumentation.
    #[must_use]
    pub fn occupancy(&self) -> Vec<(u32, u16, usize)> {
        let mut out = Vec::new();
        for (r, router) in self.routers.iter().enumerate() {
            for (i, buf) in router.bufs.iter().enumerate() {
                if !buf.is_empty() {
                    out.push((r as u32, i as u16, buf.len()));
                }
            }
        }
        out
    }
}

/// One shard's full cycle: VA, SA, and injection over its own routers,
/// staging every cross-router effect in `s`. Runs on a worker thread when
/// the fabric is sharded; the only shared state it touches is immutable
/// (`topo`, `routing`).
#[allow(clippy::too_many_arguments)]
fn run_shard(
    base: u32,
    routers: &mut [Router],
    wl: &[u32],
    topo: &Topology,
    routing: &dyn WormholeRouting,
    cfg: WormholeConfig,
    w: usize,
    nports: usize,
    local: usize,
    now: Cycle,
    s: &mut ShardScratch,
) {
    let t0 = std::time::Instant::now();
    for &r in wl {
        va_stage(
            base, routers, r, topo, routing, cfg, w, nports, local, now, s,
        );
    }
    for &r in wl {
        sa_stage(base, routers, r, topo, w, nports, local, s);
    }
    for &r in wl {
        injection_stage(base, routers, r, cfg, w, local, s);
    }
    s.wall_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
}

/// Phase 1: routing computation + output-VC allocation. Scans only the
/// router's `va_pending` bitset, in the same rotated round-robin order the
/// seed kernel's full sweep used.
#[allow(clippy::too_many_arguments)]
fn va_stage(
    base: u32,
    routers: &mut [Router],
    r: u32,
    topo: &Topology,
    routing: &dyn WormholeRouting,
    cfg: WormholeConfig,
    w: usize,
    nports: usize,
    local: usize,
    now: Cycle,
    s: &mut ShardScratch,
) {
    let node = NodeId(r);
    let router = &mut routers[(r - base) as usize];
    let n_ivc = nports * w;
    // The VA round-robin pointer is cycle-derived: the seed kernel
    // advanced it by exactly one per tick on every router, active or
    // not, so `now % n_ivc` reproduces it without per-router state —
    // and without requiring idle routers to tick at all.
    let start = (now % n_ivc as u64) as usize;
    // Snapshot the pending set: VA neither adds pending VCs nor clears
    // any but the one it is processing, so the snapshot equals the live
    // visit set of the serial sweep.
    s.order.clear();
    router.va_pending.for_each_wrapping(start, |i| {
        s.order.push(i as u16);
        false
    });
    s.vcs_touched += s.order.len() as u64;
    for &iu in &s.order {
        let i = iu as usize;
        let Some(front) = router.bufs[i].front() else {
            debug_assert!(false, "va_pending bit set on an empty VC");
            continue;
        };
        debug_assert!(
            front.is_head,
            "unrouted VC front must be a head flit (packet-ordered buffers)"
        );
        let (front_dest, front_slot) = (front.dest, front.slot);
        // Routing-delay accounting.
        if router.head_since[i] == crate::router::NO_HEAD {
            router.head_since[i] = now;
        }
        if now < router.head_since[i] + u64::from(cfg.routing_delay) {
            continue;
        }
        if front_dest == node {
            // Ejection needs no output VC: mark the route to the local
            // port; SA treats it with infinite credit.
            router.set_route(i, route_pack(local as u8, 0));
            continue;
        }
        s.cand.clear();
        routing.route(topo, node, front_dest, &mut s.cand);
        debug_assert!(!s.cand.is_empty(), "routing gave no candidates");
        for ci in 0..s.cand.len() {
            let c = s.cand[ci];
            let oidx = c.port.index() * w + c.vc as usize;
            if router.out_owner[oidx] == OWNER_NONE {
                router.out_owner[oidx] = iu;
                router.set_route(i, route_pack(c.port.index() as u8, c.vc));
                s.held_pushes.push((front_slot, r, oidx as u16));
                s.stats.va_allocs += 1;
                break;
            }
        }
    }
}

/// Phase 2: switch allocation and flit forwarding / delivery. Each output
/// port scans the router's `sa_ready` bitset from its round-robin pointer.
#[allow(clippy::too_many_arguments)]
fn sa_stage(
    base: u32,
    routers: &mut [Router],
    r: u32,
    topo: &Topology,
    w: usize,
    nports: usize,
    local: usize,
    s: &mut ShardScratch,
) {
    let node = NodeId(r);
    let router = &mut routers[(r - base) as usize];
    let n_ivc = nports * w;
    let mut input_port_used = [false; 32];
    debug_assert!(nports <= 32);

    for out_port in 0..nports {
        let start = router.sa_rr[out_port] as usize % n_ivc;
        let mut pick: Option<usize> = None;
        let mut touched = 0u64;
        {
            let sa_ready = &router.sa_ready;
            let route = &router.route;
            let out_credits = &router.out_credits;
            sa_ready.for_each_wrapping(start, |i| {
                touched += 1;
                let rt = route[i];
                debug_assert_ne!(rt, ROUTE_NONE, "sa_ready bit set on an unrouted VC");
                if route_port(rt) != out_port {
                    return false;
                }
                if input_port_used[i / w] {
                    return false;
                }
                if out_port != local {
                    let oidx = out_port * w + route_vc(rt);
                    if out_credits[oidx] == 0 {
                        return false;
                    }
                }
                pick = Some(i);
                true
            });
        }
        s.vcs_touched += touched;
        let Some(i) = pick else { continue };
        input_port_used[i / w] = true;
        router.sa_rr[out_port] = ((i + 1) % n_ivc) as u16;

        let rt = router.route[i];
        let flit = router.bufs[i].pop_front().expect("picked VC has a flit");

        // Return a credit upstream for the slot just freed (network
        // input ports only; injection buffers are local).
        let in_port = i / w;
        let in_vc = i % w;
        if in_port != local {
            let p = PortDir::from_index(in_port);
            let up = topo
                .neighbor(node, p)
                .expect("flits only arrive over real links");
            let up_ovc = p.opposite().index() * w + in_vc;
            s.credit_returns.push((up.0, up_ovc as u16));
        }

        s.progressed = true;
        if out_port == local {
            // Delivery.
            s.in_flight_delta -= 1;
            s.stats.delivered_flits += 1;
            if flit.is_tail {
                router.clear_route(i);
                s.delivered_tails.push((flit.slot, flit.msg));
            } else {
                router.sync_after_pop(i);
            }
        } else {
            let oidx = out_port * w + route_vc(rt);
            router.out_credits[oidx] -= 1;
            let p = PortDir::from_index(out_port);
            let down = topo
                .neighbor(node, p)
                .expect("allocated outputs point at real links");
            let down_ivc = p.opposite().index() * w + route_vc(rt);
            s.arrivals.push((down.0, down_ivc as u16, flit));
            s.stats.flit_hops += 1;
            if flit.is_tail {
                router.out_owner[oidx] = OWNER_NONE;
                router.clear_route(i);
                // The tail has left this router: the message no longer
                // holds this output VC.
                s.held_removes.push((flit.slot, r, oidx as u16));
            } else {
                router.sync_after_pop(i);
            }
        }
    }
}

/// Phase 3: message flit emission at sources.
fn injection_stage(
    base: u32,
    routers: &mut [Router],
    r: u32,
    cfg: WormholeConfig,
    w: usize,
    local: usize,
    s: &mut ShardScratch,
) {
    let router = &mut routers[(r - base) as usize];
    // Continue in-progress emissions: one flit per injection VC per cycle.
    for v in 0..w {
        let idx = local * w + v;
        let Some(em) = router.emitting[v] else {
            continue;
        };
        if router.bufs[idx].len() < cfg.buffer_depth as usize {
            let flit = Flit::of(&em.msg, em.sent, em.slot);
            router.push_flit(idx, flit);
            s.in_flight_delta += 1;
            let sent = em.sent + 1;
            if sent == em.msg.len_flits {
                router.emitting[v] = None;
                router.emitting_live -= 1;
                s.emitting_delta -= 1;
            } else {
                router.emitting[v] = Some(Emitting {
                    msg: em.msg,
                    sent,
                    slot: em.slot,
                });
            }
        }
    }
    // Claim idle injection VCs for queued messages.
    for v in 0..w {
        if router.inj_queue.is_empty() {
            break;
        }
        let idx = local * w + v;
        if router.emitting[v].is_none()
            && router.bufs[idx].is_empty()
            && router.route[idx] == ROUTE_NONE
        {
            let q = router.inj_queue.pop_front().expect("non-empty");
            router.emitting[v] = Some(Emitting {
                msg: q.msg,
                sent: 0,
                slot: q.slot,
            });
            router.emitting_live += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use std::collections::HashMap;
    use wavesim_topology::Coords;

    fn mesh44(w: u8) -> WormholeFabric {
        WormholeFabric::new(
            Topology::mesh(&[4, 4]),
            WormholeConfig {
                w,
                buffer_depth: 4,
                routing: RoutingKind::Deterministic,
                routing_delay: 1,
            },
        )
    }

    fn run(fabric: &mut WormholeFabric, from: Cycle, max: Cycle) -> Cycle {
        let mut now = from;
        while fabric.busy() && now < max {
            fabric.tick(now);
            now += 1;
        }
        now
    }

    #[test]
    fn single_message_is_delivered_with_plausible_latency() {
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 0]));
        f.inject(Message::new(1, src, dest, 5, 0));
        let end = run(&mut f, 0, 10_000);
        assert!(!f.busy(), "message must drain");
        let ds = f.drain_deliveries();
        assert_eq!(ds.len(), 1);
        let d = ds[0];
        assert_eq!(d.msg.id, MessageId(1));
        // 3 hops * ~2 cycles/hop + 5 flits serialization + injection/ejection
        // overhead: latency must be tens of cycles, not hundreds.
        assert!(d.latency() >= 8, "latency {} too small", d.latency());
        assert!(d.latency() <= 40, "latency {} too large", d.latency());
        assert!(end < 100);
        assert_eq!(f.stats().delivered_flits, 5);
    }

    #[test]
    fn longer_messages_pay_serialization_latency() {
        let mut short = mesh44(1);
        let mut long = mesh44(1);
        let topo = short.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 3]));
        short.inject(Message::new(1, src, dest, 2, 0));
        long.inject(Message::new(2, src, dest, 64, 0));
        run(&mut short, 0, 10_000);
        run(&mut long, 0, 10_000);
        let ls = short.drain_deliveries()[0].latency();
        let ll = long.drain_deliveries()[0].latency();
        assert!(
            ll >= ls + 60,
            "64-flit message ({ll}) must trail 2-flit message ({ls}) by ~62 cycles"
        );
    }

    #[test]
    fn all_pairs_traffic_drains_on_mesh() {
        let mut f = mesh44(2);
        let topo = f.topology().clone();
        let mut id = 0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    f.inject(Message::new(id, a, b, 4, 0));
                    id += 1;
                }
            }
        }
        run(&mut f, 0, 200_000);
        assert!(!f.busy(), "all-pairs traffic must drain without deadlock");
        let ds = f.drain_deliveries();
        assert_eq!(ds.len(), 16 * 15);
        assert_eq!(f.in_flight_msgs(), 0);
    }

    #[test]
    fn all_pairs_traffic_drains_on_torus_with_dateline() {
        let topo = Topology::torus(&[4, 4]);
        let mut f = WormholeFabric::new(
            topo.clone(),
            WormholeConfig {
                w: 2,
                buffer_depth: 2,
                routing: RoutingKind::Deterministic,
                routing_delay: 1,
            },
        );
        let mut id = 0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    f.inject(Message::new(id, a, b, 6, 0));
                    id += 1;
                }
            }
        }
        run(&mut f, 0, 500_000);
        assert!(!f.busy(), "torus all-pairs must drain with dateline DOR");
        assert_eq!(f.drain_deliveries().len(), 16 * 15);
    }

    #[test]
    fn adaptive_routing_drains_hotspot_traffic() {
        let topo = Topology::mesh(&[4, 4]);
        let mut f = WormholeFabric::new(
            topo.clone(),
            WormholeConfig {
                w: 3,
                buffer_depth: 4,
                routing: RoutingKind::Adaptive,
                routing_delay: 1,
            },
        );
        let hot = topo.node(Coords::new(&[3, 3]));
        let mut id = 0;
        for a in topo.nodes() {
            if a != hot {
                for _ in 0..4 {
                    f.inject(Message::new(id, a, hot, 8, 0));
                    id += 1;
                }
            }
        }
        run(&mut f, 0, 500_000);
        assert!(!f.busy());
        assert_eq!(f.drain_deliveries().len(), 15 * 4);
    }

    #[test]
    fn wormhole_blocks_hold_channels_but_release_on_tail() {
        // Two long messages share a column link; the second must block
        // until the first's tail releases the VC, then complete.
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let a = topo.node(Coords::new(&[0, 0]));
        let b = topo.node(Coords::new(&[1, 0]));
        let dest = topo.node(Coords::new(&[3, 0]));
        f.inject(Message::new(1, a, dest, 32, 0));
        f.inject(Message::new(2, b, dest, 32, 0));
        run(&mut f, 0, 10_000);
        let mut ds = f.drain_deliveries();
        assert_eq!(ds.len(), 2);
        ds.sort_by_key(|d| d.delivered_at);
        // Both complete; the trailing one pays blocking delay.
        assert!(ds[1].delivered_at > ds[0].delivered_at);
    }

    #[test]
    fn broken_torus_routing_deadlocks_and_is_diagnosable() {
        // Negative control: single-class torus DOR with ring-filling
        // traffic must stop making progress, and the wait-for graph must
        // contain a cycle.
        let topo = Topology::torus(&[4, 3]);
        let mut f = WormholeFabric::with_routing(
            topo.clone(),
            WormholeConfig {
                w: 1,
                buffer_depth: 1,
                routing: RoutingKind::Deterministic,
                routing_delay: 1,
            },
            Box::new(wavesim_topology::NaiveTorusDor::new(1)),
        );
        // Every node on row 0 sends 2 hops around its ring: with radix 4
        // and long messages these wormholes wrap the ring and deadlock.
        for x in 0..4u16 {
            let src = topo.node(Coords::new(&[x, 0]));
            let dest = topo.node(Coords::new(&[(x + 2) % 4, 0]));
            f.inject(Message::new(u64::from(x), src, dest, 64, 0));
        }
        let mut now = 0;
        while f.busy() && now < 5_000 {
            f.tick(now);
            now += 1;
        }
        assert!(f.busy(), "expected a deadlock to freeze the ring");
        assert!(
            f.progress_age(now) > 1_000,
            "no progress for a long time: age={}",
            f.progress_age(now)
        );
        // The wait-for graph has a cycle among the ring's output VCs.
        let edges = f.wait_edges();
        assert!(!edges.is_empty());
        let mut adj: HashMap<WaitVc, Vec<WaitVc>> = HashMap::new();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
        }
        fn has_cycle(
            v: WaitVc,
            adj: &HashMap<WaitVc, Vec<WaitVc>>,
            path: &mut Vec<WaitVc>,
            seen: &mut std::collections::HashSet<WaitVc>,
        ) -> bool {
            if path.contains(&v) {
                return true;
            }
            if !seen.insert(v) {
                return false;
            }
            path.push(v);
            let out = adj.get(&v).cloned().unwrap_or_default();
            for w in out {
                if has_cycle(w, adj, path, seen) {
                    return true;
                }
            }
            path.pop();
            false
        }
        let mut seen = std::collections::HashSet::new();
        let cyclic = adj
            .keys()
            .any(|&v| has_cycle(v, &adj, &mut Vec::new(), &mut seen));
        assert!(cyclic, "deadlocked fabric must show a wait-for cycle");
    }

    #[test]
    fn determinism_same_workload_same_schedule() {
        let build = || {
            let mut f = mesh44(2);
            let topo = f.topology().clone();
            let mut id = 0;
            for a in topo.nodes() {
                for b in topo.nodes() {
                    if a != b && (a.0 + b.0) % 3 == 0 {
                        f.inject(Message::new(id, a, b, 7, 0));
                        id += 1;
                    }
                }
            }
            let mut now = 0;
            while f.busy() && now < 100_000 {
                f.tick(now);
                now += 1;
            }
            f.drain_deliveries()
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn sharded_run_is_byte_identical_to_serial() {
        // The shard merge must reproduce the serial schedule exactly, at
        // every shard count, including stats and kernel work counters.
        let run_at = |shards: usize| {
            let topo = Topology::torus(&[4, 4]);
            let mut f = WormholeFabric::new(
                topo.clone(),
                WormholeConfig {
                    w: 2,
                    buffer_depth: 2,
                    routing: RoutingKind::Deterministic,
                    routing_delay: 1,
                },
            );
            f.set_shards(shards);
            let mut id = 0;
            for a in topo.nodes() {
                for b in topo.nodes() {
                    if a != b {
                        f.inject(Message::new(id, a, b, 6, 0));
                        id += 1;
                    }
                }
            }
            let mut now = 0;
            while f.busy() && now < 500_000 {
                f.tick(now);
                now += 1;
            }
            let sched: Vec<_> = f
                .drain_deliveries()
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at))
                .collect();
            (sched, format!("{:?}{:?}", f.stats(), f.kernel_stats()))
        };
        let serial = run_at(1);
        assert_eq!(serial, run_at(2));
        assert_eq!(serial, run_at(3));
        assert_eq!(serial, run_at(4));
        assert_eq!(serial, run_at(16));
    }

    #[test]
    fn shard_of_partitions_contiguously() {
        let mut f = mesh44(1);
        f.set_shards(4);
        assert_eq!(f.shards(), 4);
        let mut prev = 0;
        for n in 0..16u32 {
            let s = f.shard_of(NodeId(n));
            assert!(s >= prev, "shard index must be monotone in node id");
            prev = s;
        }
        assert_eq!(f.shard_of(NodeId(0)), 0);
        assert_eq!(f.shard_of(NodeId(15)), 3);
        assert_eq!(f.shard_wall_ns().len(), 4);
    }

    #[test]
    fn injection_respects_vc_count() {
        // With w=1, two messages from the same source serialize.
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let d1 = topo.node(Coords::new(&[3, 0]));
        let d2 = topo.node(Coords::new(&[0, 3]));
        f.inject(Message::new(1, src, d1, 16, 0));
        f.inject(Message::new(2, src, d2, 16, 0));
        run(&mut f, 0, 10_000);
        let mut ds = f.drain_deliveries();
        ds.sort_by_key(|d| d.msg.id);
        // Disjoint paths, but single injection VC: the second message's
        // emission cannot start until the first finishes.
        assert!(ds[1].delivered_at >= ds[0].delivered_at);
        assert!(ds[1].latency() > 16);
    }

    #[test]
    fn stats_account_for_all_flits() {
        let mut f = mesh44(2);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[2, 2]));
        f.inject(Message::new(1, src, dest, 10, 0));
        run(&mut f, 0, 10_000);
        let s = f.stats();
        assert_eq!(s.injected_msgs, 1);
        assert_eq!(s.delivered_msgs, 1);
        assert_eq!(s.delivered_flits, 10);
        // 4 hops * 10 flits forwarded across links.
        assert_eq!(s.flit_hops, 40);
    }

    #[test]
    fn active_set_tracks_exactly_the_nonidle_routers() {
        // One short message crosses the mesh; after every tick, each
        // non-idle router must have its active bit set (the scheduling
        // invariant), and after drain the whole set must be empty again.
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 3]));
        f.inject(Message::new(1, src, dest, 6, 0));
        let mut now = 0;
        while f.busy() && now < 10_000 {
            f.tick(now);
            now += 1;
            for (r, router) in f.routers.iter().enumerate() {
                if !router.idle() {
                    assert!(
                        f.active.get(r),
                        "non-idle router {r} missing from active set at cycle {now}"
                    );
                }
            }
        }
        assert!(!f.busy());
        assert!(
            f.active.is_empty(),
            "drained fabric must have an empty active set"
        );
        // Drained fabric: ticking is O(1) — no routers scanned.
        let before = f.kernel_stats().routers_scanned;
        f.tick(now);
        assert_eq!(f.kernel_stats().routers_scanned, before);
    }

    #[test]
    fn message_slab_recycles_slots_without_growth() {
        // Sequential messages through the same fabric must reuse one slot.
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[2, 0]));
        let mut now = 0;
        for id in 0..8 {
            f.inject(Message::new(id, src, dest, 3, now));
            while f.busy() && now < 100_000 {
                f.tick(now);
                now += 1;
            }
        }
        assert_eq!(f.drain_deliveries().len(), 8);
        assert_eq!(f.in_flight_msgs(), 0);
        assert_eq!(
            f.slab.slots.len(),
            1,
            "sequential messages must recycle a single arena slot"
        );
    }
}
