//! The wormhole fabric: every router of the network plus the per-cycle
//! pipeline that moves flits between them.
//!
//! Each simulated cycle runs four phases over all routers in deterministic
//! node order:
//!
//! 1. **VA** — routing + virtual-channel allocation: unrouted head flits at
//!    buffer fronts ask the routing function for candidates and try to
//!    acquire a free output VC (round-robin over input VCs);
//! 2. **SA** — switch allocation + traversal: every output port forwards at
//!    most one flit from an eligible input VC (credits permitting), every
//!    input port contributes at most one flit (crossbar constraint);
//! 3. **Injection** — queued messages claim idle injection VCs and stream
//!    one flit per cycle into their buffers;
//! 4. **Commit** — flits sent in phase 2 arrive in downstream buffers and
//!    credits return upstream, both with one-cycle latency.
//!
//! Tail flits release resources as they pass: the input-VC route when the
//! tail leaves a router, the output-VC ownership when the tail is forwarded
//! through it — the defining behaviour of wormhole switching that makes
//! blocked messages hold channels (paper §1) and deadlock a real danger.
//!
//! # Active-set scheduling
//!
//! The tick loop is O(work), not O(network): only routers in the *active
//! set* are scanned. A router enters the set when a message is injected at
//! it or a flit arrives in one of its buffers, and leaves only after being
//! scanned through a full tick and found [`Router::idle`]. The invariant is
//! that every non-idle router is in the set; idle routers carry no
//! cycle-dependent state (the VA round-robin pointer is derived from the
//! cycle number, and SA pointers only move on grants), so skipping them is
//! byte-identical to scanning them. The set is iterated in ascending router
//! id, preserving the seed kernel's deterministic phase order.

use wavesim_sim::{Cycle, CycleKernelStats};
use wavesim_topology::{Candidate, NodeId, PortDir, RoutingKind, Topology, WormholeRouting};

use crate::message::{Delivery, DeliveryMode, Flit, Message};
use crate::router::{Emitting, Queued, Router};

/// Configuration of the wormhole fabric (the paper's `S0` switch plane).
#[derive(Debug, Clone, Copy)]
pub struct WormholeConfig {
    /// Virtual channels per physical link — the paper's `w` parameter.
    pub w: u8,
    /// Flit buffer depth per virtual channel.
    pub buffer_depth: u32,
    /// Routing function family.
    pub routing: RoutingKind,
    /// Cycles a head flit spends in the routing control unit per hop.
    pub routing_delay: u32,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        Self {
            w: 2,
            buffer_depth: 4,
            routing: RoutingKind::Deterministic,
            routing_delay: 1,
        }
    }
}

/// Aggregate fabric statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricStats {
    /// Messages accepted by [`WormholeFabric::inject`].
    pub injected_msgs: u64,
    /// Messages fully delivered.
    pub delivered_msgs: u64,
    /// Flits handed to destination delivery buffers.
    pub delivered_flits: u64,
    /// Flits forwarded across links (hop count · flit count).
    pub flit_hops: u64,
    /// Successful output-VC allocations.
    pub va_allocs: u64,
}

/// A node in the output-VC wait-for graph exposed for deadlock diagnosis:
/// `(router id, dense output-VC index)`.
pub type WaitVc = (u32, u16);

/// One in-flight message record: metadata plus the output VCs it holds.
struct MsgSlot {
    msg: Option<Message>,
    /// Output VCs currently held by this message, in path order.
    held: Vec<WaitVc>,
}

/// Arena of in-flight message records. Every flit carries its record's
/// slot index, so the hot path (tail delivery, held-VC bookkeeping) is a
/// direct vector index instead of a hash lookup. Freed slots are recycled
/// LIFO and each slot's `held` vector keeps its capacity across reuse, so
/// the steady-state fabric allocates nothing per message.
#[derive(Default)]
struct MsgSlab {
    slots: Vec<MsgSlot>,
    free: Vec<u32>,
    live: usize,
}

impl MsgSlab {
    fn insert(&mut self, msg: Message) -> u32 {
        self.live += 1;
        if let Some(s) = self.free.pop() {
            let slot = &mut self.slots[s as usize];
            debug_assert!(slot.msg.is_none() && slot.held.is_empty());
            slot.msg = Some(msg);
            s
        } else {
            self.slots.push(MsgSlot {
                msg: Some(msg),
                held: Vec::new(),
            });
            u32::try_from(self.slots.len() - 1).expect("fewer than 2^32 in-flight messages")
        }
    }

    fn remove(&mut self, s: u32) -> Message {
        let slot = &mut self.slots[s as usize];
        let msg = slot
            .msg
            .take()
            .expect("delivered message must have metadata");
        slot.held.clear();
        self.free.push(s);
        self.live -= 1;
        msg
    }

    fn held(&self, s: u32) -> &[WaitVc] {
        &self.slots[s as usize].held
    }

    fn held_mut(&mut self, s: u32) -> &mut Vec<WaitVc> {
        &mut self.slots[s as usize].held
    }
}

/// The flit-level wormhole network.
pub struct WormholeFabric {
    topo: Topology,
    routing: Box<dyn WormholeRouting>,
    cfg: WormholeConfig,
    w: usize,
    nports: usize,
    local: usize,
    routers: Vec<Router>,
    /// In-flight message records; flits carry their slot.
    slab: MsgSlab,
    /// Active-set bitset: bit `r` set ⇒ router `r` may have work. Set on
    /// injection and flit arrival; cleared only after the router was
    /// scanned through a full tick and found [`Router::idle`].
    active_bits: Vec<u64>,
    /// Scratch worklist of active router ids, reused across ticks.
    worklist: Vec<u32>,
    deliveries: Vec<Delivery>,
    arrivals: Vec<(u32, u16, Flit)>,
    credit_returns: Vec<(u32, u16)>,
    in_flight_flits: u64,
    emitting_msgs: u64,
    last_progress: Cycle,
    stats: FabricStats,
    kernel: CycleKernelStats,
    cand: Vec<Candidate>,
}

impl WormholeFabric {
    /// Builds the fabric for `topo` under `cfg`.
    ///
    /// # Panics
    /// Panics if `cfg.w` is insufficient for the routing function on this
    /// topology (see [`RoutingKind::build`]) or `buffer_depth == 0`.
    #[must_use]
    pub fn new(topo: Topology, cfg: WormholeConfig) -> Self {
        let routing = cfg.routing.build(&topo, cfg.w);
        Self::with_routing(topo, cfg, routing)
    }

    /// Builds the fabric with an explicit routing function (used by tests
    /// and by the verify crate's negative controls, which deliberately run
    /// broken functions the safe constructor would reject).
    ///
    /// # Panics
    /// Panics if the function's VC requirement differs from `cfg.w` or
    /// `buffer_depth == 0`.
    #[must_use]
    pub fn with_routing(
        topo: Topology,
        cfg: WormholeConfig,
        routing: Box<dyn WormholeRouting>,
    ) -> Self {
        assert!(cfg.buffer_depth >= 1, "buffers need at least one slot");
        assert_eq!(
            routing.vcs_per_link(),
            cfg.w,
            "routing must use exactly w VCs"
        );
        let w = cfg.w as usize;
        let nports = 2 * topo.ndims() + 1;
        let routers: Vec<Router> = (0..topo.num_nodes())
            .map(|_| Router::new(nports, w, cfg.buffer_depth))
            .collect();
        let active_bits = vec![0u64; routers.len().div_ceil(64)];
        Self {
            w,
            nports,
            local: nports - 1,
            routers,
            slab: MsgSlab::default(),
            active_bits,
            worklist: Vec::new(),
            deliveries: Vec::new(),
            arrivals: Vec::new(),
            credit_returns: Vec::new(),
            in_flight_flits: 0,
            emitting_msgs: 0,
            last_progress: 0,
            stats: FabricStats::default(),
            kernel: CycleKernelStats::default(),
            cand: Vec::new(),
            routing,
            topo,
            cfg,
        }
    }

    /// The topology this fabric runs on.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The fabric configuration.
    #[must_use]
    pub fn config(&self) -> &WormholeConfig {
        &self.cfg
    }

    /// The routing function in use.
    #[must_use]
    pub fn routing(&self) -> &dyn WormholeRouting {
        self.routing.as_ref()
    }

    /// Replaces the routing function (testing/negative controls only).
    ///
    /// # Panics
    /// Panics if the function's VC requirement differs from `cfg.w`.
    pub fn set_routing_for_test(&mut self, routing: Box<dyn WormholeRouting>) {
        assert_eq!(routing.vcs_per_link() as usize, self.w);
        self.routing = routing;
    }

    #[inline]
    fn activate(&mut self, r: usize) {
        self.active_bits[r / 64] |= 1u64 << (r % 64);
    }

    /// Accepts a message for injection at its source node.
    pub fn inject(&mut self, msg: Message) {
        assert!(msg.src.0 < self.topo.num_nodes(), "source out of range");
        assert!(msg.dest.0 < self.topo.num_nodes(), "dest out of range");
        let slot = self.slab.insert(msg);
        let src = msg.src.0 as usize;
        self.routers[src].inj_queue.push_back(Queued { msg, slot });
        self.activate(src);
        self.emitting_msgs += 1;
        self.stats.injected_msgs += 1;
    }

    /// Messages injected but not yet delivered.
    #[must_use]
    pub fn in_flight_msgs(&self) -> usize {
        self.slab.live
    }

    /// Flits currently buffered somewhere in the network.
    #[must_use]
    pub fn in_flight_flits(&self) -> u64 {
        self.in_flight_flits
    }

    /// Cycles since any flit last moved (0 when progress happened at `now`).
    #[must_use]
    pub fn progress_age(&self, now: Cycle) -> u64 {
        now.saturating_sub(self.last_progress)
    }

    /// Routers currently in the active set (a popcount over the active
    /// bitset — the instantaneous "how much of the network is working"
    /// gauge the time-series sampler reads each cycle).
    #[must_use]
    pub fn active_routers(&self) -> u64 {
        self.active_bits
            .iter()
            .map(|&w| u64::from(w.count_ones()))
            .sum()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// Cycle-kernel work counters (scanning effort per tick).
    #[must_use]
    pub fn kernel_stats(&self) -> CycleKernelStats {
        self.kernel
    }

    /// Drains and returns all deliveries completed since the last call.
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Swaps completed deliveries into `out` (cleared first), retaining the
    /// old buffer's capacity for the next collection cycle. Ping-ponging a
    /// caller-owned buffer through this keeps the steady state allocation
    /// free.
    pub fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.clear();
        std::mem::swap(&mut self.deliveries, out);
    }

    /// True while any message is queued, emitting, or in flight.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.in_flight_flits > 0 || self.emitting_msgs > 0
    }

    fn ivc(&self, port: usize, vc: usize) -> usize {
        port * self.w + vc
    }

    /// Advances the fabric by one cycle: scans only the active set, in
    /// ascending router order (the same order the seed kernel's full scan
    /// visited them, so arbitration and delivery order are unchanged).
    pub fn tick(&mut self, now: Cycle) {
        self.kernel.ticks += 1;
        let mut wl = std::mem::take(&mut self.worklist);
        wl.clear();
        for (wi, &word) in self.active_bits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                wl.push((wi as u32) * 64 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        self.kernel.routers_scanned += wl.len() as u64;
        for &r in &wl {
            self.va_stage(r as usize, now);
        }
        for &r in &wl {
            self.sa_stage(r as usize, now);
        }
        for &r in &wl {
            self.injection_stage(r as usize);
        }
        self.commit();
        // Retire provably quiescent routers. Routers that just received an
        // arrival in commit() fail `idle` and stay in the set.
        for &r in &wl {
            if self.routers[r as usize].idle() {
                self.active_bits[(r / 64) as usize] &= !(1u64 << (r % 64));
            }
        }
        self.worklist = wl;
    }

    /// Phase 1: routing computation + output-VC allocation.
    fn va_stage(&mut self, r: usize, now: Cycle) {
        let node = NodeId(r as u32);
        let n_ivc = self.nports * self.w;
        self.kernel.vcs_touched += n_ivc as u64;
        // The VA round-robin pointer is cycle-derived: the seed kernel
        // advanced it by exactly one per tick on every router, active or
        // not, so `now % n_ivc` reproduces it without per-router state —
        // and without requiring idle routers to tick at all.
        let start = (now % n_ivc as u64) as usize;
        for off in 0..n_ivc {
            let i = (start + off) % n_ivc;
            // Inspect the front flit without holding a borrow.
            let (front_dest, front_slot) = {
                let vc = &self.routers[r].inputs[i];
                if vc.route.is_some() {
                    continue;
                }
                match vc.buf.front() {
                    Some(f) if f.is_head => (f.dest, f.slot),
                    _ => continue,
                }
            };
            // Routing-delay accounting.
            let since = {
                let vc = &mut self.routers[r].inputs[i];
                *vc.head_since.get_or_insert(now)
            };
            if now < since + u64::from(self.cfg.routing_delay) {
                continue;
            }
            if front_dest == node {
                // Ejection needs no output VC: mark the route to the local
                // port; SA treats it with infinite credit.
                self.routers[r].inputs[i].route = Some(crate::router::RouteHold {
                    out_port: self.local as u8,
                    out_vc: 0,
                });
                self.routers[r].inputs[i].head_since = None;
                continue;
            }
            self.cand.clear();
            self.routing
                .route(&self.topo, node, front_dest, &mut self.cand);
            debug_assert!(!self.cand.is_empty(), "routing gave no candidates");
            for ci in 0..self.cand.len() {
                let c = self.cand[ci];
                let oidx = self.ivc(c.port.index(), c.vc as usize);
                if self.routers[r].outputs[oidx].owner.is_none() {
                    self.routers[r].outputs[oidx].owner = Some(i as u16);
                    self.routers[r].inputs[i].route = Some(crate::router::RouteHold {
                        out_port: c.port.index() as u8,
                        out_vc: c.vc,
                    });
                    self.routers[r].inputs[i].head_since = None;
                    self.slab.held_mut(front_slot).push((r as u32, oidx as u16));
                    self.stats.va_allocs += 1;
                    break;
                }
            }
        }
    }

    /// Phase 2: switch allocation and flit forwarding / delivery.
    fn sa_stage(&mut self, r: usize, now: Cycle) {
        let node = NodeId(r as u32);
        let n_ivc = self.nports * self.w;
        let mut input_port_used = [false; 32];
        debug_assert!(self.nports <= 32);

        for out_port in 0..self.nports {
            let start = self.routers[r].sa_rr[out_port] as usize % n_ivc;
            let mut pick: Option<usize> = None;
            for off in 0..n_ivc {
                self.kernel.vcs_touched += 1;
                let i = (start + off) % n_ivc;
                let vc = &self.routers[r].inputs[i];
                let Some(route) = vc.route else { continue };
                if route.out_port as usize != out_port || vc.buf.is_empty() {
                    continue;
                }
                if input_port_used[i / self.w] {
                    continue;
                }
                if out_port != self.local {
                    let oidx = self.ivc(out_port, route.out_vc as usize);
                    if self.routers[r].outputs[oidx].credits == 0 {
                        continue;
                    }
                }
                pick = Some(i);
                break;
            }
            let Some(i) = pick else { continue };
            input_port_used[i / self.w] = true;
            self.routers[r].sa_rr[out_port] = ((i + 1) % n_ivc) as u16;

            let route = self.routers[r].inputs[i]
                .route
                .expect("picked VC has route");
            let flit = self.routers[r].inputs[i]
                .buf
                .pop_front()
                .expect("picked VC has a flit");

            // Return a credit upstream for the slot just freed (network
            // input ports only; injection buffers are local).
            let in_port = i / self.w;
            let in_vc = i % self.w;
            if in_port != self.local {
                let p = PortDir::from_index(in_port);
                let up = self
                    .topo
                    .neighbor(node, p)
                    .expect("flits only arrive over real links");
                let up_ovc = self.ivc(p.opposite().index(), in_vc);
                self.credit_returns.push((up.0, up_ovc as u16));
            }

            self.last_progress = now;
            if out_port == self.local {
                // Delivery.
                self.in_flight_flits -= 1;
                self.stats.delivered_flits += 1;
                if flit.is_tail {
                    self.routers[r].inputs[i].route = None;
                    let msg = self.slab.remove(flit.slot);
                    debug_assert_eq!(msg.id, flit.msg, "slot/id mismatch at delivery");
                    self.stats.delivered_msgs += 1;
                    self.deliveries.push(Delivery {
                        msg,
                        delivered_at: now,
                        mode: DeliveryMode::Wormhole,
                    });
                }
            } else {
                let oidx = self.ivc(out_port, route.out_vc as usize);
                self.routers[r].outputs[oidx].credits -= 1;
                let p = PortDir::from_index(out_port);
                let down = self
                    .topo
                    .neighbor(node, p)
                    .expect("allocated outputs point at real links");
                let down_ivc = self.ivc(p.opposite().index(), route.out_vc as usize);
                self.arrivals.push((down.0, down_ivc as u16, flit));
                self.stats.flit_hops += 1;
                if flit.is_tail {
                    self.routers[r].outputs[oidx].owner = None;
                    self.routers[r].inputs[i].route = None;
                    // The tail has left this router: the message no longer
                    // holds this output VC.
                    let hs = self.slab.held_mut(flit.slot);
                    let pos = hs
                        .iter()
                        .position(|&(hr, ho)| hr == r as u32 && ho == oidx as u16)
                        .expect("held list tracks allocations in path order");
                    hs.remove(pos);
                }
            }
        }
    }

    /// Phase 3: message flit emission at sources.
    fn injection_stage(&mut self, r: usize) {
        // Continue in-progress emissions: one flit per injection VC per cycle.
        for v in 0..self.w {
            let idx = self.ivc(self.local, v);
            let Some(em) = self.routers[r].emitting[v] else {
                continue;
            };
            if self.routers[r].inputs[idx].buf.len() < self.cfg.buffer_depth as usize {
                let flit = Flit::of(&em.msg, em.sent, em.slot);
                self.routers[r].inputs[idx].buf.push_back(flit);
                self.in_flight_flits += 1;
                let sent = em.sent + 1;
                if sent == em.msg.len_flits {
                    self.routers[r].emitting[v] = None;
                    self.emitting_msgs -= 1;
                } else {
                    self.routers[r].emitting[v] = Some(Emitting {
                        msg: em.msg,
                        sent,
                        slot: em.slot,
                    });
                }
            }
        }
        // Claim idle injection VCs for queued messages.
        for v in 0..self.w {
            if self.routers[r].inj_queue.is_empty() {
                break;
            }
            let idx = self.ivc(self.local, v);
            if self.routers[r].emitting[v].is_none() && self.routers[r].inputs[idx].idle() {
                let q = self.routers[r].inj_queue.pop_front().expect("non-empty");
                self.routers[r].emitting[v] = Some(Emitting {
                    msg: q.msg,
                    sent: 0,
                    slot: q.slot,
                });
            }
        }
    }

    /// Phase 4: arrivals and credits become visible for the next cycle.
    /// Arrivals activate their receiving router; credit returns need no
    /// activation, because only a router that still holds flits (and is
    /// therefore already active) can later consume the restored credit.
    fn commit(&mut self) {
        for (r, ivc, flit) in self.arrivals.drain(..) {
            self.active_bits[(r / 64) as usize] |= 1u64 << (r % 64);
            let vc = &mut self.routers[r as usize].inputs[ivc as usize];
            vc.buf.push_back(flit);
            assert!(
                vc.buf.len() <= self.cfg.buffer_depth as usize,
                "credit protocol violated: buffer overflow at router {r} vc {ivc}"
            );
        }
        for (r, ovc) in self.credit_returns.drain(..) {
            let out = &mut self.routers[r as usize].outputs[ovc as usize];
            out.credits += 1;
            assert!(
                out.credits <= self.cfg.buffer_depth,
                "credit protocol violated: credit overflow at router {r} ovc {ovc}"
            );
        }
    }

    /// Builds the current output-VC wait-for graph for deadlock diagnosis:
    /// one edge per `(held VC → requested VC)` pair over packets whose head
    /// flit is waiting for a free output VC. For deterministic routing a
    /// cycle in this graph is a genuine deadlock.
    #[must_use]
    pub fn wait_edges(&self) -> Vec<(WaitVc, WaitVc)> {
        let mut edges = Vec::new();
        let mut cand = Vec::new();
        for (r, router) in self.routers.iter().enumerate() {
            let node = NodeId(r as u32);
            for vc in router.inputs.iter() {
                if vc.route.is_some() {
                    continue;
                }
                let Some(front) = vc.buf.front() else {
                    continue;
                };
                if !front.is_head || front.dest == node {
                    continue;
                }
                // An empty held list means the head is still at its source
                // and holds nothing yet.
                let Some(&holder) = self.slab.held(front.slot).last() else {
                    continue;
                };
                cand.clear();
                self.routing.route(&self.topo, node, front.dest, &mut cand);
                for c in &cand {
                    let oidx = self.ivc(c.port.index(), c.vc as usize);
                    edges.push((holder, (r as u32, oidx as u16)));
                }
            }
        }
        edges
    }

    /// Per-VC buffer occupancy snapshot `(router, dense input VC, flits)`,
    /// for instrumentation.
    #[must_use]
    pub fn occupancy(&self) -> Vec<(u32, u16, usize)> {
        let mut out = Vec::new();
        for (r, router) in self.routers.iter().enumerate() {
            for (i, vc) in router.inputs.iter().enumerate() {
                if !vc.buf.is_empty() {
                    out.push((r as u32, i as u16, vc.buf.len()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MessageId;
    use std::collections::HashMap;
    use wavesim_topology::Coords;

    fn mesh44(w: u8) -> WormholeFabric {
        WormholeFabric::new(
            Topology::mesh(&[4, 4]),
            WormholeConfig {
                w,
                buffer_depth: 4,
                routing: RoutingKind::Deterministic,
                routing_delay: 1,
            },
        )
    }

    fn run(fabric: &mut WormholeFabric, from: Cycle, max: Cycle) -> Cycle {
        let mut now = from;
        while fabric.busy() && now < max {
            fabric.tick(now);
            now += 1;
        }
        now
    }

    #[test]
    fn single_message_is_delivered_with_plausible_latency() {
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 0]));
        f.inject(Message::new(1, src, dest, 5, 0));
        let end = run(&mut f, 0, 10_000);
        assert!(!f.busy(), "message must drain");
        let ds = f.drain_deliveries();
        assert_eq!(ds.len(), 1);
        let d = ds[0];
        assert_eq!(d.msg.id, MessageId(1));
        // 3 hops * ~2 cycles/hop + 5 flits serialization + injection/ejection
        // overhead: latency must be tens of cycles, not hundreds.
        assert!(d.latency() >= 8, "latency {} too small", d.latency());
        assert!(d.latency() <= 40, "latency {} too large", d.latency());
        assert!(end < 100);
        assert_eq!(f.stats().delivered_flits, 5);
    }

    #[test]
    fn longer_messages_pay_serialization_latency() {
        let mut short = mesh44(1);
        let mut long = mesh44(1);
        let topo = short.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 3]));
        short.inject(Message::new(1, src, dest, 2, 0));
        long.inject(Message::new(2, src, dest, 64, 0));
        run(&mut short, 0, 10_000);
        run(&mut long, 0, 10_000);
        let ls = short.drain_deliveries()[0].latency();
        let ll = long.drain_deliveries()[0].latency();
        assert!(
            ll >= ls + 60,
            "64-flit message ({ll}) must trail 2-flit message ({ls}) by ~62 cycles"
        );
    }

    #[test]
    fn all_pairs_traffic_drains_on_mesh() {
        let mut f = mesh44(2);
        let topo = f.topology().clone();
        let mut id = 0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    f.inject(Message::new(id, a, b, 4, 0));
                    id += 1;
                }
            }
        }
        run(&mut f, 0, 200_000);
        assert!(!f.busy(), "all-pairs traffic must drain without deadlock");
        let ds = f.drain_deliveries();
        assert_eq!(ds.len(), 16 * 15);
        assert_eq!(f.in_flight_msgs(), 0);
    }

    #[test]
    fn all_pairs_traffic_drains_on_torus_with_dateline() {
        let topo = Topology::torus(&[4, 4]);
        let mut f = WormholeFabric::new(
            topo.clone(),
            WormholeConfig {
                w: 2,
                buffer_depth: 2,
                routing: RoutingKind::Deterministic,
                routing_delay: 1,
            },
        );
        let mut id = 0;
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b {
                    f.inject(Message::new(id, a, b, 6, 0));
                    id += 1;
                }
            }
        }
        run(&mut f, 0, 500_000);
        assert!(!f.busy(), "torus all-pairs must drain with dateline DOR");
        assert_eq!(f.drain_deliveries().len(), 16 * 15);
    }

    #[test]
    fn adaptive_routing_drains_hotspot_traffic() {
        let topo = Topology::mesh(&[4, 4]);
        let mut f = WormholeFabric::new(
            topo.clone(),
            WormholeConfig {
                w: 3,
                buffer_depth: 4,
                routing: RoutingKind::Adaptive,
                routing_delay: 1,
            },
        );
        let hot = topo.node(Coords::new(&[3, 3]));
        let mut id = 0;
        for a in topo.nodes() {
            if a != hot {
                for _ in 0..4 {
                    f.inject(Message::new(id, a, hot, 8, 0));
                    id += 1;
                }
            }
        }
        run(&mut f, 0, 500_000);
        assert!(!f.busy());
        assert_eq!(f.drain_deliveries().len(), 15 * 4);
    }

    #[test]
    fn wormhole_blocks_hold_channels_but_release_on_tail() {
        // Two long messages share a column link; the second must block
        // until the first's tail releases the VC, then complete.
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let a = topo.node(Coords::new(&[0, 0]));
        let b = topo.node(Coords::new(&[1, 0]));
        let dest = topo.node(Coords::new(&[3, 0]));
        f.inject(Message::new(1, a, dest, 32, 0));
        f.inject(Message::new(2, b, dest, 32, 0));
        run(&mut f, 0, 10_000);
        let mut ds = f.drain_deliveries();
        assert_eq!(ds.len(), 2);
        ds.sort_by_key(|d| d.delivered_at);
        // Both complete; the trailing one pays blocking delay.
        assert!(ds[1].delivered_at > ds[0].delivered_at);
    }

    #[test]
    fn broken_torus_routing_deadlocks_and_is_diagnosable() {
        // Negative control: single-class torus DOR with ring-filling
        // traffic must stop making progress, and the wait-for graph must
        // contain a cycle.
        let topo = Topology::torus(&[4, 3]);
        let mut f = WormholeFabric::with_routing(
            topo.clone(),
            WormholeConfig {
                w: 1,
                buffer_depth: 1,
                routing: RoutingKind::Deterministic,
                routing_delay: 1,
            },
            Box::new(wavesim_topology::NaiveTorusDor::new(1)),
        );
        // Every node on row 0 sends 2 hops around its ring: with radix 4
        // and long messages these wormholes wrap the ring and deadlock.
        for x in 0..4u16 {
            let src = topo.node(Coords::new(&[x, 0]));
            let dest = topo.node(Coords::new(&[(x + 2) % 4, 0]));
            f.inject(Message::new(u64::from(x), src, dest, 64, 0));
        }
        let mut now = 0;
        while f.busy() && now < 5_000 {
            f.tick(now);
            now += 1;
        }
        assert!(f.busy(), "expected a deadlock to freeze the ring");
        assert!(
            f.progress_age(now) > 1_000,
            "no progress for a long time: age={}",
            f.progress_age(now)
        );
        // The wait-for graph has a cycle among the ring's output VCs.
        let edges = f.wait_edges();
        assert!(!edges.is_empty());
        let mut adj: HashMap<WaitVc, Vec<WaitVc>> = HashMap::new();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
        }
        fn has_cycle(
            v: WaitVc,
            adj: &HashMap<WaitVc, Vec<WaitVc>>,
            path: &mut Vec<WaitVc>,
            seen: &mut std::collections::HashSet<WaitVc>,
        ) -> bool {
            if path.contains(&v) {
                return true;
            }
            if !seen.insert(v) {
                return false;
            }
            path.push(v);
            let out = adj.get(&v).cloned().unwrap_or_default();
            for w in out {
                if has_cycle(w, adj, path, seen) {
                    return true;
                }
            }
            path.pop();
            false
        }
        let mut seen = std::collections::HashSet::new();
        let cyclic = adj
            .keys()
            .any(|&v| has_cycle(v, &adj, &mut Vec::new(), &mut seen));
        assert!(cyclic, "deadlocked fabric must show a wait-for cycle");
    }

    #[test]
    fn determinism_same_workload_same_schedule() {
        let build = || {
            let mut f = mesh44(2);
            let topo = f.topology().clone();
            let mut id = 0;
            for a in topo.nodes() {
                for b in topo.nodes() {
                    if a != b && (a.0 + b.0) % 3 == 0 {
                        f.inject(Message::new(id, a, b, 7, 0));
                        id += 1;
                    }
                }
            }
            let mut now = 0;
            while f.busy() && now < 100_000 {
                f.tick(now);
                now += 1;
            }
            f.drain_deliveries()
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn injection_respects_vc_count() {
        // With w=1, two messages from the same source serialize.
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let d1 = topo.node(Coords::new(&[3, 0]));
        let d2 = topo.node(Coords::new(&[0, 3]));
        f.inject(Message::new(1, src, d1, 16, 0));
        f.inject(Message::new(2, src, d2, 16, 0));
        run(&mut f, 0, 10_000);
        let mut ds = f.drain_deliveries();
        ds.sort_by_key(|d| d.msg.id);
        // Disjoint paths, but single injection VC: the second message's
        // emission cannot start until the first finishes.
        assert!(ds[1].delivered_at >= ds[0].delivered_at);
        assert!(ds[1].latency() > 16);
    }

    #[test]
    fn stats_account_for_all_flits() {
        let mut f = mesh44(2);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[2, 2]));
        f.inject(Message::new(1, src, dest, 10, 0));
        run(&mut f, 0, 10_000);
        let s = f.stats();
        assert_eq!(s.injected_msgs, 1);
        assert_eq!(s.delivered_msgs, 1);
        assert_eq!(s.delivered_flits, 10);
        // 4 hops * 10 flits forwarded across links.
        assert_eq!(s.flit_hops, 40);
    }

    #[test]
    fn active_set_tracks_exactly_the_nonidle_routers() {
        // One short message crosses the mesh; after every tick, each
        // non-idle router must have its active bit set (the scheduling
        // invariant), and after drain the whole set must be empty again.
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 3]));
        f.inject(Message::new(1, src, dest, 6, 0));
        let mut now = 0;
        while f.busy() && now < 10_000 {
            f.tick(now);
            now += 1;
            for (r, router) in f.routers.iter().enumerate() {
                if !router.idle() {
                    assert!(
                        f.active_bits[r / 64] & (1 << (r % 64)) != 0,
                        "non-idle router {r} missing from active set at cycle {now}"
                    );
                }
            }
        }
        assert!(!f.busy());
        assert!(
            f.active_bits.iter().all(|&w| w == 0),
            "drained fabric must have an empty active set"
        );
        // Drained fabric: ticking is O(1) — no routers scanned.
        let before = f.kernel_stats().routers_scanned;
        f.tick(now);
        assert_eq!(f.kernel_stats().routers_scanned, before);
    }

    #[test]
    fn message_slab_recycles_slots_without_growth() {
        // Sequential messages through the same fabric must reuse one slot.
        let mut f = mesh44(1);
        let topo = f.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[2, 0]));
        let mut now = 0;
        for id in 0..8 {
            f.inject(Message::new(id, src, dest, 3, now));
            while f.busy() && now < 100_000 {
                f.tick(now);
                now += 1;
            }
        }
        assert_eq!(f.drain_deliveries().len(), 8);
        assert_eq!(f.in_flight_msgs(), 0);
        assert_eq!(
            f.slab.slots.len(),
            1,
            "sequential messages must recycle a single arena slot"
        );
    }
}
