//! Per-router state: virtual-channel buffers, allocations, arbitration.
//!
//! This mirrors the "typical architecture of a wormhole router" of the
//! paper's Fig. 1: input queues per virtual channel, a crossbar, a routing
//! control unit, and output multiplexers. State is kept **struct-of-arrays**:
//! parallel flat vectors indexed by the dense VC index `port * w + vc`, so
//! the fabric's per-cycle sweep walks contiguous memory instead of chasing
//! per-VC objects, and the scheduling state lives in two [`BitSet`]s the
//! allocation stages scan in O(set bits):
//!
//! * `va_pending` — VCs with no route and a buffered flit (their front is
//!   necessarily a head flit, see below): exactly the VCs the VA stage must
//!   visit;
//! * `sa_ready` — VCs with a route and a buffered flit: exactly the VCs the
//!   SA stage may pick from.
//!
//! The `va_pending` definition leans on a structural invariant of wormhole
//! flow control: an output VC is granted to one packet at a time, so flits
//! arrive into an input VC packet-by-packet — whenever the route is clear
//! (packet tail gone) and the buffer is non-empty, the front flit is the
//! next packet's head. The fabric debug-asserts this on every VA visit.

use std::collections::VecDeque;

use wavesim_sim::{BitSet, Cycle};

use crate::message::{Flit, Message};

/// Sentinel in [`Router::route`]: no output allocated to this input VC.
pub const ROUTE_NONE: u16 = u16::MAX;

/// Sentinel in [`Router::out_owner`]: output VC owned by no packet.
pub const OWNER_NONE: u16 = u16::MAX;

/// Sentinel in [`Router::head_since`]: no unrouted head is waiting.
pub const NO_HEAD: Cycle = Cycle::MAX;

/// Packs an output allocation into a [`Router::route`] word.
#[inline]
#[must_use]
pub fn route_pack(out_port: u8, out_vc: u8) -> u16 {
    (u16::from(out_port) << 8) | u16::from(out_vc)
}

/// Output port of a packed route word.
#[inline]
#[must_use]
pub fn route_port(r: u16) -> usize {
    (r >> 8) as usize
}

/// Output VC of a packed route word.
#[inline]
#[must_use]
pub fn route_vc(r: u16) -> usize {
    (r & 0xff) as usize
}

/// Message-emission state of one injection virtual channel.
#[derive(Debug, Clone, Copy)]
pub struct Emitting {
    /// The message being converted to flits.
    pub msg: Message,
    /// Flits already pushed into the injection buffer.
    pub sent: u32,
    /// Fabric arena slot of the message record, stamped into every flit.
    pub slot: u32,
}

/// A message waiting at its source for a free injection VC, paired with
/// the fabric arena slot its metadata lives in.
#[derive(Debug, Clone, Copy)]
pub struct Queued {
    /// The message to emit.
    pub msg: Message,
    /// Fabric arena slot of the message record.
    pub slot: u32,
}

/// Full per-node router state, struct-of-arrays over the dense input-VC
/// index `port * w + vc` (inputs) and the same layout for outputs.
#[derive(Debug, Clone)]
pub struct Router {
    /// Per-input-VC FIFO flit buffers (capacity enforced by the fabric).
    pub bufs: Vec<VecDeque<Flit>>,
    /// Per-input-VC output allocation, packed `out_port << 8 | out_vc`;
    /// [`ROUTE_NONE`] when unallocated.
    pub route: Vec<u16>,
    /// Cycle at which the head flit currently at the front was first seen
    /// by the routing control unit; [`NO_HEAD`] when none is waiting.
    pub head_since: Vec<Cycle>,
    /// Per-output-VC owner (dense input-VC index); [`OWNER_NONE`] if free.
    pub out_owner: Vec<u16>,
    /// Per-output-VC free buffer slots at the downstream input VC.
    pub out_credits: Vec<u32>,
    /// Input VCs with no route and a buffered (head) flit — the VA stage's
    /// worklist.
    pub va_pending: BitSet,
    /// Input VCs with a route and a buffered flit — the SA stage's
    /// candidate set.
    pub sa_ready: BitSet,
    /// Number of input VCs whose route is allocated (`route != ROUTE_NONE`).
    pub routed: u16,
    /// Messages waiting for a free injection VC.
    pub inj_queue: VecDeque<Queued>,
    /// Per-injection-VC flit emission in progress.
    pub emitting: Vec<Option<Emitting>>,
    /// Number of `Some` entries in `emitting`.
    pub emitting_live: u16,
    /// Round-robin pointers for switch allocation, one per output port.
    /// (The VA round-robin pointer needs no storage: the seed kernel
    /// advanced it by exactly one every cycle regardless of activity, so
    /// it is derived as `now % n_ivc` — which also lets idle routers skip
    /// ticks entirely without desynchronizing arbitration.)
    pub sa_rr: Vec<u16>,
}

impl Router {
    /// Builds a router with `nports` ports (local port included) and `w`
    /// VCs per port, each with `buffer_depth` downstream credits.
    #[must_use]
    pub fn new(nports: usize, w: usize, buffer_depth: u32) -> Self {
        let n = nports * w;
        Self {
            bufs: (0..n).map(|_| VecDeque::new()).collect(),
            route: vec![ROUTE_NONE; n],
            head_since: vec![NO_HEAD; n],
            out_owner: vec![OWNER_NONE; n],
            out_credits: vec![buffer_depth; n],
            va_pending: BitSet::new(n),
            sa_ready: BitSet::new(n),
            routed: 0,
            inj_queue: VecDeque::new(),
            emitting: vec![None; w],
            emitting_live: 0,
            sa_rr: vec![0; nports],
        }
    }

    /// Appends a flit to input VC `i` (arrival or injection), keeping the
    /// scheduling bitsets in sync.
    #[inline]
    pub fn push_flit(&mut self, i: usize, flit: Flit) {
        self.bufs[i].push_back(flit);
        if self.route[i] == ROUTE_NONE {
            self.va_pending.set(i);
        } else {
            self.sa_ready.set(i);
        }
    }

    /// Allocates the packed route `r` to input VC `i` (VA grant or
    /// ejection mark), moving it from the VA set to the SA set.
    #[inline]
    pub fn set_route(&mut self, i: usize, r: u16) {
        debug_assert_eq!(self.route[i], ROUTE_NONE);
        debug_assert_ne!(r, ROUTE_NONE);
        self.route[i] = r;
        self.routed += 1;
        self.head_since[i] = NO_HEAD;
        self.va_pending.clear(i);
        if !self.bufs[i].is_empty() {
            self.sa_ready.set(i);
        }
    }

    /// Releases input VC `i`'s route (its packet's tail left), returning
    /// the VC to the VA set if the next packet is already buffered.
    #[inline]
    pub fn clear_route(&mut self, i: usize) {
        debug_assert_ne!(self.route[i], ROUTE_NONE);
        self.route[i] = ROUTE_NONE;
        self.routed -= 1;
        self.sa_ready.clear(i);
        if !self.bufs[i].is_empty() {
            self.va_pending.set(i);
        }
    }

    /// Re-syncs the bitsets after a non-tail flit was popped from input VC
    /// `i` (the route is still held; only emptiness can change).
    #[inline]
    pub fn sync_after_pop(&mut self, i: usize) {
        if self.bufs[i].is_empty() {
            self.sa_ready.clear(i);
        }
    }

    /// Total flits buffered in this router's input VCs.
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        self.bufs.iter().map(VecDeque::len).sum()
    }

    /// True when nothing is queued, buffered, or mid-emission here.
    /// `routed == 0` covers every allocated VC (buffered or in transit);
    /// an empty `va_pending` then certifies every unallocated VC is
    /// drained too.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.inj_queue.is_empty()
            && self.emitting_live == 0
            && self.routed == 0
            && self.va_pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::NodeId;

    #[test]
    fn fresh_router_is_idle() {
        let r = Router::new(5, 2, 4);
        assert!(r.idle());
        assert_eq!(r.bufs.len(), 10);
        assert_eq!(r.out_owner.len(), 10);
        assert_eq!(r.buffered_flits(), 0);
        assert!(r.out_credits.iter().all(|&c| c == 4));
        assert!(r.out_owner.iter().all(|&o| o == OWNER_NONE));
    }

    #[test]
    fn queued_message_makes_router_busy() {
        let mut r = Router::new(5, 2, 4);
        r.inj_queue.push_back(Queued {
            msg: Message::new(1, NodeId(0), NodeId(1), 3, 0),
            slot: 0,
        });
        assert!(!r.idle());
    }

    #[test]
    fn route_pack_round_trips() {
        let r = route_pack(7, 3);
        assert_eq!(route_port(r), 7);
        assert_eq!(route_vc(r), 3);
        assert_ne!(r, ROUTE_NONE);
    }

    #[test]
    fn bitsets_track_push_route_pop_lifecycle() {
        let mut r = Router::new(5, 2, 4);
        let m = Message::new(1, NodeId(0), NodeId(1), 2, 0);
        let head = Flit::of(&m, 0, 0);
        let tail = Flit::of(&m, 1, 0);

        r.push_flit(3, head);
        assert!(r.va_pending.get(3) && !r.sa_ready.get(3));
        assert!(!r.idle(), "pending VC is not idle");

        r.set_route(3, route_pack(1, 0));
        assert!(!r.va_pending.get(3) && r.sa_ready.get(3));
        assert_eq!(r.routed, 1);

        r.push_flit(3, tail);
        let _ = r.bufs[3].pop_front().unwrap();
        r.sync_after_pop(3);
        assert!(r.sa_ready.get(3), "tail still buffered");

        let popped = r.bufs[3].pop_front().unwrap();
        assert!(popped.is_tail);
        r.clear_route(3);
        assert_eq!(r.routed, 0);
        assert!(!r.sa_ready.get(3) && !r.va_pending.get(3));
        assert!(r.idle());
    }

    #[test]
    fn allocated_vc_is_not_idle_even_when_drained() {
        let mut r = Router::new(5, 2, 4);
        let m = Message::new(1, NodeId(0), NodeId(1), 3, 0);
        r.push_flit(0, Flit::of(&m, 0, 0));
        r.set_route(0, route_pack(2, 1));
        let _ = r.bufs[0].pop_front().unwrap();
        r.sync_after_pop(0);
        assert!(!r.idle(), "allocated VC is not idle even when drained");
    }
}
