//! Per-router state: virtual-channel buffers, allocations, arbitration.
//!
//! This mirrors the "typical architecture of a wormhole router" of the
//! paper's Fig. 1: input queues per virtual channel, a crossbar, a routing
//! control unit, and output multiplexers. State is kept in flat vectors
//! indexed `port * w + vc` so the fabric's per-cycle sweep stays cache
//! friendly.

use std::collections::VecDeque;

use wavesim_sim::Cycle;

use crate::message::{Flit, Message};

/// Route decision held by an input VC after virtual-channel allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHold {
    /// Output port index (dense; `2·ndims` is the ejection port).
    pub out_port: u8,
    /// Output VC index on that port.
    pub out_vc: u8,
}

/// One input virtual channel: a private flit buffer plus allocation state.
#[derive(Debug, Clone)]
pub struct InputVc {
    /// FIFO flit buffer (capacity enforced by the fabric).
    pub buf: VecDeque<Flit>,
    /// Output allocation of the packet currently occupying this VC.
    pub route: Option<RouteHold>,
    /// Cycle at which the head flit currently at the front was first seen
    /// by the routing control unit (None when no unrouted head is waiting).
    pub head_since: Option<Cycle>,
}

impl InputVc {
    /// Empty VC.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buf: VecDeque::new(),
            route: None,
            head_since: None,
        }
    }

    /// True when this VC holds no packet state at all and can accept a new
    /// wormhole.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.buf.is_empty() && self.route.is_none()
    }
}

impl Default for InputVc {
    fn default() -> Self {
        Self::new()
    }
}

/// One output virtual channel: ownership plus credit count.
#[derive(Debug, Clone, Copy)]
pub struct OutputVc {
    /// Input VC (dense index) of the packet that owns this output VC, if any.
    pub owner: Option<u16>,
    /// Free buffer slots at the downstream input VC.
    pub credits: u32,
}

impl OutputVc {
    /// Fresh output VC with `credits` downstream slots.
    #[must_use]
    pub fn new(credits: u32) -> Self {
        Self {
            owner: None,
            credits,
        }
    }
}

/// Message-emission state of one injection virtual channel.
#[derive(Debug, Clone, Copy)]
pub struct Emitting {
    /// The message being converted to flits.
    pub msg: Message,
    /// Flits already pushed into the injection buffer.
    pub sent: u32,
    /// Fabric arena slot of the message record, stamped into every flit.
    pub slot: u32,
}

/// A message waiting at its source for a free injection VC, paired with
/// the fabric arena slot its metadata lives in.
#[derive(Debug, Clone, Copy)]
pub struct Queued {
    /// The message to emit.
    pub msg: Message,
    /// Fabric arena slot of the message record.
    pub slot: u32,
}

/// Full per-node router state.
#[derive(Debug, Clone)]
pub struct Router {
    /// Input VCs, `(2·ndims + 1) · w` entries; the last port is injection.
    pub inputs: Vec<InputVc>,
    /// Output VCs, same layout; the last port is ejection.
    pub outputs: Vec<OutputVc>,
    /// Messages waiting for a free injection VC.
    pub inj_queue: VecDeque<Queued>,
    /// Per-injection-VC flit emission in progress.
    pub emitting: Vec<Option<Emitting>>,
    /// Round-robin pointers for switch allocation, one per output port.
    /// (The VA round-robin pointer needs no storage: the seed kernel
    /// advanced it by exactly one every cycle regardless of activity, so
    /// it is derived as `now % n_ivc` — which also lets idle routers skip
    /// ticks entirely without desynchronizing arbitration.)
    pub sa_rr: Vec<u16>,
}

impl Router {
    /// Builds a router with `nports` ports (local port included) and `w`
    /// VCs per port, each with `buffer_depth` downstream credits.
    #[must_use]
    pub fn new(nports: usize, w: usize, buffer_depth: u32) -> Self {
        Self {
            inputs: (0..nports * w).map(|_| InputVc::new()).collect(),
            outputs: (0..nports * w)
                .map(|_| OutputVc::new(buffer_depth))
                .collect(),
            inj_queue: VecDeque::new(),
            emitting: vec![None; w],
            sa_rr: vec![0; nports],
        }
    }

    /// Total flits buffered in this router's input VCs.
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        self.inputs.iter().map(|vc| vc.buf.len()).sum()
    }

    /// True when nothing is queued, buffered, or mid-emission here.
    #[must_use]
    pub fn idle(&self) -> bool {
        self.inj_queue.is_empty()
            && self.emitting.iter().all(Option::is_none)
            && self.inputs.iter().all(InputVc::idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::NodeId;

    #[test]
    fn fresh_router_is_idle() {
        let r = Router::new(5, 2, 4);
        assert!(r.idle());
        assert_eq!(r.inputs.len(), 10);
        assert_eq!(r.outputs.len(), 10);
        assert_eq!(r.buffered_flits(), 0);
        assert!(r
            .outputs
            .iter()
            .all(|o| o.credits == 4 && o.owner.is_none()));
    }

    #[test]
    fn queued_message_makes_router_busy() {
        let mut r = Router::new(5, 2, 4);
        r.inj_queue.push_back(Queued {
            msg: Message::new(1, NodeId(0), NodeId(1), 3, 0),
            slot: 0,
        });
        assert!(!r.idle());
    }

    #[test]
    fn input_vc_idle_semantics() {
        let mut vc = InputVc::new();
        assert!(vc.idle());
        vc.route = Some(RouteHold {
            out_port: 0,
            out_vc: 0,
        });
        assert!(!vc.idle(), "allocated VC is not idle even when drained");
    }
}
