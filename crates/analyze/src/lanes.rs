//! Wave-lane reservation occupancy.
//!
//! A wave lane is a `(physical link, wave switch)` pair. Lanes are
//! reserved hop by hop as probes advance ([`TraceEvent::ProbeHop`]),
//! released one at a time on backtrack, and held for the whole circuit
//! lifetime once the probe reaches the destination — until
//! [`TraceEvent::CircuitReleased`] frees the path. Summing those hold
//! intervals per lane yields the reservation-occupancy ranking the "hot
//! lanes" report is built from: the lanes most likely to block other
//! probes and force victim selection.

use std::collections::HashMap;

use wavesim_sim::Cycle;
use wavesim_trace::{TraceEvent, TraceRecord};

/// Reservation statistics for one wave lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneStats {
    /// Physical link id.
    pub link: u32,
    /// Wave switch (1-based).
    pub switch: u8,
    /// Times a probe hop reserved this lane.
    pub reservations: u64,
    /// Total cycles the lane spent reserved (walks plus circuit holds;
    /// reservations still open at the end of the trace are closed at the
    /// last record's cycle).
    pub held_cycles: u64,
}

/// Lanes currently held by each probe, reservation order (a stack:
/// backtracks release the most recent hop).
type HeldStack = Vec<((u32, u8), Cycle)>;

fn close(lane: (u32, u8), since: Cycle, until: Cycle, acc: &mut HashMap<(u32, u8), LaneStats>) {
    let e = acc.entry(lane).or_insert(LaneStats {
        link: lane.0,
        switch: lane.1,
        reservations: 0,
        held_cycles: 0,
    });
    e.held_cycles += until.saturating_sub(since);
}

/// Incremental lane-occupancy accounting; [`occupancy`] is the batch
/// wrapper. The horizon is tracked as the highest cycle folded so far
/// (record streams are cycle-ordered, so this equals the last record's
/// cycle), and still-open reservations close against it at
/// [`LaneFold::finish`].
#[derive(Default)]
pub struct LaneFold {
    horizon: Cycle,
    /// The switch a probe searches is named by its circuit's launch, not
    /// repeated on every hop.
    switch_of: HashMap<u64, u8>,
    stacks: HashMap<u64, HeldStack>,
    /// Probes holding lanes on behalf of each circuit.
    probes_of: HashMap<u64, Vec<u64>>,
    acc: HashMap<(u32, u8), LaneStats>,
}

impl LaneFold {
    /// An empty fold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record.
    pub fn fold(&mut self, rec: &TraceRecord) {
        self.horizon = self.horizon.max(rec.at);
        match rec.ev {
            TraceEvent::ProbeLaunch {
                circuit, switch, ..
            } => {
                self.switch_of.insert(circuit, switch);
            }
            TraceEvent::ProbeHop {
                circuit,
                probe,
                link,
                ..
            } => {
                let sw = self.switch_of.get(&circuit).copied().unwrap_or(1);
                let lane = (link, sw);
                self.acc
                    .entry(lane)
                    .or_insert(LaneStats {
                        link,
                        switch: sw,
                        reservations: 0,
                        held_cycles: 0,
                    })
                    .reservations += 1;
                self.stacks.entry(probe).or_default().push((lane, rec.at));
                let ps = self.probes_of.entry(circuit).or_default();
                if !ps.contains(&probe) {
                    ps.push(probe);
                }
            }
            TraceEvent::ProbeBacktrack { probe, .. } => {
                if let Some((lane, since)) = self.stacks.get_mut(&probe).and_then(Vec::pop) {
                    close(lane, since, rec.at, &mut self.acc);
                }
            }
            TraceEvent::CircuitReleased { circuit } | TraceEvent::CircuitAbandoned { circuit } => {
                for probe in self.probes_of.remove(&circuit).unwrap_or_default() {
                    for (lane, since) in self.stacks.remove(&probe).unwrap_or_default() {
                        close(lane, since, rec.at, &mut self.acc);
                    }
                }
            }
            _ => {}
        }
    }

    /// Closes open reservations at the horizon and returns the lanes
    /// sorted hottest first.
    #[must_use]
    pub fn finish(mut self) -> Vec<LaneStats> {
        // Reservations still open when the trace ends are charged to the
        // horizon; without this a saturated run would under-count its
        // hottest (never-released) lanes.
        for stack in self.stacks.into_values() {
            for (lane, since) in stack {
                close(lane, since, self.horizon, &mut self.acc);
            }
        }
        let mut out: Vec<LaneStats> = self.acc.into_values().collect();
        out.sort_by(|a, b| {
            (b.held_cycles, b.reservations, a.link, a.switch).cmp(&(
                a.held_cycles,
                a.reservations,
                b.link,
                b.switch,
            ))
        });
        out
    }
}

/// Computes per-lane reservation occupancy from a record stream. Returns
/// lanes sorted hottest first (held cycles, then reservations, then lane
/// id — a total order, so the result is deterministic).
#[must_use]
pub fn occupancy(records: &[TraceRecord]) -> Vec<LaneStats> {
    let mut fold = LaneFold::new();
    for rec in records {
        fold.fold(rec);
    }
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: Cycle, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    fn hop(at: Cycle, seq: u64, circuit: u64, probe: u64, link: u32) -> TraceRecord {
        rec(
            at,
            seq,
            TraceEvent::ProbeHop {
                circuit,
                probe,
                node: 0,
                link,
                misroute: false,
            },
        )
    }

    #[test]
    fn walk_backtrack_and_release_account_hold_times() {
        let recs = vec![
            rec(
                0,
                0,
                TraceEvent::ProbeLaunch {
                    circuit: 1,
                    src: 0,
                    dest: 3,
                    switch: 2,
                    force: false,
                },
            ),
            hop(10, 1, 1, 7, 0),
            hop(12, 2, 1, 7, 4),
            rec(
                14,
                3,
                TraceEvent::ProbeBacktrack {
                    circuit: 1,
                    probe: 7,
                    node: 1,
                },
            ),
            hop(15, 4, 1, 7, 5),
            rec(30, 5, TraceEvent::CircuitReleased { circuit: 1 }),
        ];
        let lanes = occupancy(&recs);
        let find = |link: u32| lanes.iter().find(|l| l.link == link).unwrap();
        // Link 4 was reserved at 12, backtracked at 14.
        assert_eq!(find(4).held_cycles, 2);
        // Links 0 and 5 were held until the release at 30.
        assert_eq!(find(0).held_cycles, 20);
        assert_eq!(find(5).held_cycles, 15);
        assert!(lanes.iter().all(|l| l.switch == 2));
        // Sorted hottest first.
        assert_eq!(lanes[0].link, 0);
        assert_eq!(lanes[0].reservations, 1);
    }

    #[test]
    fn open_reservations_close_at_the_horizon() {
        let recs = vec![
            rec(
                0,
                0,
                TraceEvent::ProbeLaunch {
                    circuit: 1,
                    src: 0,
                    dest: 3,
                    switch: 1,
                    force: false,
                },
            ),
            hop(5, 1, 1, 7, 2),
            rec(
                25,
                2,
                TraceEvent::PlaneTick {
                    plane: wavesim_trace::PlaneId::Control,
                },
            ),
        ];
        let lanes = occupancy(&recs);
        assert_eq!(lanes.len(), 1);
        assert_eq!(lanes[0].held_cycles, 20);
    }

    #[test]
    fn empty_trace_has_no_lanes() {
        assert!(occupancy(&[]).is_empty());
    }
}
