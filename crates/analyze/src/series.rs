//! Offline time-series derivation.
//!
//! Rebuilds the same windowed rows the live bench sampler produces
//! ([`wavesim_trace::timeseries::WindowSeries`]) from a captured record
//! stream: deliveries feed the per-window latency histogram, cache events
//! feed the hit rate, and the set of distinct routers named by a cycle's
//! events stands in for the live active-router gauge.

use std::collections::{HashMap, HashSet};

use wavesim_sim::Cycle;
use wavesim_trace::timeseries::{WindowRow, WindowSeries};
use wavesim_trace::{TraceEvent, TraceRecord};

/// Calls `visit` with every node id an event names as *doing work* (probe
/// positions, cache lookups, transfer endpoints — not idle bystanders).
fn visit_nodes(ev: &TraceEvent, mut visit: impl FnMut(u32)) {
    match *ev {
        TraceEvent::ProbeLaunch { src, .. }
        | TraceEvent::ProbeExhausted { src, .. }
        | TraceEvent::ForcedRelease { src, .. }
        | TraceEvent::WormholeInject { src, .. }
        | TraceEvent::EstablishRetry { src, .. } => visit(src),
        TraceEvent::ProbeHop { node, .. }
        | TraceEvent::ProbeBacktrack { node, .. }
        | TraceEvent::ProbePark { node, .. }
        | TraceEvent::CacheHit { node, .. }
        | TraceEvent::CacheMiss { node, .. }
        | TraceEvent::CacheEvict { node, .. } => visit(node),
        TraceEvent::ProbeReached { dest, .. } => visit(dest),
        TraceEvent::CircuitEstablished { src, dest, .. }
        | TraceEvent::TransferStart { src, dest, .. }
        | TraceEvent::CircuitBroken { src, dest, .. } => {
            visit(src);
            visit(dest);
        }
        TraceEvent::WormholeDeliver { dest, .. } | TraceEvent::CircuitDeliver { dest, .. } => {
            visit(dest);
        }
        TraceEvent::PlaneTick { .. }
        | TraceEvent::CircuitReleased { .. }
        | TraceEvent::CircuitAbandoned { .. }
        | TraceEvent::LaneFault { .. }
        | TraceEvent::LaneRepair { .. }
        | TraceEvent::WatchdogTrip { .. } => {}
    }
}

/// Incremental window-series derivation; [`derive`] is the batch wrapper.
///
/// The offline path infers the node count in a prepass; the fold instead
/// tracks the highest node id seen while folding. That is equivalent
/// because [`WindowSeries`] rows never read the node count — it only
/// normalizes throughput at render time — so the fold constructs the
/// series with a placeholder and reports the inferred count at
/// [`SeriesFold::finish`].
pub struct SeriesFold {
    series: WindowSeries,
    explicit_nodes: Option<u64>,
    max_node: u32,
    flits_of: HashMap<u64, u32>,
    cur_at: Option<Cycle>,
    touched: HashSet<u32>,
    hits: u64,
    misses: u64,
}

impl SeriesFold {
    /// An empty fold over `window`-cycle windows. `nodes` as in
    /// [`derive`].
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64, nodes: Option<u64>) -> Self {
        SeriesFold {
            series: WindowSeries::new(window, nodes.unwrap_or(1).max(1)),
            explicit_nodes: nodes,
            max_node: 0,
            flits_of: HashMap::new(),
            cur_at: None,
            touched: HashSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn flush(&mut self, at: Cycle) {
        self.series
            .observe(at, self.touched.len() as u64, self.hits, self.misses);
        self.touched.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Folds one record. Records must arrive in cycle order.
    pub fn fold(&mut self, rec: &TraceRecord) {
        if let Some(c) = self.cur_at {
            if c != rec.at {
                self.flush(c);
            }
        }
        self.cur_at = Some(rec.at);
        let max_node = &mut self.max_node;
        let touched = &mut self.touched;
        visit_nodes(&rec.ev, |n| {
            *max_node = (*max_node).max(n);
            touched.insert(n);
        });
        match rec.ev {
            TraceEvent::TransferStart { msg, len_flits, .. }
            | TraceEvent::WormholeInject { msg, len_flits, .. } => {
                self.flits_of.insert(msg, len_flits);
            }
            TraceEvent::CacheHit { .. } => self.hits += 1,
            TraceEvent::CacheMiss { .. } => self.misses += 1,
            TraceEvent::WormholeDeliver { msg, latency, .. }
            | TraceEvent::CircuitDeliver { msg, latency, .. } => {
                let flits = u64::from(self.flits_of.get(&msg).copied().unwrap_or(0));
                self.series.record_delivery(rec.at, latency, flits);
            }
            _ => {}
        }
    }

    /// Flushes the tail window and returns the rows plus the node count
    /// used (the explicit count, or the inferred highest-node-plus-one).
    #[must_use]
    pub fn finish(mut self) -> (Vec<WindowRow>, u64) {
        let end = self.cur_at.map_or(0, |at| at + 1);
        if let Some(at) = self.cur_at {
            self.flush(at);
        }
        let nodes = self.explicit_nodes.unwrap_or(u64::from(self.max_node) + 1);
        (self.series.finish(end), nodes)
    }
}

/// Derives windowed rows from a record stream. `nodes` normalizes
/// throughput; pass `None` to infer the node count as the highest node id
/// seen plus one (exact for workloads that touch every node, a safe lower
/// bound otherwise). Returns the rows and the node count used.
#[must_use]
pub fn derive(records: &[TraceRecord], window: u64, nodes: Option<u64>) -> (Vec<WindowRow>, u64) {
    let mut fold = SeriesFold::new(window, nodes);
    for rec in records {
        fold.fold(rec);
    }
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: Cycle, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    #[test]
    fn derived_rows_carry_deliveries_cache_and_activity() {
        let recs = vec![
            rec(0, 0, TraceEvent::CacheMiss { node: 2, dest: 3 }),
            rec(
                1,
                1,
                TraceEvent::WormholeInject {
                    msg: 1,
                    src: 2,
                    dest: 3,
                    len_flits: 16,
                },
            ),
            rec(
                12,
                2,
                TraceEvent::WormholeDeliver {
                    msg: 1,
                    src: 2,
                    dest: 3,
                    latency: 11,
                },
            ),
            rec(
                15,
                3,
                TraceEvent::CacheHit {
                    node: 2,
                    dest: 3,
                    circuit: 1,
                },
            ),
        ];
        let (rows, nodes) = derive(&recs, 10, None);
        assert_eq!(nodes, 4, "highest node id is 3");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cache_misses, 1);
        assert_eq!(rows[0].active_routers, 1, "one distinct node per cycle");
        assert_eq!(rows[1].delivered, 1);
        assert_eq!(rows[1].flits, 16);
        assert_eq!(rows[1].cache_hits, 1);
        assert!((rows[1].p50.unwrap() - 11.0).abs() < 1e-9);
        assert_eq!(rows[0].p50, None, "no deliveries in the first window");
    }

    #[test]
    fn explicit_node_count_wins_over_inference() {
        let recs = vec![rec(0, 0, TraceEvent::CacheMiss { node: 0, dest: 1 })];
        let (_, nodes) = derive(&recs, 10, Some(64));
        assert_eq!(nodes, 64);
    }

    #[test]
    fn empty_trace_yields_no_rows() {
        let (rows, nodes) = derive(&[], 10, None);
        assert!(rows.is_empty());
        assert_eq!(nodes, 1);
    }
}
