//! Offline time-series derivation.
//!
//! Rebuilds the same windowed rows the live bench sampler produces
//! ([`wavesim_trace::timeseries::WindowSeries`]) from a captured record
//! stream: deliveries feed the per-window latency histogram, cache events
//! feed the hit rate, and the set of distinct routers named by a cycle's
//! events stands in for the live active-router gauge.

use std::collections::{HashMap, HashSet};

use wavesim_sim::Cycle;
use wavesim_trace::timeseries::{WindowRow, WindowSeries};
use wavesim_trace::{TraceEvent, TraceRecord};

/// Calls `visit` with every node id an event names as *doing work* (probe
/// positions, cache lookups, transfer endpoints — not idle bystanders).
fn visit_nodes(ev: &TraceEvent, mut visit: impl FnMut(u32)) {
    match *ev {
        TraceEvent::ProbeLaunch { src, .. }
        | TraceEvent::ProbeExhausted { src, .. }
        | TraceEvent::ForcedRelease { src, .. }
        | TraceEvent::WormholeInject { src, .. }
        | TraceEvent::EstablishRetry { src, .. } => visit(src),
        TraceEvent::ProbeHop { node, .. }
        | TraceEvent::ProbeBacktrack { node, .. }
        | TraceEvent::ProbePark { node, .. }
        | TraceEvent::CacheHit { node, .. }
        | TraceEvent::CacheMiss { node, .. }
        | TraceEvent::CacheEvict { node, .. } => visit(node),
        TraceEvent::ProbeReached { dest, .. } => visit(dest),
        TraceEvent::CircuitEstablished { src, dest, .. }
        | TraceEvent::TransferStart { src, dest, .. }
        | TraceEvent::CircuitBroken { src, dest, .. } => {
            visit(src);
            visit(dest);
        }
        TraceEvent::WormholeDeliver { dest, .. } | TraceEvent::CircuitDeliver { dest, .. } => {
            visit(dest);
        }
        TraceEvent::PlaneTick { .. }
        | TraceEvent::CircuitReleased { .. }
        | TraceEvent::CircuitAbandoned { .. }
        | TraceEvent::LaneFault { .. }
        | TraceEvent::LaneRepair { .. } => {}
    }
}

/// Derives windowed rows from a record stream. `nodes` normalizes
/// throughput; pass `None` to infer the node count as the highest node id
/// seen plus one (exact for workloads that touch every node, a safe lower
/// bound otherwise). Returns the rows and the node count used.
#[must_use]
pub fn derive(records: &[TraceRecord], window: u64, nodes: Option<u64>) -> (Vec<WindowRow>, u64) {
    let nodes = nodes.unwrap_or_else(|| {
        let mut max_node = 0u32;
        for rec in records {
            visit_nodes(&rec.ev, |n| max_node = max_node.max(n));
        }
        u64::from(max_node) + 1
    });
    let mut flits_of: HashMap<u64, u32> = HashMap::new();
    for rec in records {
        match rec.ev {
            TraceEvent::TransferStart { msg, len_flits, .. }
            | TraceEvent::WormholeInject { msg, len_flits, .. } => {
                flits_of.insert(msg, len_flits);
            }
            _ => {}
        }
    }

    let mut series = WindowSeries::new(window, nodes.max(1));
    let mut cur_at: Option<Cycle> = None;
    let mut touched: HashSet<u32> = HashSet::new();
    let mut hits = 0u64;
    let mut misses = 0u64;
    let flush = |series: &mut WindowSeries,
                 at: Cycle,
                 touched: &mut HashSet<u32>,
                 hits: &mut u64,
                 misses: &mut u64| {
        series.observe(at, touched.len() as u64, *hits, *misses);
        touched.clear();
        *hits = 0;
        *misses = 0;
    };
    for rec in records {
        if cur_at.is_some_and(|c| c != rec.at) {
            flush(
                &mut series,
                cur_at.unwrap(),
                &mut touched,
                &mut hits,
                &mut misses,
            );
        }
        cur_at = Some(rec.at);
        visit_nodes(&rec.ev, |n| {
            touched.insert(n);
        });
        match rec.ev {
            TraceEvent::CacheHit { .. } => hits += 1,
            TraceEvent::CacheMiss { .. } => misses += 1,
            TraceEvent::WormholeDeliver { msg, latency, .. }
            | TraceEvent::CircuitDeliver { msg, latency, .. } => {
                let flits = u64::from(flits_of.get(&msg).copied().unwrap_or(0));
                series.record_delivery(rec.at, latency, flits);
            }
            _ => {}
        }
    }
    if let Some(at) = cur_at {
        flush(&mut series, at, &mut touched, &mut hits, &mut misses);
    }
    let end = records.last().map_or(0, |r| r.at + 1);
    (series.finish(end), nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: Cycle, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    #[test]
    fn derived_rows_carry_deliveries_cache_and_activity() {
        let recs = vec![
            rec(0, 0, TraceEvent::CacheMiss { node: 2, dest: 3 }),
            rec(
                1,
                1,
                TraceEvent::WormholeInject {
                    msg: 1,
                    src: 2,
                    dest: 3,
                    len_flits: 16,
                },
            ),
            rec(
                12,
                2,
                TraceEvent::WormholeDeliver {
                    msg: 1,
                    src: 2,
                    dest: 3,
                    latency: 11,
                },
            ),
            rec(
                15,
                3,
                TraceEvent::CacheHit {
                    node: 2,
                    dest: 3,
                    circuit: 1,
                },
            ),
        ];
        let (rows, nodes) = derive(&recs, 10, None);
        assert_eq!(nodes, 4, "highest node id is 3");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cache_misses, 1);
        assert_eq!(rows[0].active_routers, 1, "one distinct node per cycle");
        assert_eq!(rows[1].delivered, 1);
        assert_eq!(rows[1].flits, 16);
        assert_eq!(rows[1].cache_hits, 1);
        assert!((rows[1].p50.unwrap() - 11.0).abs() < 1e-9);
        assert_eq!(rows[0].p50, None, "no deliveries in the first window");
    }

    #[test]
    fn explicit_node_count_wins_over_inference() {
        let recs = vec![rec(0, 0, TraceEvent::CacheMiss { node: 0, dest: 1 })];
        let (_, nodes) = derive(&recs, 10, Some(64));
        assert_eq!(nodes, 64);
    }

    #[test]
    fn empty_trace_yields_no_rows() {
        let (rows, nodes) = derive(&[], 10, None);
        assert!(rows.is_empty());
        assert_eq!(nodes, 1);
    }
}
