//! Fault impact windows.
//!
//! For every [`TraceEvent::LaneFault`] the analyzer measures delivery
//! throughput and latency in three windows: *before* the fault, *during*
//! it (until the matching [`TraceEvent::LaneRepair`], or the end of the
//! trace for permanent faults), and *after* the repair. The before/after
//! windows mirror the outage's own length *where the trace allows it*:
//! the before window is clamped at cycle 0 (a fault early in the run has
//! less history than the outage is long) and the after window is clamped
//! at both the trace end and the lane's **next** fault (so it never
//! counts a later outage's degraded cycles as recovery). Because the
//! windows can therefore be shorter than the outage, comparisons must go
//! through [`PhaseStats::rate`] — deliveries per cycle over the window's
//! *actual* length — not raw delivery counts.

use wavesim_sim::Cycle;
use wavesim_trace::{TraceEvent, TraceRecord};

use crate::spans::MessageSpan;

/// Delivery statistics over one half-open window `[from, to)`.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Window start (inclusive).
    pub from: Cycle,
    /// Window end (exclusive).
    pub to: Cycle,
    /// Messages delivered inside the window.
    pub delivered: u64,
    /// Mean end-to-end latency of those deliveries.
    pub mean_latency: f64,
}

impl PhaseStats {
    /// The window's actual length in cycles. Clamping (at cycle 0, the
    /// trace end, or the lane's next fault) can make this shorter than
    /// the outage it mirrors.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.to.saturating_sub(self.from)
    }

    /// True for a window clamped down to nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deliveries per cycle over the window's actual length — the
    /// comparable throughput figure. Zero for an empty window.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.delivered as f64 / self.len() as f64
        }
    }
}

/// One lane fault's before/during/after comparison.
#[derive(Debug, Clone, Copy)]
pub struct FaultImpact {
    /// Faulted lane's physical link.
    pub link: u32,
    /// Faulted lane's wave switch (1-based).
    pub switch: u8,
    /// Cycle the lane failed.
    pub fault_at: Cycle,
    /// Cycle the lane was repaired; `None` for permanent faults.
    pub repair_at: Option<Cycle>,
    /// The outage-length window ending at the fault.
    pub before: PhaseStats,
    /// The outage itself.
    pub during: PhaseStats,
    /// The outage-length window starting at the repair (absent for
    /// permanent faults).
    pub after: Option<PhaseStats>,
}

fn phase(deliveries: &[(Cycle, u64)], from: Cycle, to: Cycle) -> PhaseStats {
    let lo = deliveries.partition_point(|&(at, _)| at < from);
    let hi = deliveries.partition_point(|&(at, _)| at < to);
    let window = &deliveries[lo..hi];
    let delivered = window.len() as u64;
    let mean_latency = if window.is_empty() {
        0.0
    } else {
        window.iter().map(|&(_, l)| l as f64).sum::<f64>() / delivered as f64
    };
    PhaseStats {
        from,
        to,
        delivered,
        mean_latency,
    }
}

/// One fault-timeline entry: `(cycle, link, switch, is_fault)`.
type LaneEvent = (Cycle, u32, u8, bool);

/// Incremental fault-impact accounting. The fold only retains the (rare)
/// lane fault / repair timeline plus the trace horizon; the window math
/// runs at [`FaultFold::finish`] against the reconstructed deliveries.
/// [`impact`] is the batch wrapper.
#[derive(Default)]
pub struct FaultFold {
    timeline: Vec<LaneEvent>,
    horizon: Cycle,
}

impl FaultFold {
    /// An empty fold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record: every record advances the horizon, lane fault /
    /// repair events extend the timeline.
    pub fn fold(&mut self, rec: &TraceRecord) {
        self.horizon = self.horizon.max(rec.at);
        match rec.ev {
            TraceEvent::LaneFault { link, switch } => {
                self.timeline.push((rec.at, link, switch, true));
            }
            TraceEvent::LaneRepair { link, switch } => {
                self.timeline.push((rec.at, link, switch, false));
            }
            _ => {}
        }
    }

    /// Builds one [`FaultImpact`] per lane fault. `spans` are the
    /// reconstructed deliveries (already in delivery order).
    #[must_use]
    pub fn finish(self, spans: &[MessageSpan]) -> Vec<FaultImpact> {
        let deliveries: Vec<(Cycle, u64)> =
            spans.iter().map(|s| (s.delivered, s.latency())).collect();
        debug_assert!(deliveries.windows(2).all(|w| w[0].0 <= w[1].0));

        let mut out = Vec::new();
        for (i, &(fault_at, link, switch, is_fault)) in self.timeline.iter().enumerate() {
            if !is_fault {
                continue;
            }
            let later = &self.timeline[i + 1..];
            let repair_at = later
                .iter()
                .find(|&&(_, l, s, f)| !f && l == link && s == switch)
                .map(|&(at, ..)| at);
            // Exclusive bound that still covers deliveries at the last
            // cycle.
            let end = self.horizon + 1;
            let during_end = repair_at.unwrap_or(end);
            let dur = during_end.saturating_sub(fault_at).max(1);
            // The recovery window must stop where the same lane fails
            // again: counting a later outage's cycles as "after"
            // understates the recovery rate.
            let next_fault_at = later
                .iter()
                .find(|&&(_, l, s, f)| f && l == link && s == switch)
                .map(|&(at, ..)| at);
            out.push(FaultImpact {
                link,
                switch,
                fault_at,
                repair_at,
                before: phase(&deliveries, fault_at.saturating_sub(dur), fault_at),
                during: phase(&deliveries, fault_at, during_end),
                after: repair_at.map(|r| {
                    let to = r
                        .saturating_add(dur)
                        .min(end)
                        .min(next_fault_at.unwrap_or(u64::MAX));
                    phase(&deliveries, r, to.max(r))
                }),
            });
        }
        out
    }
}

/// Builds one [`FaultImpact`] per lane fault in the trace. `spans` are the
/// reconstructed deliveries (already in delivery order).
#[must_use]
pub fn impact(records: &[TraceRecord], spans: &[MessageSpan]) -> Vec<FaultImpact> {
    let mut fold = FaultFold::new();
    for rec in records {
        fold.fold(rec);
    }
    fold.finish(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::reconstruct;

    fn rec(at: Cycle, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    fn deliver(at: Cycle, seq: u64, msg: u64, latency: u64) -> TraceRecord {
        rec(
            at,
            seq,
            TraceEvent::WormholeDeliver {
                msg,
                src: 0,
                dest: 1,
                latency,
            },
        )
    }

    #[test]
    fn windows_mirror_the_outage_length() {
        let recs = vec![
            deliver(5, 0, 1, 5),
            deliver(8, 1, 2, 6),
            rec(10, 2, TraceEvent::LaneFault { link: 3, switch: 1 }),
            deliver(15, 3, 3, 12),
            rec(20, 4, TraceEvent::LaneRepair { link: 3, switch: 1 }),
            deliver(25, 5, 4, 7),
            deliver(40, 6, 5, 7),
        ];
        let set = reconstruct(&recs);
        let faults = impact(&recs, &set.spans);
        assert_eq!(faults.len(), 1);
        let f = &faults[0];
        assert_eq!((f.link, f.switch), (3, 1));
        assert_eq!(f.fault_at, 10);
        assert_eq!(f.repair_at, Some(20));
        // Outage is 10 cycles, so before = [0, 10), after = [20, 30).
        assert_eq!((f.before.from, f.before.to), (0, 10));
        assert_eq!(f.before.delivered, 2);
        assert!((f.before.mean_latency - 5.5).abs() < 1e-12);
        assert_eq!(f.during.delivered, 1);
        assert!((f.during.mean_latency - 12.0).abs() < 1e-12);
        let after = f.after.unwrap();
        assert_eq!((after.from, after.to), (20, 30));
        assert_eq!(after.delivered, 1);
    }

    #[test]
    fn permanent_fault_has_no_after_window() {
        let recs = vec![
            deliver(5, 0, 1, 5),
            rec(10, 1, TraceEvent::LaneFault { link: 0, switch: 2 }),
            deliver(30, 2, 2, 25),
        ];
        let set = reconstruct(&recs);
        let faults = impact(&recs, &set.spans);
        let f = &faults[0];
        assert!(f.repair_at.is_none());
        assert!(f.after.is_none());
        // During runs to the trace horizon (inclusive of the last cycle).
        assert_eq!((f.during.from, f.during.to), (10, 31));
        assert_eq!(f.during.delivered, 1);
    }

    #[test]
    fn early_fault_before_window_clamps_at_zero_and_reports_its_real_length() {
        // Outage is 17 cycles but only 3 cycles of history exist: the
        // before window must be [0, 3) and say so, not pretend to be
        // 17 cycles long.
        let recs = vec![
            deliver(1, 0, 1, 1),
            deliver(2, 1, 2, 1),
            rec(3, 2, TraceEvent::LaneFault { link: 0, switch: 1 }),
            rec(20, 3, TraceEvent::LaneRepair { link: 0, switch: 1 }),
            deliver(30, 4, 3, 4),
        ];
        let set = reconstruct(&recs);
        let f = &impact(&recs, &set.spans)[0];
        assert_eq!((f.before.from, f.before.to), (0, 3));
        assert_eq!(f.before.len(), 3);
        assert_eq!(f.before.delivered, 2);
        assert!((f.before.rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f.during.len(), 17);
        // The after window is clamped by the trace end (horizon 30, so
        // exclusive bound 31): [20, 31), 11 cycles, not 17.
        assert_eq!(f.after.unwrap().len(), 11);
    }

    #[test]
    fn after_window_stops_at_the_lanes_next_fault() {
        // First outage [10, 20) has length 10, but the same lane fails
        // again at 25: the recovery window is [20, 25), not [20, 30) —
        // the delivery at 27 happens *during the second outage* and must
        // not be credited to the first one's recovery.
        let recs = vec![
            rec(10, 0, TraceEvent::LaneFault { link: 2, switch: 1 }),
            rec(20, 1, TraceEvent::LaneRepair { link: 2, switch: 1 }),
            deliver(22, 2, 1, 3),
            rec(25, 3, TraceEvent::LaneFault { link: 2, switch: 1 }),
            deliver(27, 4, 2, 9),
            rec(40, 5, TraceEvent::LaneRepair { link: 2, switch: 1 }),
            deliver(45, 6, 3, 2),
        ];
        let set = reconstruct(&recs);
        let faults = impact(&recs, &set.spans);
        assert_eq!(faults.len(), 2);
        let first = &faults[0];
        let after = first.after.unwrap();
        assert_eq!((after.from, after.to), (20, 25));
        assert_eq!(after.len(), 5);
        assert_eq!(after.delivered, 1, "delivery at 27 belongs to outage 2");
        assert!((after.rate() - 0.2).abs() < 1e-12);
        // The second outage's recovery window is clamped only by the
        // trace end (horizon 45, so exclusive bound 46), not 40+15.
        let second = &faults[1];
        assert_eq!(second.after.unwrap().to, 46);
    }

    #[test]
    fn other_lane_faults_do_not_clamp_the_after_window() {
        let recs = vec![
            rec(10, 0, TraceEvent::LaneFault { link: 1, switch: 1 }),
            rec(20, 1, TraceEvent::LaneRepair { link: 1, switch: 1 }),
            rec(22, 2, TraceEvent::LaneFault { link: 7, switch: 2 }),
            rec(60, 3, TraceEvent::LaneRepair { link: 7, switch: 2 }),
        ];
        let set = reconstruct(&recs);
        let faults = impact(&recs, &set.spans);
        let after = faults[0].after.unwrap();
        assert_eq!((after.from, after.to), (20, 30));
    }

    #[test]
    fn repeated_faults_each_get_a_window() {
        let recs = vec![
            rec(10, 0, TraceEvent::LaneFault { link: 1, switch: 1 }),
            rec(20, 1, TraceEvent::LaneRepair { link: 1, switch: 1 }),
            rec(50, 2, TraceEvent::LaneFault { link: 1, switch: 1 }),
            rec(55, 3, TraceEvent::LaneRepair { link: 1, switch: 1 }),
        ];
        let set = reconstruct(&recs);
        let faults = impact(&recs, &set.spans);
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].repair_at, Some(20));
        assert_eq!(faults[1].repair_at, Some(55));
    }
}
