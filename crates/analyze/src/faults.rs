//! Fault impact windows.
//!
//! For every [`TraceEvent::LaneFault`] the analyzer measures delivery
//! throughput and latency in three windows: *before* the fault, *during*
//! it (until the matching [`TraceEvent::LaneRepair`], or the end of the
//! trace for permanent faults), and *after* the repair. The before/after
//! windows mirror the outage's own length, so the three numbers are
//! directly comparable rates.

use wavesim_sim::Cycle;
use wavesim_trace::{TraceEvent, TraceRecord};

use crate::spans::MessageSpan;

/// Delivery statistics over one half-open window `[from, to)`.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Window start (inclusive).
    pub from: Cycle,
    /// Window end (exclusive).
    pub to: Cycle,
    /// Messages delivered inside the window.
    pub delivered: u64,
    /// Mean end-to-end latency of those deliveries.
    pub mean_latency: f64,
}

/// One lane fault's before/during/after comparison.
#[derive(Debug, Clone, Copy)]
pub struct FaultImpact {
    /// Faulted lane's physical link.
    pub link: u32,
    /// Faulted lane's wave switch (1-based).
    pub switch: u8,
    /// Cycle the lane failed.
    pub fault_at: Cycle,
    /// Cycle the lane was repaired; `None` for permanent faults.
    pub repair_at: Option<Cycle>,
    /// The outage-length window ending at the fault.
    pub before: PhaseStats,
    /// The outage itself.
    pub during: PhaseStats,
    /// The outage-length window starting at the repair (absent for
    /// permanent faults).
    pub after: Option<PhaseStats>,
}

fn phase(deliveries: &[(Cycle, u64)], from: Cycle, to: Cycle) -> PhaseStats {
    let lo = deliveries.partition_point(|&(at, _)| at < from);
    let hi = deliveries.partition_point(|&(at, _)| at < to);
    let window = &deliveries[lo..hi];
    let delivered = window.len() as u64;
    let mean_latency = if window.is_empty() {
        0.0
    } else {
        window.iter().map(|&(_, l)| l as f64).sum::<f64>() / delivered as f64
    };
    PhaseStats {
        from,
        to,
        delivered,
        mean_latency,
    }
}

/// Builds one [`FaultImpact`] per lane fault in the trace. `spans` are the
/// reconstructed deliveries (already in delivery order).
#[must_use]
pub fn impact(records: &[TraceRecord], spans: &[MessageSpan]) -> Vec<FaultImpact> {
    let horizon = records.last().map_or(0, |r| r.at);
    let deliveries: Vec<(Cycle, u64)> = spans.iter().map(|s| (s.delivered, s.latency())).collect();
    debug_assert!(deliveries.windows(2).all(|w| w[0].0 <= w[1].0));

    let mut out = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        let TraceEvent::LaneFault { link, switch } = rec.ev else {
            continue;
        };
        let repair_at = records[i + 1..].iter().find_map(|r| match r.ev {
            TraceEvent::LaneRepair {
                link: l, switch: s, ..
            } if l == link && s == switch => Some(r.at),
            _ => None,
        });
        // Exclusive bound that still covers deliveries at the last cycle.
        let end = horizon + 1;
        let during_end = repair_at.unwrap_or(end);
        let dur = during_end.saturating_sub(rec.at).max(1);
        out.push(FaultImpact {
            link,
            switch,
            fault_at: rec.at,
            repair_at,
            before: phase(&deliveries, rec.at.saturating_sub(dur), rec.at),
            during: phase(&deliveries, rec.at, during_end),
            after: repair_at.map(|r| phase(&deliveries, r, r.saturating_add(dur).min(end))),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::reconstruct;

    fn rec(at: Cycle, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    fn deliver(at: Cycle, seq: u64, msg: u64, latency: u64) -> TraceRecord {
        rec(
            at,
            seq,
            TraceEvent::WormholeDeliver {
                msg,
                src: 0,
                dest: 1,
                latency,
            },
        )
    }

    #[test]
    fn windows_mirror_the_outage_length() {
        let recs = vec![
            deliver(5, 0, 1, 5),
            deliver(8, 1, 2, 6),
            rec(10, 2, TraceEvent::LaneFault { link: 3, switch: 1 }),
            deliver(15, 3, 3, 12),
            rec(20, 4, TraceEvent::LaneRepair { link: 3, switch: 1 }),
            deliver(25, 5, 4, 7),
            deliver(40, 6, 5, 7),
        ];
        let set = reconstruct(&recs);
        let faults = impact(&recs, &set.spans);
        assert_eq!(faults.len(), 1);
        let f = &faults[0];
        assert_eq!((f.link, f.switch), (3, 1));
        assert_eq!(f.fault_at, 10);
        assert_eq!(f.repair_at, Some(20));
        // Outage is 10 cycles, so before = [0, 10), after = [20, 30).
        assert_eq!((f.before.from, f.before.to), (0, 10));
        assert_eq!(f.before.delivered, 2);
        assert!((f.before.mean_latency - 5.5).abs() < 1e-12);
        assert_eq!(f.during.delivered, 1);
        assert!((f.during.mean_latency - 12.0).abs() < 1e-12);
        let after = f.after.unwrap();
        assert_eq!((after.from, after.to), (20, 30));
        assert_eq!(after.delivered, 1);
    }

    #[test]
    fn permanent_fault_has_no_after_window() {
        let recs = vec![
            deliver(5, 0, 1, 5),
            rec(10, 1, TraceEvent::LaneFault { link: 0, switch: 2 }),
            deliver(30, 2, 2, 25),
        ];
        let set = reconstruct(&recs);
        let faults = impact(&recs, &set.spans);
        let f = &faults[0];
        assert!(f.repair_at.is_none());
        assert!(f.after.is_none());
        // During runs to the trace horizon (inclusive of the last cycle).
        assert_eq!((f.during.from, f.during.to), (10, 31));
        assert_eq!(f.during.delivered, 1);
    }

    #[test]
    fn repeated_faults_each_get_a_window() {
        let recs = vec![
            rec(10, 0, TraceEvent::LaneFault { link: 1, switch: 1 }),
            rec(20, 1, TraceEvent::LaneRepair { link: 1, switch: 1 }),
            rec(50, 2, TraceEvent::LaneFault { link: 1, switch: 1 }),
            rec(55, 3, TraceEvent::LaneRepair { link: 1, switch: 1 }),
        ];
        let set = reconstruct(&recs);
        let faults = impact(&recs, &set.spans);
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].repair_at, Some(20));
        assert_eq!(faults[1].repair_at, Some(55));
    }
}
