//! Per-message span reconstruction.
//!
//! Every delivery event in a trace carries its end-to-end latency, so the
//! message's creation cycle is `delivered_at - latency` even though the
//! trace has no explicit "send" event. Working backwards from each
//! delivery, this module rebuilds a latency waterfall whose segments
//! **partition the end-to-end latency exactly**:
//!
//! * `setup` — cycles spent establishing the circuit this message
//!   triggered (cache miss → probe walk → ack). Zero for cache hits,
//!   wormhole messages, and messages queued behind an existing circuit.
//! * `queue` — cycles the message waited at the source after setup, before
//!   its first flit moved ([`TraceEvent::TransferStart`] /
//!   [`TraceEvent::WormholeInject`]).
//! * `transit` — cycles from first flit movement to delivery.
//!
//! The invariant `setup + queue + transit == latency` holds for every
//! [`MessageSpan`] by construction; the integration suite cross-checks the
//! totals against the simulator's own delivery latencies on a 16×16 run.

use std::collections::{BTreeMap, HashMap};

use wavesim_sim::Cycle;
use wavesim_trace::{TraceEvent, TraceRecord};

/// How a delivered message reached its destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanMode {
    /// Streamed over an established circuit.
    Circuit,
    /// Wormhole under a wormhole-only protocol.
    Wormhole,
    /// Wormhole under a circuit protocol: a failed or declined setup.
    Fallback,
}

impl SpanMode {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SpanMode::Circuit => "circuit",
            SpanMode::Wormhole => "wormhole",
            SpanMode::Fallback => "fallback",
        }
    }
}

/// One delivered message's latency waterfall.
#[derive(Debug, Clone, Copy)]
pub struct MessageSpan {
    /// Message id.
    pub msg: u64,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// The carrying circuit (circuit deliveries only).
    pub circuit: Option<u64>,
    /// Message length in flits (zero if the start event was not traced).
    pub len_flits: u32,
    /// Creation cycle, recovered as `delivered - latency`.
    pub created: Cycle,
    /// Delivery cycle.
    pub delivered: Cycle,
    /// Transport of the delivery.
    pub mode: SpanMode,
    /// Cycles establishing the circuit this message triggered.
    pub setup: u64,
    /// Cycles queued at the source before the first flit moved.
    pub queue: u64,
    /// Cycles from first flit movement to delivery.
    pub transit: u64,
}

impl MessageSpan {
    /// End-to-end latency; always equals `setup + queue + transit`.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.delivered - self.created
    }
}

/// One circuit's lifecycle as seen in the trace (shared by the flow and
/// lane analytics).
#[derive(Debug, Clone, Default)]
pub struct CircuitLog {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Cycle of the first probe launch.
    pub first_launch: Option<Cycle>,
    /// Cycle the setup acknowledgment reached the source.
    pub established: Option<Cycle>,
    /// Cycle every lane was free again.
    pub released: Option<Cycle>,
    /// Probe launches (one per wave switch tried, plus force retries).
    pub launches: u32,
    /// Launches with the Force bit set (CLRP phase two).
    pub force_launches: u32,
    /// Forward probe hops.
    pub hops: u64,
    /// Probe backtracks.
    pub backtracks: u64,
    /// Force-mode parks: victims this circuit's setup had to displace —
    /// the victim-chain depth of the forced establishment.
    pub parks: u32,
    /// Messages that started streaming over this circuit.
    pub transfers: u32,
    /// Establishment failed on every switch.
    pub abandoned: bool,
    /// Destroyed by a dynamic fault.
    pub broken: bool,
}

/// Everything span reconstruction recovers from one record stream.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    /// Delivered messages, in delivery order.
    pub spans: Vec<MessageSpan>,
    /// Circuit lifecycles keyed by circuit id.
    pub circuits: BTreeMap<u64, CircuitLog>,
    /// Messages whose transfer started but did not finish in the trace.
    pub in_flight: u64,
    /// True when the trace carries circuit-protocol events; wormhole
    /// deliveries in such a trace are fallbacks.
    pub circuit_protocol: bool,
}

/// A message between its start event and its delivery.
struct Pending {
    start: Cycle,
    len_flits: u32,
    circuit: Option<u64>,
    /// True when this was the first transfer on its circuit — the message
    /// that triggered (and waited for) the establishment.
    first_on_circuit: bool,
}

/// Builds the three waterfall segments so they sum to `latency` exactly,
/// whatever clamping the raw cycle values needed.
fn segments(
    created: Cycle,
    latency: u64,
    start: Option<&Pending>,
    established: Option<Cycle>,
) -> (u64, u64, u64) {
    let Some(p) = start else {
        return (0, 0, latency);
    };
    let to_start = p.start.saturating_sub(created).min(latency);
    let setup = if p.first_on_circuit {
        established.map_or(0, |e| e.saturating_sub(created).min(to_start))
    } else {
        0
    };
    (setup, to_start - setup, latency - to_start)
}

/// Incremental span reconstruction: feed records one at a time with
/// [`SpanFold::fold`], then [`SpanFold::finish`]. [`reconstruct`] is the
/// batch wrapper, so both paths produce identical results by construction.
#[derive(Default)]
pub struct SpanFold {
    set: SpanSet,
    pending: HashMap<u64, Pending>,
}

impl SpanFold {
    /// An empty fold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record. Records must arrive in sequence order, as every
    /// [`wavesim_trace::TraceSink`] stores them.
    pub fn fold(&mut self, rec: &TraceRecord) {
        let set = &mut self.set;
        let pending = &mut self.pending;
        let at = rec.at;
        match rec.ev {
            TraceEvent::ProbeLaunch {
                circuit,
                src,
                dest,
                force,
                ..
            } => {
                let log = set.circuits.entry(circuit).or_default();
                log.src = src;
                log.dest = dest;
                log.first_launch.get_or_insert(at);
                log.launches += 1;
                if force {
                    log.force_launches += 1;
                }
                set.circuit_protocol = true;
            }
            TraceEvent::ProbeHop { circuit, .. } => {
                set.circuits.entry(circuit).or_default().hops += 1;
            }
            TraceEvent::ProbeBacktrack { circuit, .. } => {
                set.circuits.entry(circuit).or_default().backtracks += 1;
            }
            TraceEvent::ProbePark { circuit, .. } => {
                set.circuits.entry(circuit).or_default().parks += 1;
            }
            TraceEvent::CircuitEstablished {
                circuit, src, dest, ..
            } => {
                let log = set.circuits.entry(circuit).or_default();
                log.src = src;
                log.dest = dest;
                log.established = Some(at);
                set.circuit_protocol = true;
            }
            TraceEvent::CircuitReleased { circuit } => {
                set.circuits.entry(circuit).or_default().released = Some(at);
            }
            TraceEvent::CircuitAbandoned { circuit } => {
                set.circuits.entry(circuit).or_default().abandoned = true;
            }
            TraceEvent::CircuitBroken { circuit, src, dest } => {
                let log = set.circuits.entry(circuit).or_default();
                log.src = src;
                log.dest = dest;
                log.broken = true;
            }
            TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
            | TraceEvent::CacheEvict { .. } => {
                set.circuit_protocol = true;
            }
            TraceEvent::TransferStart {
                circuit,
                msg,
                len_flits,
                ..
            } => {
                let log = set.circuits.entry(circuit).or_default();
                log.transfers += 1;
                pending.insert(
                    msg,
                    Pending {
                        start: at,
                        len_flits,
                        circuit: Some(circuit),
                        first_on_circuit: log.transfers == 1,
                    },
                );
                set.circuit_protocol = true;
            }
            TraceEvent::WormholeInject { msg, len_flits, .. } => {
                pending.insert(
                    msg,
                    Pending {
                        start: at,
                        len_flits,
                        circuit: None,
                        first_on_circuit: false,
                    },
                );
            }
            TraceEvent::CircuitDeliver {
                msg,
                src,
                dest,
                latency,
            }
            | TraceEvent::WormholeDeliver {
                msg,
                src,
                dest,
                latency,
            } => {
                let circuit_mode = matches!(rec.ev, TraceEvent::CircuitDeliver { .. });
                let created = at.saturating_sub(latency);
                let p = pending.remove(&msg);
                let established = p
                    .as_ref()
                    .and_then(|p| p.circuit)
                    .and_then(|c| set.circuits.get(&c))
                    .and_then(|l| l.established);
                let (setup, queue, transit) = segments(created, latency, p.as_ref(), established);
                set.spans.push(MessageSpan {
                    msg,
                    src,
                    dest,
                    circuit: p.as_ref().and_then(|p| p.circuit),
                    len_flits: p.as_ref().map_or(0, |p| p.len_flits),
                    created,
                    delivered: at,
                    mode: if circuit_mode {
                        SpanMode::Circuit
                    } else {
                        SpanMode::Wormhole
                    },
                    setup,
                    queue,
                    transit,
                });
            }
            _ => {}
        }
    }

    /// Seals the fold: counts unfinished transfers and rewrites wormhole
    /// deliveries to fallbacks when the trace carries circuit traffic.
    #[must_use]
    pub fn finish(mut self) -> SpanSet {
        self.set.in_flight = self.pending.len() as u64;
        if self.set.circuit_protocol {
            for s in &mut self.set.spans {
                if s.mode == SpanMode::Wormhole {
                    s.mode = SpanMode::Fallback;
                }
            }
        }
        self.set
    }
}

/// Reconstructs every delivered message's span (and every circuit's
/// lifecycle) from a record stream. Records must be in sequence order, as
/// every [`wavesim_trace::TraceSink`] stores them.
#[must_use]
pub fn reconstruct(records: &[TraceRecord]) -> SpanSet {
    let mut fold = SpanFold::new();
    for rec in records {
        fold.fold(rec);
    }
    fold.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: Cycle, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    /// A miss → probe → establish → transfer → deliver walk, followed by a
    /// cache-hit reuse of the same circuit.
    fn circuit_trace() -> Vec<TraceRecord> {
        vec![
            rec(0, 0, TraceEvent::CacheMiss { node: 0, dest: 3 }),
            rec(
                0,
                1,
                TraceEvent::ProbeLaunch {
                    circuit: 1,
                    src: 0,
                    dest: 3,
                    switch: 1,
                    force: false,
                },
            ),
            rec(
                1,
                2,
                TraceEvent::ProbeHop {
                    circuit: 1,
                    probe: 9,
                    node: 1,
                    link: 0,
                    misroute: false,
                },
            ),
            rec(
                2,
                3,
                TraceEvent::ProbeHop {
                    circuit: 1,
                    probe: 9,
                    node: 3,
                    link: 4,
                    misroute: false,
                },
            ),
            rec(
                3,
                4,
                TraceEvent::ProbeReached {
                    circuit: 1,
                    probe: 9,
                    dest: 3,
                    steps: 2,
                },
            ),
            rec(
                5,
                5,
                TraceEvent::CircuitEstablished {
                    circuit: 1,
                    src: 0,
                    dest: 3,
                    hops: 2,
                },
            ),
            rec(
                6,
                6,
                TraceEvent::TransferStart {
                    circuit: 1,
                    msg: 1,
                    src: 0,
                    dest: 3,
                    len_flits: 24,
                },
            ),
            rec(
                20,
                7,
                TraceEvent::CircuitDeliver {
                    msg: 1,
                    src: 0,
                    dest: 3,
                    latency: 20,
                },
            ),
            rec(
                8,
                8,
                TraceEvent::CacheHit {
                    node: 0,
                    dest: 3,
                    circuit: 1,
                },
            ),
            rec(
                21,
                9,
                TraceEvent::TransferStart {
                    circuit: 1,
                    msg: 2,
                    src: 0,
                    dest: 3,
                    len_flits: 24,
                },
            ),
            rec(
                35,
                10,
                TraceEvent::CircuitDeliver {
                    msg: 2,
                    src: 0,
                    dest: 3,
                    latency: 27,
                },
            ),
        ]
    }

    #[test]
    fn miss_span_charges_setup_then_queue_then_transit() {
        let set = reconstruct(&circuit_trace());
        assert_eq!(set.spans.len(), 2);
        let s = &set.spans[0];
        assert_eq!(s.created, 0);
        assert_eq!((s.setup, s.queue, s.transit), (5, 1, 14));
        assert_eq!(s.mode, SpanMode::Circuit);
        assert_eq!(s.circuit, Some(1));
        assert_eq!(s.len_flits, 24);
    }

    #[test]
    fn hit_span_has_no_setup_segment() {
        let set = reconstruct(&circuit_trace());
        let s = &set.spans[1];
        assert_eq!(s.created, 8);
        assert_eq!((s.setup, s.queue, s.transit), (0, 13, 14));
    }

    #[test]
    fn segments_always_partition_latency() {
        let set = reconstruct(&circuit_trace());
        for s in &set.spans {
            assert_eq!(s.setup + s.queue + s.transit, s.latency(), "{s:?}");
        }
    }

    #[test]
    fn wormhole_only_trace_yields_wormhole_spans() {
        let recs = vec![
            rec(
                2,
                0,
                TraceEvent::WormholeInject {
                    msg: 9,
                    src: 0,
                    dest: 2,
                    len_flits: 16,
                },
            ),
            rec(
                10,
                1,
                TraceEvent::WormholeDeliver {
                    msg: 9,
                    src: 0,
                    dest: 2,
                    latency: 9,
                },
            ),
        ];
        let set = reconstruct(&recs);
        let s = &set.spans[0];
        assert_eq!(s.mode, SpanMode::Wormhole);
        assert_eq!(s.created, 1);
        assert_eq!((s.setup, s.queue, s.transit), (0, 1, 8));
    }

    #[test]
    fn wormhole_delivery_in_a_circuit_trace_is_a_fallback() {
        let mut recs = vec![rec(0, 0, TraceEvent::CacheMiss { node: 0, dest: 2 })];
        recs.push(rec(
            4,
            1,
            TraceEvent::WormholeInject {
                msg: 9,
                src: 0,
                dest: 2,
                len_flits: 16,
            },
        ));
        recs.push(rec(
            12,
            2,
            TraceEvent::WormholeDeliver {
                msg: 9,
                src: 0,
                dest: 2,
                latency: 12,
            },
        ));
        let set = reconstruct(&recs);
        assert_eq!(set.spans[0].mode, SpanMode::Fallback);
        // The failed-setup time shows up as queueing before the inject.
        assert_eq!(set.spans[0].queue, 4);
    }

    #[test]
    fn circuit_log_counts_the_setup_walk() {
        let set = reconstruct(&circuit_trace());
        let log = &set.circuits[&1];
        assert_eq!(log.launches, 1);
        assert_eq!(log.hops, 2);
        assert_eq!(log.established, Some(5));
        assert_eq!(log.transfers, 2);
        assert_eq!((log.src, log.dest), (0, 3));
    }

    #[test]
    fn unfinished_transfers_count_as_in_flight() {
        let mut recs = circuit_trace();
        recs.push(rec(
            40,
            11,
            TraceEvent::TransferStart {
                circuit: 1,
                msg: 3,
                src: 0,
                dest: 3,
                len_flits: 24,
            },
        ));
        let set = reconstruct(&recs);
        assert_eq!(set.in_flight, 1);
        assert_eq!(set.spans.len(), 2);
    }
}
