//! Report rendering: human tables and the machine JSON document.
//!
//! Formatting is deliberately boring and fully deterministic — fixed
//! float precision, total sort orders upstream — so a 2×2 golden report
//! can be byte-compared across `--jobs` settings in the test suite.

use wavesim_bench::table::{f2, f3, pct, Table};
use wavesim_json::Value;
use wavesim_sim::stats::Histogram;
use wavesim_trace::timeseries;

use crate::spans::SpanMode;
use crate::Analysis;

fn flow_key(src: u32, dest: u32) -> String {
    format!("{src}->{dest}")
}

/// Builds the report's tables, in print order.
#[must_use]
pub fn tables(a: &Analysis) -> Vec<Table> {
    let s = &a.summary;
    let mut out = Vec::new();

    let mut t = Table::new("A1", "run summary", &["metric", "value"]);
    let mut kv = |k: &str, v: String| t.push(vec![k.to_string(), v]);
    kv("trace records", s.records.to_string());
    if a.sample_factor != 1 {
        kv(
            "sample factor",
            format!("1/{} (sampled kinds rescaled)", a.sample_factor),
        );
    }
    kv("cycles", format!("{}..{}", s.first_at, s.last_at));
    kv("nodes", a.nodes.to_string());
    kv("delivered", s.delivered.to_string());
    kv("  circuit", s.circuit_msgs.to_string());
    kv("  wormhole", s.wormhole_msgs.to_string());
    kv("  fallback", s.fallback_msgs.to_string());
    kv("in flight at end", s.in_flight.to_string());
    kv("flits delivered", s.flits.to_string());
    kv("mean latency (cycles)", f2(s.mean_latency));
    kv(
        "p50 / p95 / p99",
        format!("{} / {} / {}", f2(s.p50), f2(s.p95), f2(s.p99)),
    );
    out.push(t);

    let mut t = Table::new(
        "A2",
        "latency waterfall by transport",
        &[
            "transport",
            "msgs",
            "setup",
            "queue",
            "transit",
            "p50",
            "p99",
        ],
    );
    for mode in [SpanMode::Circuit, SpanMode::Fallback, SpanMode::Wormhole] {
        let mut hist = Histogram::new();
        let (mut n, mut setup, mut queue, mut transit) = (0u64, 0u64, 0u64, 0u64);
        for sp in a.spans.spans.iter().filter(|sp| sp.mode == mode) {
            hist.record(sp.latency());
            n += 1;
            setup += sp.setup;
            queue += sp.queue;
            transit += sp.transit;
        }
        if n == 0 {
            continue;
        }
        let per = |x: u64| f2(x as f64 / n as f64);
        t.push(vec![
            mode.name().to_string(),
            n.to_string(),
            per(setup),
            per(queue),
            per(transit),
            f2(hist.p50().unwrap_or(0.0)),
            f2(hist.p99().unwrap_or(0.0)),
        ]);
    }
    out.push(t);

    let mut t = Table::new(
        "A3",
        "hottest flows (circuit-cache attribution)",
        &[
            "flow",
            "msgs",
            "mean lat",
            "hit rate",
            "hits",
            "misses",
            "evicted",
            "force",
            "chain",
            "retry wait",
        ],
    );
    for f in a.flows.iter().take(a.top_k) {
        t.push(vec![
            flow_key(f.src, f.dest),
            f.delivered.to_string(),
            f2(f.mean_latency()),
            pct(f.hit_rate()),
            f.cache_hits.to_string(),
            f.cache_misses.to_string(),
            f.evictions_suffered.to_string(),
            f.force_launches.to_string(),
            f.victim_chain.to_string(),
            f.retry_wait.to_string(),
        ]);
    }
    out.push(t);

    let total_held: u64 = a.lanes.iter().map(|l| l.held_cycles).sum();
    let mut t = Table::new(
        "A4",
        "hottest wave lanes (reservation occupancy)",
        &["lane (link,switch)", "reservations", "held cycles", "share"],
    );
    for l in a.lanes.iter().take(a.top_k) {
        let share = if total_held == 0 {
            0.0
        } else {
            l.held_cycles as f64 / total_held as f64
        };
        t.push(vec![
            format!("({},{})", l.link, l.switch),
            l.reservations.to_string(),
            l.held_cycles.to_string(),
            pct(share),
        ]);
    }
    out.push(t);

    if !a.faults.is_empty() {
        let mut t = Table::new(
            "A5",
            "fault impact windows (delivered/cycle @ mean latency, over actual window length)",
            &["lane", "fault", "repair", "before", "during", "after"],
        );
        // Windows clamp at cycle 0, the trace end, and the lane's next
        // fault, so raw counts are not comparable — rates over the
        // window's actual length are.
        let phase = |p: &crate::PhaseStats| {
            format!("{} @ {} ({}cy)", f3(p.rate()), f2(p.mean_latency), p.len())
        };
        for f in &a.faults {
            t.push(vec![
                format!("({},{})", f.link, f.switch),
                f.fault_at.to_string(),
                f.repair_at
                    .map_or_else(|| "-".to_string(), |r| r.to_string()),
                phase(&f.before),
                phase(&f.during),
                f.after.as_ref().map_or_else(|| "-".to_string(), &phase),
            ]);
        }
        out.push(t);
    }
    out
}

/// Renders the whole human-readable report.
#[must_use]
pub fn render(a: &Analysis) -> String {
    tables(a)
        .iter()
        .map(Table::render)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Builds the machine-readable JSON document (`wavesim analyze --json`).
#[must_use]
pub fn to_json(a: &Analysis) -> Value {
    let s = &a.summary;
    let mut summary_rows = vec![
        ("records", s.records.into()),
        ("first_at", s.first_at.into()),
        ("last_at", s.last_at.into()),
        ("nodes", a.nodes.into()),
        ("delivered", s.delivered.into()),
        ("circuit_msgs", s.circuit_msgs.into()),
        ("wormhole_msgs", s.wormhole_msgs.into()),
        ("fallback_msgs", s.fallback_msgs.into()),
        ("in_flight", s.in_flight.into()),
        ("flits", s.flits.into()),
        ("mean_latency", s.mean_latency.into()),
        ("p50", s.p50.into()),
        ("p95", s.p95.into()),
        ("p99", s.p99.into()),
        ("mean_setup", s.mean_setup.into()),
        ("mean_queue", s.mean_queue.into()),
        ("mean_transit", s.mean_transit.into()),
    ];
    if a.sample_factor != 1 {
        summary_rows.insert(1, ("sample_factor", a.sample_factor.into()));
    }
    let summary = Value::obj(summary_rows);
    let flows = Value::Arr(
        a.flows
            .iter()
            .map(|f| {
                Value::obj(vec![
                    ("src", f.src.into()),
                    ("dest", f.dest.into()),
                    ("delivered", f.delivered.into()),
                    ("circuit_msgs", f.circuit_msgs.into()),
                    ("fallback_msgs", f.fallback_msgs.into()),
                    ("wormhole_msgs", f.wormhole_msgs.into()),
                    ("flits", f.flits.into()),
                    ("mean_latency", f.mean_latency().into()),
                    (
                        "mean_setup",
                        (if f.delivered == 0 {
                            0.0
                        } else {
                            f.setup_sum as f64 / f.delivered as f64
                        })
                        .into(),
                    ),
                    (
                        "mean_queue",
                        (if f.delivered == 0 {
                            0.0
                        } else {
                            f.queue_sum as f64 / f.delivered as f64
                        })
                        .into(),
                    ),
                    (
                        "mean_transit",
                        (if f.delivered == 0 {
                            0.0
                        } else {
                            f.transit_sum as f64 / f.delivered as f64
                        })
                        .into(),
                    ),
                    ("cache_hits", f.cache_hits.into()),
                    ("cache_misses", f.cache_misses.into()),
                    ("hit_rate", f.hit_rate().into()),
                    ("evictions_suffered", f.evictions_suffered.into()),
                    ("force_launches", f.force_launches.into()),
                    ("parks", f.parks.into()),
                    ("victim_chain", f.victim_chain.into()),
                    ("retries", f.retries.into()),
                    ("retry_wait", f.retry_wait.into()),
                ])
            })
            .collect(),
    );
    let lanes = Value::Arr(
        a.lanes
            .iter()
            .map(|l| {
                Value::obj(vec![
                    ("link", l.link.into()),
                    ("switch", u32::from(l.switch).into()),
                    ("reservations", l.reservations.into()),
                    ("held_cycles", l.held_cycles.into()),
                ])
            })
            .collect(),
    );
    let phase_json = |p: &crate::PhaseStats| {
        Value::obj(vec![
            ("from", p.from.into()),
            ("to", p.to.into()),
            ("length", p.len().into()),
            ("delivered", p.delivered.into()),
            ("rate", p.rate().into()),
            ("mean_latency", p.mean_latency.into()),
        ])
    };
    let faults = Value::Arr(
        a.faults
            .iter()
            .map(|f| {
                Value::obj(vec![
                    ("link", f.link.into()),
                    ("switch", u32::from(f.switch).into()),
                    ("fault_at", f.fault_at.into()),
                    ("repair_at", f.repair_at.map_or(Value::Null, Value::from)),
                    ("before", phase_json(&f.before)),
                    ("during", phase_json(&f.during)),
                    ("after", f.after.as_ref().map_or(Value::Null, &phase_json)),
                ])
            })
            .collect(),
    );
    Value::obj(vec![
        ("summary", summary),
        ("flows", flows),
        ("lanes", lanes),
        ("faults", faults),
        ("timeseries", timeseries::to_json(&a.series, a.nodes)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalyzeOptions};
    use wavesim_trace::{TraceEvent, TraceRecord};

    fn rec(at: u64, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    fn sample() -> Vec<TraceRecord> {
        vec![
            rec(0, 0, TraceEvent::CacheMiss { node: 0, dest: 3 }),
            rec(
                0,
                1,
                TraceEvent::ProbeLaunch {
                    circuit: 1,
                    src: 0,
                    dest: 3,
                    switch: 1,
                    force: false,
                },
            ),
            rec(
                1,
                2,
                TraceEvent::ProbeHop {
                    circuit: 1,
                    probe: 9,
                    node: 1,
                    link: 0,
                    misroute: false,
                },
            ),
            rec(
                3,
                3,
                TraceEvent::CircuitEstablished {
                    circuit: 1,
                    src: 0,
                    dest: 3,
                    hops: 1,
                },
            ),
            rec(
                4,
                4,
                TraceEvent::TransferStart {
                    circuit: 1,
                    msg: 1,
                    src: 0,
                    dest: 3,
                    len_flits: 8,
                },
            ),
            rec(
                12,
                5,
                TraceEvent::CircuitDeliver {
                    msg: 1,
                    src: 0,
                    dest: 3,
                    latency: 12,
                },
            ),
            rec(20, 6, TraceEvent::LaneFault { link: 0, switch: 1 }),
            rec(25, 7, TraceEvent::LaneRepair { link: 0, switch: 1 }),
            rec(30, 8, TraceEvent::CircuitReleased { circuit: 1 }),
        ]
    }

    #[test]
    fn report_is_deterministic_and_complete() {
        let a = analyze(&sample(), AnalyzeOptions::default());
        let r1 = render(&a);
        let r2 = render(&analyze(&sample(), AnalyzeOptions::default()));
        assert_eq!(r1, r2);
        for id in ["A1", "A2", "A3", "A4", "A5"] {
            assert!(
                r1.contains(&format!("== {id}:")),
                "missing table {id}\n{r1}"
            );
        }
        assert!(r1.contains("0->3"));
    }

    #[test]
    fn sample_factor_is_stamped_only_when_sampled() {
        let unsampled = analyze(&sample(), AnalyzeOptions::default());
        let r = render(&unsampled);
        assert!(
            !r.contains("sample factor"),
            "unsampled report is unchanged"
        );
        assert!(to_json(&unsampled)
            .get("summary")
            .and_then(|s| s.get("sample_factor"))
            .is_none());

        let sampled = analyze(
            &sample(),
            AnalyzeOptions {
                sample_factor: 8,
                ..AnalyzeOptions::default()
            },
        );
        let r = render(&sampled);
        assert!(r.contains("sample factor"), "{r}");
        assert!(r.contains("1/8"), "{r}");
        assert_eq!(
            to_json(&sampled)
                .get("summary")
                .and_then(|s| s.get("sample_factor"))
                .and_then(Value::as_u64),
            Some(8)
        );
        // Sampled-kind counts (cache hits/misses) are rescaled by the
        // factor; exact-kind counts (deliveries) are not.
        let f = &sampled.flows[0];
        assert_eq!(f.cache_misses, 8, "1 sampled miss × factor 8");
        assert_eq!(f.delivered, 1, "deliveries are never sampled");
    }

    #[test]
    fn json_document_carries_every_section() {
        let a = analyze(&sample(), AnalyzeOptions::default());
        let doc = to_json(&a);
        assert_eq!(
            doc.get("summary")
                .and_then(|s| s.get("delivered"))
                .and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            doc.get("flows").and_then(Value::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(
            doc.get("faults").and_then(Value::as_array).map(<[_]>::len),
            Some(1)
        );
        assert!(doc.get("timeseries").and_then(Value::as_array).is_some());
        // Round-trips through the parser.
        let text = doc.pretty();
        assert!(Value::parse(&text).is_ok());
    }
}
