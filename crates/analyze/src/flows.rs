//! Per-flow circuit-cache attribution.
//!
//! A *flow* is a `(source, destination)` pair — the granularity the
//! circuit cache operates at. For each flow this module gathers what the
//! cache did to it (hits, misses, evictions it suffered), what its forced
//! establishments cost others (parks, victim-chain depth), what dynamic
//! faults cost it (retry wait), and how its deliveries broke down across
//! transports.

use std::collections::{BTreeMap, HashMap};

use wavesim_sim::Cycle;
use wavesim_trace::{TraceEvent, TraceRecord};

use crate::spans::{SpanMode, SpanSet};

/// Cache and latency attribution for one `(src, dest)` flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowStats {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dest: u32,
    /// Messages delivered.
    pub delivered: u64,
    /// Deliveries over circuits.
    pub circuit_msgs: u64,
    /// Deliveries that fell back to wormhole under a circuit protocol.
    pub fallback_msgs: u64,
    /// Deliveries by wormhole under a wormhole-only protocol.
    pub wormhole_msgs: u64,
    /// Flits delivered.
    pub flits: u64,
    /// Sum of end-to-end latencies (cycles).
    pub latency_sum: u64,
    /// Sum of setup segments.
    pub setup_sum: u64,
    /// Sum of queue segments.
    pub queue_sum: u64,
    /// Sum of transit segments.
    pub transit_sum: u64,
    /// Circuit-cache hits at the source for this destination.
    pub cache_hits: u64,
    /// Circuit-cache misses.
    pub cache_misses: u64,
    /// Times this flow's cached circuit was evicted to make room.
    pub evictions_suffered: u64,
    /// Probe launches with the Force bit set.
    pub force_launches: u64,
    /// Force-mode parks across this flow's setups.
    pub parks: u64,
    /// Deepest victim chain one forced establishment walked.
    pub victim_chain: u32,
    /// Post-fault re-establishment attempts.
    pub retries: u64,
    /// Cycles between circuit breakage and the retry launch (RetryWait).
    pub retry_wait: u64,
}

impl FlowStats {
    /// Cache hit rate over this flow's lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Mean end-to-end latency of this flow's deliveries.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }
}

fn flow(flows: &mut BTreeMap<(u32, u32), FlowStats>, src: u32, dest: u32) -> &mut FlowStats {
    let e = flows.entry((src, dest)).or_default();
    e.src = src;
    e.dest = dest;
    e
}

/// Incremental flow attribution. [`FlowFold::fold`] consumes the cache /
/// fault-recovery events one record at a time; [`FlowFold::finish`] merges
/// in the delivery sums and setup-side costs from the reconstructed
/// [`SpanSet`] and sorts. Every accumulation is additive per `(src, dest)`
/// key, so the interleaving of the record stream with the span merge does
/// not affect the result — [`attribute`] is the batch wrapper.
#[derive(Default)]
pub struct FlowFold {
    flows: BTreeMap<(u32, u32), FlowStats>,
    broken_at: HashMap<(u32, u32), Cycle>,
}

impl FlowFold {
    /// An empty fold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one record's cache traffic / fault recovery contribution.
    pub fn fold(&mut self, rec: &TraceRecord) {
        match rec.ev {
            TraceEvent::CacheHit { node, dest, .. } => {
                flow(&mut self.flows, node, dest).cache_hits += 1;
            }
            TraceEvent::CacheMiss { node, dest } => {
                flow(&mut self.flows, node, dest).cache_misses += 1;
            }
            TraceEvent::CacheEvict {
                node, victim_dest, ..
            } => {
                flow(&mut self.flows, node, victim_dest).evictions_suffered += 1;
            }
            TraceEvent::CircuitBroken { src, dest, .. } => {
                // Keep the earliest unanswered breakage per flow.
                self.broken_at.entry((src, dest)).or_insert(rec.at);
            }
            TraceEvent::EstablishRetry { src, dest, .. } => {
                let e = flow(&mut self.flows, src, dest);
                e.retries += 1;
                if let Some(t) = self.broken_at.remove(&(src, dest)) {
                    e.retry_wait += rec.at - t;
                }
            }
            _ => {}
        }
    }

    /// Merges the span-derived sums and returns the flows sorted by
    /// traffic (deliveries, then lookups) descending, `(src, dest)`
    /// breaking ties.
    #[must_use]
    pub fn finish(mut self, set: &SpanSet) -> Vec<FlowStats> {
        // Delivery sums from the reconstructed spans.
        for s in &set.spans {
            let e = flow(&mut self.flows, s.src, s.dest);
            e.delivered += 1;
            match s.mode {
                SpanMode::Circuit => e.circuit_msgs += 1,
                SpanMode::Fallback => e.fallback_msgs += 1,
                SpanMode::Wormhole => e.wormhole_msgs += 1,
            }
            e.flits += u64::from(s.len_flits);
            e.latency_sum += s.latency();
            e.setup_sum += s.setup;
            e.queue_sum += s.queue;
            e.transit_sum += s.transit;
        }
        // Setup-side costs from the circuit lifecycles.
        for log in set.circuits.values() {
            let e = flow(&mut self.flows, log.src, log.dest);
            e.force_launches += u64::from(log.force_launches);
            e.parks += u64::from(log.parks);
            e.victim_chain = e.victim_chain.max(log.parks);
        }
        let mut out: Vec<FlowStats> = self.flows.into_values().collect();
        out.sort_by(|a, b| {
            (b.delivered, b.cache_hits + b.cache_misses, a.src, a.dest).cmp(&(
                a.delivered,
                a.cache_hits + a.cache_misses,
                b.src,
                b.dest,
            ))
        });
        out
    }
}

/// Attributes cache behaviour and delivery latency to flows. Returns the
/// flows sorted by traffic (deliveries, then lookups) descending, with the
/// `(src, dest)` key breaking ties so the order is deterministic.
#[must_use]
pub fn attribute(records: &[TraceRecord], set: &SpanSet) -> Vec<FlowStats> {
    let mut fold = FlowFold::new();
    for rec in records {
        fold.fold(rec);
    }
    fold.finish(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::reconstruct;
    use wavesim_trace::TraceRecord;

    fn rec(at: u64, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    #[test]
    fn cache_and_retry_attribution_lands_on_the_right_flow() {
        let recs = vec![
            rec(0, 0, TraceEvent::CacheMiss { node: 0, dest: 3 }),
            rec(
                1,
                1,
                TraceEvent::CacheEvict {
                    node: 0,
                    victim_dest: 5,
                    circuit: 9,
                },
            ),
            rec(
                2,
                2,
                TraceEvent::CacheHit {
                    node: 0,
                    dest: 3,
                    circuit: 1,
                },
            ),
            rec(
                10,
                3,
                TraceEvent::CircuitBroken {
                    circuit: 1,
                    src: 0,
                    dest: 3,
                },
            ),
            rec(
                18,
                4,
                TraceEvent::EstablishRetry {
                    circuit: 2,
                    src: 0,
                    dest: 3,
                    attempt: 1,
                },
            ),
        ];
        let set = reconstruct(&recs);
        let flows = attribute(&recs, &set);
        let f03 = flows.iter().find(|f| (f.src, f.dest) == (0, 3)).unwrap();
        assert_eq!(f03.cache_hits, 1);
        assert_eq!(f03.cache_misses, 1);
        assert_eq!(f03.retries, 1);
        assert_eq!(f03.retry_wait, 8);
        assert!((f03.hit_rate() - 0.5).abs() < 1e-12);
        let f05 = flows.iter().find(|f| (f.src, f.dest) == (0, 5)).unwrap();
        assert_eq!(f05.evictions_suffered, 1);
    }

    #[test]
    fn victim_chain_is_the_max_parks_of_one_setup() {
        let recs = vec![
            rec(
                0,
                0,
                TraceEvent::ProbeLaunch {
                    circuit: 1,
                    src: 2,
                    dest: 7,
                    switch: 1,
                    force: true,
                },
            ),
            rec(
                1,
                1,
                TraceEvent::ProbePark {
                    circuit: 1,
                    probe: 4,
                    node: 3,
                    victim: 8,
                },
            ),
            rec(
                5,
                2,
                TraceEvent::ProbePark {
                    circuit: 1,
                    probe: 4,
                    node: 5,
                    victim: 9,
                },
            ),
        ];
        let set = reconstruct(&recs);
        let flows = attribute(&recs, &set);
        let f = flows.iter().find(|f| (f.src, f.dest) == (2, 7)).unwrap();
        assert_eq!(f.force_launches, 1);
        assert_eq!(f.parks, 2);
        assert_eq!(f.victim_chain, 2);
    }

    #[test]
    fn flows_sort_by_traffic_then_key() {
        let recs = vec![
            rec(0, 0, TraceEvent::CacheMiss { node: 1, dest: 2 }),
            rec(0, 1, TraceEvent::CacheMiss { node: 0, dest: 2 }),
            rec(1, 2, TraceEvent::CacheMiss { node: 0, dest: 2 }),
        ];
        let set = reconstruct(&recs);
        let flows = attribute(&recs, &set);
        assert_eq!((flows[0].src, flows[0].dest), (0, 2));
        assert_eq!((flows[1].src, flows[1].dest), (1, 2));
    }
}
