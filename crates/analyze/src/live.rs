//! Live (streaming) analytics.
//!
//! [`LiveAnalytics`] composes the per-pass folds ([`SpanFold`],
//! [`FlowFold`], [`LaneFold`], [`FaultFold`], [`SeriesFold`]) into one
//! engine that consumes a record stream one [`TraceRecord`] at a time and
//! produces the exact [`Analysis`] the offline [`crate::analyze`] path
//! computes — `analyze` *is* this fold run over a slice, so live and
//! offline results are identical by construction.
//!
//! For running beside a capture, [`live_sink`] wraps the fold in a
//! [`wavesim_trace::stream::StreamSink`] whose "encoder" folds records on
//! the writer thread instead of encoding bytes: the simulation thread only
//! pays the existing chunk-and-send cost, and the fold keeps up off the
//! hot path. After the sink is finished (joining the writer thread),
//! [`take_analysis`] extracts the sealed [`Analysis`].

use std::io;
use std::sync::{Arc, Mutex};

use wavesim_sim::stats::Histogram;
use wavesim_sim::Cycle;
use wavesim_trace::stream::{ChunkEncoder, StreamSink};
use wavesim_trace::TraceRecord;

use crate::faults::FaultFold;
use crate::flows::FlowFold;
use crate::lanes::LaneFold;
use crate::series::SeriesFold;
use crate::spans::SpanFold;
use crate::{Analysis, AnalyzeOptions, SpanMode, Summary};

/// Incremental counterpart of [`crate::analyze`]: fold records as they
/// arrive, then [`LiveAnalytics::finish`] into a full [`Analysis`].
///
/// Memory is bounded by the run's *entities* (messages, circuits, lanes,
/// faults, windows), not by the record count — the bulk event classes
/// (plane ticks, probe hops, cache lookups) fold into counters and never
/// accumulate.
pub struct LiveAnalytics {
    opts: AnalyzeOptions,
    records: u64,
    first_at: Option<Cycle>,
    last_at: Cycle,
    spans: SpanFold,
    flows: FlowFold,
    lanes: LaneFold,
    faults: FaultFold,
    series: SeriesFold,
}

impl LiveAnalytics {
    /// An empty engine with the given knobs.
    #[must_use]
    pub fn new(opts: AnalyzeOptions) -> Self {
        LiveAnalytics {
            opts,
            records: 0,
            first_at: None,
            last_at: 0,
            spans: SpanFold::new(),
            flows: FlowFold::new(),
            lanes: LaneFold::new(),
            faults: FaultFold::new(),
            series: SeriesFold::new(opts.window.max(1), opts.nodes),
        }
    }

    /// Folds one record into every pass. Records must arrive in sequence
    /// order, as every [`wavesim_trace::TraceSink`] stores them.
    pub fn fold(&mut self, rec: &TraceRecord) {
        self.records += 1;
        self.first_at.get_or_insert(rec.at);
        self.last_at = rec.at;
        self.spans.fold(rec);
        self.flows.fold(rec);
        self.lanes.fold(rec);
        self.faults.fold(rec);
        self.series.fold(rec);
    }

    /// Folds a batch of records.
    pub fn fold_many(&mut self, recs: &[TraceRecord]) {
        for rec in recs {
            self.fold(rec);
        }
    }

    /// Records folded so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Seals every pass and assembles the [`Analysis`].
    #[must_use]
    pub fn finish(self) -> Analysis {
        let factor = self.opts.sample_factor.max(1);
        let spans = self.spans.finish();
        let mut flows = self.flows.finish(&spans);
        let mut lanes = self.lanes.finish();
        let faults = self.faults.finish(&spans.spans);
        let (series, nodes) = self.series.finish();

        // A 1-in-N sampled capture keeps every lifecycle event but only
        // one in N of the bulk kinds (cache lookups, probe hops), so the
        // counts derived from those kinds under-report by the sampling
        // factor. Scaling restores unbiased *rate* estimates; the factor
        // is stamped into the report so readers know these are estimates.
        // Multiplying by a constant preserves the sort orders.
        if factor > 1 {
            for f in &mut flows {
                f.cache_hits *= factor;
                f.cache_misses *= factor;
            }
            for l in &mut lanes {
                l.reservations *= factor;
                l.held_cycles *= factor;
            }
        }

        let mut hist = Histogram::new();
        let (mut setup, mut queue, mut transit, mut flits) = (0u64, 0u64, 0u64, 0u64);
        let mut by_mode = [0u64; 3];
        for s in &spans.spans {
            hist.record(s.latency());
            setup += s.setup;
            queue += s.queue;
            transit += s.transit;
            flits += u64::from(s.len_flits);
            by_mode[match s.mode {
                SpanMode::Circuit => 0,
                SpanMode::Wormhole => 1,
                SpanMode::Fallback => 2,
            }] += 1;
        }
        let delivered = spans.spans.len() as u64;
        let per = |x: u64| {
            if delivered == 0 {
                0.0
            } else {
                x as f64 / delivered as f64
            }
        };
        let summary = Summary {
            records: self.records,
            first_at: self.first_at.unwrap_or(0),
            last_at: self.last_at,
            delivered,
            circuit_msgs: by_mode[0],
            wormhole_msgs: by_mode[1],
            fallback_msgs: by_mode[2],
            in_flight: spans.in_flight,
            flits,
            mean_latency: hist.mean(),
            p50: hist.p50().unwrap_or(0.0),
            p95: hist.p95().unwrap_or(0.0),
            p99: hist.p99().unwrap_or(0.0),
            mean_setup: per(setup),
            mean_queue: per(queue),
            mean_transit: per(transit),
        };
        Analysis {
            summary,
            spans,
            flows,
            lanes,
            faults,
            series,
            nodes,
            top_k: self.opts.top_k,
            sample_factor: factor,
        }
    }
}

/// Shared handle to a [`LiveAnalytics`] fold running on a capture writer
/// thread. `None` once [`take_analysis`] has sealed it.
pub type LiveHandle = Arc<Mutex<Option<LiveAnalytics>>>;

/// A [`ChunkEncoder`] that folds records instead of encoding bytes, so
/// the fold runs on the [`StreamSink`] writer thread.
pub struct LiveEncoder {
    handle: LiveHandle,
}

impl ChunkEncoder for LiveEncoder {
    fn encode_chunk(&mut self, recs: &[TraceRecord], _out: &mut Vec<u8>) {
        if let Some(live) = self.handle.lock().expect("live fold poisoned").as_mut() {
            live.fold_many(recs);
        }
    }
}

/// The live-analytics sink: a [`StreamSink`] whose writer thread folds
/// records and discards the (empty) byte output.
pub type LiveSink = StreamSink<io::Sink, LiveEncoder>;

/// Record batch size handed to the fold thread per channel send.
const LIVE_CHUNK: usize = 8192;

/// Arms a live fold: returns the shared handle and the [`TraceSink`]
/// (tee it beside the capture sinks). Finish the sink — joining its
/// writer thread — before calling [`take_analysis`].
///
/// [`TraceSink`]: wavesim_trace::TraceSink
#[must_use]
pub fn live_sink(opts: AnalyzeOptions) -> (LiveHandle, LiveSink) {
    let handle: LiveHandle = Arc::new(Mutex::new(Some(LiveAnalytics::new(opts))));
    let enc = LiveEncoder {
        handle: Arc::clone(&handle),
    };
    let sink = StreamSink::with_encoder(io::sink(), enc, LIVE_CHUNK);
    (handle, sink)
}

/// Seals the fold behind `handle` and returns its [`Analysis`]; `None`
/// if it was already taken. Only call after the owning sink finished,
/// otherwise in-queue records would be silently missing.
#[must_use]
pub fn take_analysis(handle: &LiveHandle) -> Option<Analysis> {
    handle
        .lock()
        .expect("live fold poisoned")
        .take()
        .map(LiveAnalytics::finish)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_trace::TraceSink;

    #[test]
    fn sink_folds_everything_before_take() {
        let recs = vec![
            TraceRecord {
                at: 2,
                seq: 0,
                ev: wavesim_trace::TraceEvent::WormholeInject {
                    msg: 1,
                    src: 0,
                    dest: 3,
                    len_flits: 8,
                },
            },
            TraceRecord {
                at: 9,
                seq: 1,
                ev: wavesim_trace::TraceEvent::WormholeDeliver {
                    msg: 1,
                    src: 0,
                    dest: 3,
                    latency: 8,
                },
            },
        ];
        let (handle, mut sink) = live_sink(AnalyzeOptions::default());
        sink.record_many(&recs);
        TraceSink::finish(&mut sink).expect("finish");
        let live = take_analysis(&handle).expect("first take");
        assert!(take_analysis(&handle).is_none(), "second take is empty");
        let offline = crate::analyze(&recs, AnalyzeOptions::default());
        assert_eq!(live.summary.records, offline.summary.records);
        assert_eq!(live.summary.delivered, 1);
        assert_eq!(live.nodes, offline.nodes);
    }
}
