//! Trace analytics for wave-switching runs.
//!
//! The simulator's tracing layer ([`wavesim_trace`]) captures a pure
//! side-channel record stream — every probe hop, cache lookup, circuit
//! lifecycle step, and delivery, with cycle timestamps. This crate turns
//! that stream into answers:
//!
//! * [`spans`] — per-message latency waterfalls (`setup + queue + transit
//!   == latency`, exactly) and circuit lifecycles.
//! * [`flows`] — circuit-cache attribution per `(src, dest)` flow: hits,
//!   misses, evictions suffered, Force victim-chain depth, post-fault
//!   retry wait.
//! * [`lanes`] — wave-lane reservation occupancy, the "hot lanes" ranking.
//! * [`faults`] — before/during/after delivery windows around each lane
//!   fault.
//! * [`series`] — windowed time series derived offline from the trace,
//!   producing the same rows the live bench sampler emits.
//! * [`report`] — the human [`wavesim_bench::table::Table`] report and the
//!   machine JSON document behind `wavesim analyze`.
//!
//! Everything here is deterministic: the same record stream always yields
//! byte-identical reports, whatever thread count produced the trace.

#![warn(missing_docs)]

pub mod faults;
pub mod flows;
pub mod lanes;
pub mod live;
pub mod report;
pub mod series;
pub mod spans;

use wavesim_sim::Cycle;
use wavesim_trace::timeseries::WindowRow;
use wavesim_trace::TraceRecord;

pub use faults::{FaultImpact, PhaseStats};
pub use flows::FlowStats;
pub use lanes::LaneStats;
pub use live::{live_sink, take_analysis, LiveAnalytics, LiveHandle, LiveSink};
pub use spans::{CircuitLog, MessageSpan, SpanMode, SpanSet};

/// Analyzer knobs.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Time-series window length in cycles.
    pub window: u64,
    /// Rows shown in the flow and hot-lane tables.
    pub top_k: usize,
    /// Node count for throughput normalization; inferred from the trace
    /// when `None`.
    pub nodes: Option<u64>,
    /// 1-in-N bulk-kind sampling factor the capture was taken with
    /// (`--trace-sample N`); counts derived from sampled kinds are scaled
    /// back up by this. `1` (the default) means an unsampled capture.
    pub sample_factor: u64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            window: 1000,
            top_k: 10,
            nodes: None,
            sample_factor: 1,
        }
    }
}

/// Whole-run aggregates over the reconstructed spans.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Records in the trace.
    pub records: u64,
    /// First record's cycle.
    pub first_at: Cycle,
    /// Last record's cycle.
    pub last_at: Cycle,
    /// Messages delivered.
    pub delivered: u64,
    /// Deliveries over circuits.
    pub circuit_msgs: u64,
    /// Wormhole deliveries under a wormhole-only protocol.
    pub wormhole_msgs: u64,
    /// Wormhole fallbacks under a circuit protocol.
    pub fallback_msgs: u64,
    /// Transfers still in flight when the trace ended.
    pub in_flight: u64,
    /// Flits delivered.
    pub flits: u64,
    /// Mean end-to-end latency.
    pub mean_latency: f64,
    /// Median end-to-end latency.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Mean setup segment.
    pub mean_setup: f64,
    /// Mean queue segment.
    pub mean_queue: f64,
    /// Mean transit segment.
    pub mean_transit: f64,
}

/// A full analysis of one captured trace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Whole-run aggregates.
    pub summary: Summary,
    /// Reconstructed spans and circuit lifecycles.
    pub spans: SpanSet,
    /// Per-flow attribution, hottest first.
    pub flows: Vec<FlowStats>,
    /// Lane occupancy, hottest first.
    pub lanes: Vec<LaneStats>,
    /// Fault impact windows, in fault order.
    pub faults: Vec<FaultImpact>,
    /// Derived windowed time series.
    pub series: Vec<WindowRow>,
    /// Node count the series was normalized with.
    pub nodes: u64,
    /// Table row budget carried into the report.
    pub top_k: usize,
    /// Sampling factor the sampled-kind counts were scaled by (1 for an
    /// unsampled capture).
    pub sample_factor: u64,
}

/// Runs every analysis pass over one record stream.
///
/// This is the batch entry point of [`live::LiveAnalytics`]: the records
/// are folded one at a time through the same incremental engine the live
/// plane runs, so an offline analysis of a capture and a live analysis of
/// the same stream are byte-identical by construction.
#[must_use]
pub fn analyze(records: &[TraceRecord], opts: AnalyzeOptions) -> Analysis {
    let mut engine = live::LiveAnalytics::new(opts);
    engine.fold_many(records);
    engine.finish()
}
