//! Trace analytics for wave-switching runs.
//!
//! The simulator's tracing layer ([`wavesim_trace`]) captures a pure
//! side-channel record stream — every probe hop, cache lookup, circuit
//! lifecycle step, and delivery, with cycle timestamps. This crate turns
//! that stream into answers:
//!
//! * [`spans`] — per-message latency waterfalls (`setup + queue + transit
//!   == latency`, exactly) and circuit lifecycles.
//! * [`flows`] — circuit-cache attribution per `(src, dest)` flow: hits,
//!   misses, evictions suffered, Force victim-chain depth, post-fault
//!   retry wait.
//! * [`lanes`] — wave-lane reservation occupancy, the "hot lanes" ranking.
//! * [`faults`] — before/during/after delivery windows around each lane
//!   fault.
//! * [`series`] — windowed time series derived offline from the trace,
//!   producing the same rows the live bench sampler emits.
//! * [`report`] — the human [`wavesim_bench::table::Table`] report and the
//!   machine JSON document behind `wavesim analyze`.
//!
//! Everything here is deterministic: the same record stream always yields
//! byte-identical reports, whatever thread count produced the trace.

#![warn(missing_docs)]

pub mod faults;
pub mod flows;
pub mod lanes;
pub mod report;
pub mod series;
pub mod spans;

use wavesim_sim::stats::Histogram;
use wavesim_sim::Cycle;
use wavesim_trace::timeseries::WindowRow;
use wavesim_trace::TraceRecord;

pub use faults::{FaultImpact, PhaseStats};
pub use flows::FlowStats;
pub use lanes::LaneStats;
pub use spans::{CircuitLog, MessageSpan, SpanMode, SpanSet};

/// Analyzer knobs.
#[derive(Debug, Clone, Copy)]
pub struct AnalyzeOptions {
    /// Time-series window length in cycles.
    pub window: u64,
    /// Rows shown in the flow and hot-lane tables.
    pub top_k: usize,
    /// Node count for throughput normalization; inferred from the trace
    /// when `None`.
    pub nodes: Option<u64>,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            window: 1000,
            top_k: 10,
            nodes: None,
        }
    }
}

/// Whole-run aggregates over the reconstructed spans.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Records in the trace.
    pub records: u64,
    /// First record's cycle.
    pub first_at: Cycle,
    /// Last record's cycle.
    pub last_at: Cycle,
    /// Messages delivered.
    pub delivered: u64,
    /// Deliveries over circuits.
    pub circuit_msgs: u64,
    /// Wormhole deliveries under a wormhole-only protocol.
    pub wormhole_msgs: u64,
    /// Wormhole fallbacks under a circuit protocol.
    pub fallback_msgs: u64,
    /// Transfers still in flight when the trace ended.
    pub in_flight: u64,
    /// Flits delivered.
    pub flits: u64,
    /// Mean end-to-end latency.
    pub mean_latency: f64,
    /// Median end-to-end latency.
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Mean setup segment.
    pub mean_setup: f64,
    /// Mean queue segment.
    pub mean_queue: f64,
    /// Mean transit segment.
    pub mean_transit: f64,
}

/// A full analysis of one captured trace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Whole-run aggregates.
    pub summary: Summary,
    /// Reconstructed spans and circuit lifecycles.
    pub spans: SpanSet,
    /// Per-flow attribution, hottest first.
    pub flows: Vec<FlowStats>,
    /// Lane occupancy, hottest first.
    pub lanes: Vec<LaneStats>,
    /// Fault impact windows, in fault order.
    pub faults: Vec<FaultImpact>,
    /// Derived windowed time series.
    pub series: Vec<WindowRow>,
    /// Node count the series was normalized with.
    pub nodes: u64,
    /// Table row budget carried into the report.
    pub top_k: usize,
}

/// Runs every analysis pass over one record stream.
#[must_use]
pub fn analyze(records: &[TraceRecord], opts: AnalyzeOptions) -> Analysis {
    let spans = spans::reconstruct(records);
    let flows = flows::attribute(records, &spans);
    let lanes = lanes::occupancy(records);
    let faults = faults::impact(records, &spans.spans);
    let (series, nodes) = series::derive(records, opts.window.max(1), opts.nodes);

    let mut hist = Histogram::new();
    let (mut setup, mut queue, mut transit, mut flits) = (0u64, 0u64, 0u64, 0u64);
    let mut by_mode = [0u64; 3];
    for s in &spans.spans {
        hist.record(s.latency());
        setup += s.setup;
        queue += s.queue;
        transit += s.transit;
        flits += u64::from(s.len_flits);
        by_mode[match s.mode {
            SpanMode::Circuit => 0,
            SpanMode::Wormhole => 1,
            SpanMode::Fallback => 2,
        }] += 1;
    }
    let delivered = spans.spans.len() as u64;
    let per = |x: u64| {
        if delivered == 0 {
            0.0
        } else {
            x as f64 / delivered as f64
        }
    };
    let summary = Summary {
        records: records.len() as u64,
        first_at: records.first().map_or(0, |r| r.at),
        last_at: records.last().map_or(0, |r| r.at),
        delivered,
        circuit_msgs: by_mode[0],
        wormhole_msgs: by_mode[1],
        fallback_msgs: by_mode[2],
        in_flight: spans.in_flight,
        flits,
        mean_latency: hist.mean(),
        p50: hist.p50().unwrap_or(0.0),
        p95: hist.p95().unwrap_or(0.0),
        p99: hist.p99().unwrap_or(0.0),
        mean_setup: per(setup),
        mean_queue: per(queue),
        mean_transit: per(transit),
    };
    Analysis {
        summary,
        spans,
        flows,
        lanes,
        faults,
        series,
        nodes,
        top_k: opts.top_k,
    }
}
