//! # wavesim-verify — executable forms of the §4 theorems
//!
//! The paper proves four theorems: CLRP and CARP are deadlock-free
//! (Theorems 1–2) and livelock-free (Theorems 3–4). This crate turns those
//! claims into *checks that run against the simulator*:
//!
//! * **static** — [`wavesim_topology::cdg`] certifies the wormhole
//!   fall-back routing function (re-exported here for convenience): the
//!   Dally–Seitz acyclicity condition for deterministic functions, Duato's
//!   escape condition for adaptive ones;
//! * **runtime deadlock** ([`deadlock`]) — a progress monitor that flags a
//!   busy-but-frozen network, plus wait-for-graph cycle extraction over
//!   the wormhole plane (a cycle under deterministic routing *is* a
//!   deadlock, not just a symptom);
//! * **runtime livelock** ([`livelock`]) — checks every probe respects
//!   the finite step bound implied by the History Store + bounded
//!   misrouting argument of Theorems 3–4, and that runs deliver every
//!   accepted message (the paper's "every message will reach its
//!   destination in finite time");
//! * **invariants** ([`invariants`]) — structural cross-checks between
//!   lanes, circuits, probes, and circuit caches (`WaveNetwork::audit`);
//! * **events** ([`events`]) — detectors that subscribe to the network's
//!   inter-plane event bus and replay the stream into an independent
//!   lifecycle ledger, cross-checked against the registry.
//!
//! The negative controls matter as much as the positive runs: the test
//! suite feeds the detectors a *known-broken* routing function
//! (`NaiveTorusDor`) and asserts they trip.

#![warn(missing_docs)]

pub mod deadlock;
pub mod events;
pub mod invariants;
pub mod livelock;
pub mod progress;

pub use deadlock::{check_fabric, check_wave, DeadlockReport};
pub use events::CircuitLedger;
pub use invariants::audit_wave;
pub use livelock::{check_probe_livelock, wave_measure, LivelockReport, ProgressMeasure};
pub use progress::ProgressMonitor;

// Static checks, re-exported so downstream users need only this crate.
pub use wavesim_topology::cdg::{check_deadlock_freedom, CdgReport, CheckMode};
