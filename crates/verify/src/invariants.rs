//! Structural invariant audits for the protocol plane.
//!
//! Beyond "nothing freezes" (deadlock) and "everything finishes"
//! (livelock), the protocols maintain structural invariants the paper's
//! arguments implicitly rely on. [`audit_wave`] cross-checks them:
//!
//! * every `Ready` circuit holds exactly the lanes of its path, and every
//!   reserved lane is attributable to a live circuit or probe
//!   (`WaveNetwork::audit`);
//! * lane census arithmetic closes: reserved lanes = Σ path lengths of
//!   Ready circuits + Σ reserved prefixes of live probes + lanes of
//!   circuits mid-teardown (checked only at quiescence, where the third
//!   term is zero);
//! * no circuit cache exceeds its register-file capacity.

use wavesim_core::{CircuitStatus, WaveNetwork};

/// Runs every structural audit; returns human-readable violations
/// (empty = consistent). `quiescent` enables the strict census check.
#[must_use]
pub fn audit_wave(net: &WaveNetwork, quiescent: bool) -> Vec<String> {
    let mut problems = net.audit();

    // Cache capacity.
    for node in net.topology().nodes() {
        let c = net.cache(node);
        if c.len() > c.capacity() {
            problems.push(format!(
                "node {node}: cache holds {} > capacity {}",
                c.len(),
                c.capacity()
            ));
        }
    }

    if quiescent {
        let (_, reserved, _) = net.lanes().census();
        let circuit_lanes: usize = net
            .circuits()
            .values()
            .filter(|c| c.status == CircuitStatus::Ready)
            .map(|c| c.path.len())
            .sum();
        let probe_lanes: usize = net.probes().values().map(|p| p.path.len()).sum();
        let tearing: usize = net
            .circuits()
            .values()
            .filter(|c| c.status != CircuitStatus::Ready)
            .count();
        if tearing == 0 && reserved != circuit_lanes + probe_lanes {
            problems.push(format!(
                "lane census mismatch: {reserved} reserved vs {circuit_lanes} circuit + {probe_lanes} probe lanes"
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
    use wavesim_network::Message;
    use wavesim_topology::{NodeId, Topology};

    #[test]
    fn fresh_network_is_consistent() {
        let net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        assert!(audit_wave(&net, true).is_empty());
    }

    #[test]
    fn network_with_live_circuits_is_consistent() {
        let mut net = WaveNetwork::new(
            Topology::mesh(&[5, 5]),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                cache_capacity: 3,
                ..WaveConfig::default()
            },
        );
        let mut id = 0;
        for s in 0..5u32 {
            for off in [7u32, 11, 13] {
                net.send(
                    0,
                    Message::new(id, NodeId(s), NodeId((s + off) % 25), 24, 0),
                );
                id += 1;
            }
        }
        let mut now = 0;
        while net.busy() && now < 500_000 {
            net.tick(now);
            now += 1;
        }
        assert!(!net.busy());
        let problems = audit_wave(&net, true);
        assert!(problems.is_empty(), "{problems:?}");
    }
}
