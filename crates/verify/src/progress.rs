//! Generic stall detection.
//!
//! A deadlocked network is *busy but unchanging*: messages in flight, no
//! counter moving. [`ProgressMonitor`] watches a caller-supplied
//! fingerprint (a hash of every monotone counter in the system) and
//! reports how long it has been frozen. Deadlock-freedom experiments run
//! with a monitor armed and assert it never crosses the threshold.

use wavesim_core::WaveNetwork;
use wavesim_sim::Cycle;

/// Chains values into a single order-sensitive fingerprint.
#[must_use]
pub fn fingerprint(values: &[u64]) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in values {
        acc ^= v;
        acc = acc.wrapping_mul(0x100_0000_01b3);
    }
    acc
}

/// Fingerprint of everything that moves in a [`WaveNetwork`]. The
/// protocol-level components come from the one shared
/// [`crate::ProgressMeasure`] (the same definition the model checker
/// ranks states with); only the fabric- and occupancy-level extras are
/// enumerated here.
#[must_use]
pub fn wave_fingerprint(net: &WaveNetwork) -> u64 {
    let m = crate::livelock::wave_measure(net);
    let s = net.stats();
    let f = net.fabric().stats();
    fingerprint(&[
        m.injected,
        m.delivered,
        m.escaped,
        s.probe_hops,
        s.probe_backtracks,
        s.setups_ok,
        s.setups_failed,
        f.flit_hops,
        f.delivered_flits,
        net.outstanding(),
        net.control_backlog() as u64,
        net.probes().len() as u64,
    ])
}

/// Watches a fingerprint stream for stalls.
#[derive(Debug, Clone)]
pub struct ProgressMonitor {
    threshold: u64,
    last_fp: Option<u64>,
    last_change: Cycle,
}

impl ProgressMonitor {
    /// Flags stalls longer than `threshold` cycles.
    #[must_use]
    pub fn new(threshold: u64) -> Self {
        Self {
            threshold,
            last_fp: None,
            last_change: 0,
        }
    }

    /// Feeds one observation. Returns `Some(stall_age)` when the system
    /// was busy yet unchanged for longer than the threshold.
    pub fn observe(&mut self, now: Cycle, fp: u64, busy: bool) -> Option<u64> {
        if self.last_fp != Some(fp) {
            self.last_fp = Some(fp);
            self.last_change = now;
            return None;
        }
        if !busy {
            self.last_change = now;
            return None;
        }
        let age = now.saturating_sub(self.last_change);
        (age > self.threshold).then_some(age)
    }

    /// Cycles since the fingerprint last changed.
    #[must_use]
    pub fn age(&self, now: Cycle) -> u64 {
        now.saturating_sub(self.last_change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_sensitive() {
        assert_ne!(fingerprint(&[1, 2]), fingerprint(&[2, 1]));
        assert_eq!(fingerprint(&[1, 2]), fingerprint(&[1, 2]));
        assert_ne!(fingerprint(&[]), fingerprint(&[0]));
    }

    #[test]
    fn monitor_flags_frozen_busy_system() {
        let mut m = ProgressMonitor::new(10);
        assert!(m.observe(0, 42, true).is_none());
        for now in 1..=10 {
            assert!(m.observe(now, 42, true).is_none(), "within threshold");
        }
        let stall = m.observe(11, 42, true);
        assert_eq!(stall, Some(11));
    }

    #[test]
    fn monitor_resets_on_change() {
        let mut m = ProgressMonitor::new(5);
        for now in 0..100 {
            // Fingerprint changes every 3 cycles: never stalls.
            assert!(m.observe(now, now / 3, true).is_none());
        }
    }

    #[test]
    fn idle_system_never_stalls() {
        let mut m = ProgressMonitor::new(5);
        for now in 0..100 {
            assert!(m.observe(now, 7, false).is_none());
        }
    }
}
