//! Event-bus observation: detectors that subscribe to the network's
//! inter-plane [`PlaneEvent`] stream instead of reaching into its state.
//!
//! The plane-split router (see `wavesim-core`'s `events` module) routes
//! every cross-plane fact — probe launches, establishments, releases,
//! deliveries — over one bus, and [`WaveNetwork::enable_event_tap`]
//! exposes a recorded copy. [`CircuitLedger`] replays that stream into an
//! independent model of which circuits *should* be alive and how many
//! messages *should* have been delivered, then [`CircuitLedger::check`]
//! cross-validates the ledger against the network's own registry. A
//! divergence means a plane dropped, duplicated, or reordered an event —
//! exactly the class of bug the refactor into planes could introduce and
//! state-based audits cannot see.

use std::collections::HashSet;

use wavesim_core::{CircuitId, PlaneEvent, WaveNetwork};

/// An independent replay of the event stream: circuit lifecycle and
/// delivery accounting, built only from [`PlaneEvent`]s.
#[derive(Debug, Default)]
pub struct CircuitLedger {
    /// Circuits launched and neither abandoned nor released yet.
    live: HashSet<CircuitId>,
    /// Establishment attempts seen (`LaunchProbe` with a new circuit).
    pub launched: u64,
    /// `CircuitEstablished` events seen.
    pub established: u64,
    /// `CircuitReleased` + `AbandonCircuit` events seen.
    pub retired: u64,
    /// Deliveries seen (both transports).
    pub delivered: u64,
    /// Messages (re-)injected into the wormhole fabric.
    pub injected_wormhole: u64,
    /// Forced-release demands observed (`VictimRelease`).
    pub victim_releases: u64,
    /// Circuits destroyed by dynamic faults (`CircuitBroken`). The
    /// teardown they trigger still ends in `CircuitReleased`, so liveness
    /// tracking is unaffected; this only counts the breakage.
    pub broken: u64,
}

impl CircuitLedger {
    /// Empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Circuits the event stream says are alive right now.
    #[must_use]
    pub fn live(&self) -> &HashSet<CircuitId> {
        &self.live
    }

    /// Feeds one batch of tapped events (in emission order) into the
    /// ledger. Call with [`WaveNetwork::take_events`] output every cycle
    /// or every few cycles — only the order within the stream matters.
    pub fn observe(&mut self, events: &[PlaneEvent]) {
        for ev in events {
            match ev {
                PlaneEvent::LaunchProbe { circuit, .. } => {
                    if self.live.insert(*circuit) {
                        self.launched += 1;
                    }
                }
                PlaneEvent::CircuitEstablished { .. } => self.established += 1,
                PlaneEvent::AbandonCircuit { circuit }
                | PlaneEvent::CircuitReleased { circuit } => {
                    if self.live.remove(circuit) {
                        self.retired += 1;
                    }
                }
                PlaneEvent::WormholeDelivered(_) | PlaneEvent::CircuitDelivered(_) => {
                    self.delivered += 1;
                }
                PlaneEvent::InjectWormhole(_) => self.injected_wormhole += 1,
                PlaneEvent::VictimRelease { .. } => self.victim_releases += 1,
                PlaneEvent::CircuitBroken { .. } => self.broken += 1,
                PlaneEvent::ProbeExhausted { .. } | PlaneEvent::ReleaseCircuit { .. } => {}
            }
        }
    }

    /// Cross-validates the ledger against the network's registry. Returns
    /// human-readable divergences (empty = the event stream and the
    /// network state tell the same story). Meaningful at quiescence,
    /// where no lifecycle transition can be mid-flight.
    #[must_use]
    pub fn check(&self, net: &WaveNetwork) -> Vec<String> {
        let mut problems = Vec::new();
        let registry: HashSet<CircuitId> = net.circuits().keys().collect();
        for cid in self.live.difference(&registry) {
            problems.push(format!(
                "{cid:?}: event stream says live, registry disagrees"
            ));
        }
        for cid in registry.difference(&self.live) {
            problems.push(format!(
                "{cid:?}: in the registry but never launched (or already retired) on the bus"
            ));
        }
        let s = net.stats();
        if self.delivered != s.msgs_circuit + s.msgs_wormhole {
            problems.push(format!(
                "delivery mismatch: {} delivery events vs {} + {} counted",
                self.delivered, s.msgs_circuit, s.msgs_wormhole
            ));
        }
        if self.established != s.setups_ok {
            problems.push(format!(
                "establishment mismatch: {} events vs {} setups_ok",
                self.established, s.setups_ok
            ));
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
    use wavesim_network::Message;
    use wavesim_topology::{NodeId, Topology};

    /// Drive a contended CLRP run with the tap armed; the ledger's replay
    /// must agree with the network's own registry and counters.
    #[test]
    fn ledger_agrees_with_registry_after_contended_run() {
        let mut net = WaveNetwork::new(
            Topology::mesh(&[4, 4]),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                cache_capacity: 2,
                ..WaveConfig::default()
            },
        );
        net.enable_event_tap();
        let mut ledger = CircuitLedger::new();
        let mut id = 0;
        for a in 0..16u32 {
            for off in [1u32, 5, 9] {
                let b = (a + off) % 16;
                net.send(0, Message::new(id, NodeId(a), NodeId(b), 32, 0));
                id += 1;
            }
        }
        let mut now = 0;
        while net.busy() && now < 2_000_000 {
            net.tick(now);
            ledger.observe(&net.take_events());
            now += 1;
        }
        assert!(!net.busy());
        let _ = net.drain_deliveries();
        assert_eq!(ledger.delivered, id);
        assert!(ledger.victim_releases > 0, "contention forces releases");
        let problems = ledger.check(&net);
        assert!(problems.is_empty(), "{problems:?}");
    }

    /// An unobserved network diverges from an empty ledger — the check
    /// actually discriminates.
    #[test]
    fn ledger_detects_unobserved_circuits() {
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        net.send(0, Message::new(1, NodeId(0), NodeId(15), 16, 0));
        let mut now = 0;
        while net.busy() && now < 100_000 {
            net.tick(now);
            now += 1;
        }
        let ledger = CircuitLedger::new();
        assert!(!ledger.check(&net).is_empty());
    }
}
