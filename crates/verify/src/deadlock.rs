//! Runtime deadlock detection (Theorems 1–2, executed).
//!
//! Two complementary signals:
//!
//! 1. **Progress age** — the wormhole fabric records the last cycle any
//!    flit moved; a busy fabric whose age exceeds the threshold is frozen.
//! 2. **Wait-for-graph cycle** — the fabric exposes `(held VC →
//!    requested VC)` edges for every blocked head flit. Under
//!    deterministic routing each packet has one requested channel, so a
//!    cycle in this graph is a genuine circular wait: a deadlock by
//!    definition, not merely congestion.
//!
//! A healthy CLRP/CARP run must never produce either signal; the
//! `NaiveTorusDor` negative control must produce both.

use std::collections::{HashMap, HashSet};

use wavesim_core::WaveNetwork;
use wavesim_network::fabric::WaitVc;
use wavesim_network::WormholeFabric;
use wavesim_sim::Cycle;

/// Result of a deadlock check.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// The network was busy yet made no progress for this many cycles.
    pub stall_age: u64,
    /// Flits stuck in the network at check time.
    pub in_flight_flits: u64,
    /// A circular wait among output virtual channels, if one exists.
    pub wait_cycle: Option<Vec<WaitVc>>,
    /// Combined verdict: `true` means a deadlock was detected.
    pub deadlocked: bool,
}

/// Finds a cycle in the output-VC wait-for graph, if any.
#[must_use]
pub fn find_wait_cycle(edges: &[(WaitVc, WaitVc)]) -> Option<Vec<WaitVc>> {
    let mut adj: HashMap<WaitVc, Vec<WaitVc>> = HashMap::new();
    for (a, b) in edges {
        adj.entry(*a).or_default().push(*b);
    }
    let mut done: HashSet<WaitVc> = HashSet::new();
    // Iterative DFS with explicit path for cycle reconstruction.
    for &start in adj.keys() {
        if done.contains(&start) {
            continue;
        }
        let mut path: Vec<WaitVc> = Vec::new();
        let mut on_path: HashSet<WaitVc> = HashSet::new();
        let mut stack: Vec<(WaitVc, usize)> = vec![(start, 0)];
        path.push(start);
        on_path.insert(start);
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            let outs = adj.get(&v).map_or(&[][..], |o| o.as_slice());
            if *idx < outs.len() {
                let w = outs[*idx];
                *idx += 1;
                if on_path.contains(&w) {
                    // Cycle: slice the path from w onward.
                    let pos = path.iter().position(|&x| x == w).expect("on path");
                    return Some(path[pos..].to_vec());
                }
                if !done.contains(&w) {
                    stack.push((w, 0));
                    path.push(w);
                    on_path.insert(w);
                }
            } else {
                stack.pop();
                let popped = path.pop().expect("path mirrors stack");
                on_path.remove(&popped);
                done.insert(popped);
            }
        }
    }
    None
}

/// Checks the wormhole fabric for deadlock at cycle `now`. `threshold` is
/// the no-progress age (in cycles) beyond which a busy fabric counts as
/// frozen; size it well above the worst honest service time (e.g. a few
/// thousand cycles for the topologies used here).
#[must_use]
pub fn check_fabric(fabric: &WormholeFabric, now: Cycle, threshold: u64) -> DeadlockReport {
    let in_flight = fabric.in_flight_flits();
    let stall_age = if in_flight > 0 {
        fabric.progress_age(now)
    } else {
        0
    };
    let frozen = in_flight > 0 && stall_age > threshold;
    let wait_cycle = if frozen {
        find_wait_cycle(&fabric.wait_edges())
    } else {
        None
    };
    DeadlockReport {
        stall_age,
        in_flight_flits: in_flight,
        deadlocked: frozen,
        wait_cycle,
    }
}

/// Checks the full wave-switched network: the wormhole plane's freeze
/// detector plus the protocol-plane invariant audit. The control plane
/// itself cannot silently freeze (every pending action is a scheduled
/// event), so the protocol-plane check is structural.
#[must_use]
pub fn check_wave(net: &WaveNetwork, now: Cycle, threshold: u64) -> DeadlockReport {
    let mut report = check_fabric(net.fabric(), now, threshold);
    // A consistent protocol plane cannot hold the fabric hostage; surface
    // audit violations as a deadlock-adjacent failure.
    if !net.audit().is_empty() {
        report.deadlocked = true;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(find_wait_cycle(&[]).is_none());
    }

    #[test]
    fn chain_has_no_cycle() {
        let e = [((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (3, 0))];
        assert!(find_wait_cycle(&e).is_none());
    }

    #[test]
    fn triangle_is_found() {
        let e = [((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (0, 0))];
        let c = find_wait_cycle(&e).expect("cycle");
        assert_eq!(c.len(), 3);
        // Every consecutive pair must be an edge.
        for i in 0..c.len() {
            let a = c[i];
            let b = c[(i + 1) % c.len()];
            assert!(e.contains(&(a, b)), "({a:?} -> {b:?}) missing");
        }
    }

    #[test]
    fn self_loop_is_found() {
        let e = [((5, 1), (5, 1))];
        let c = find_wait_cycle(&e).expect("self-loop");
        assert_eq!(c, vec![(5, 1)]);
    }

    #[test]
    fn branch_then_cycle_is_found() {
        let e = [
            ((0, 0), (1, 0)),
            ((1, 0), (2, 0)),
            ((1, 0), (3, 0)),
            ((3, 0), (4, 0)),
            ((4, 0), (1, 0)),
        ];
        let c = find_wait_cycle(&e).expect("cycle via branch");
        assert!(c.contains(&(1, 0)));
        assert!(c.contains(&(4, 0)));
    }
}
