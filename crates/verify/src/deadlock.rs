//! Runtime deadlock detection (Theorems 1–2, executed).
//!
//! Two complementary signals:
//!
//! 1. **Progress age** — the wormhole fabric records the last cycle any
//!    flit moved; a busy fabric whose age exceeds the threshold is frozen.
//! 2. **Wait-for-graph cycle** — the fabric exposes `(held VC →
//!    requested VC)` edges for every blocked head flit. Under
//!    deterministic routing each packet has one requested channel, so a
//!    cycle in this graph is a genuine circular wait: a deadlock by
//!    definition, not merely congestion.
//!
//! A healthy CLRP/CARP run must never produce either signal; the
//! `NaiveTorusDor` negative control must produce both.

use wavesim_core::WaveNetwork;
use wavesim_network::fabric::WaitVc;
use wavesim_network::WormholeFabric;
use wavesim_sim::Cycle;

/// Result of a deadlock check.
#[derive(Debug, Clone)]
pub struct DeadlockReport {
    /// The network was busy yet made no progress for this many cycles.
    pub stall_age: u64,
    /// Flits stuck in the network at check time.
    pub in_flight_flits: u64,
    /// A circular wait among output virtual channels, if one exists.
    pub wait_cycle: Option<Vec<WaitVc>>,
    /// Combined verdict: `true` means a deadlock was detected.
    pub deadlocked: bool,
}

/// Finds a cycle in the output-VC wait-for graph, if any.
///
/// The graph arrives as an edge list over sparse `(link, switch)` keys.
/// Vertices are interned into a dense index space (sort + dedup +
/// binary search), the adjacency is packed into CSR form, and the search
/// is a three-color iterative DFS over plain vectors — no hashing
/// anywhere, so the check stays cheap even when the stall monitor calls
/// it on a large saturated fabric.
#[must_use]
pub fn find_wait_cycle(edges: &[(WaitVc, WaitVc)]) -> Option<Vec<WaitVc>> {
    if edges.is_empty() {
        return None;
    }

    // Intern the vertices.
    let mut verts: Vec<WaitVc> = Vec::with_capacity(edges.len() * 2);
    for &(a, b) in edges {
        verts.push(a);
        verts.push(b);
    }
    verts.sort_unstable();
    verts.dedup();
    let id_of = |v: WaitVc| -> u32 { verts.binary_search(&v).expect("interned vertex") as u32 };
    let n = verts.len();

    // Pack the adjacency into CSR form (counting sort by source).
    let mut deg = vec![0u32; n];
    for &(a, _) in edges {
        deg[id_of(a) as usize] += 1;
    }
    let mut start = vec![0u32; n + 1];
    for i in 0..n {
        start[i + 1] = start[i] + deg[i];
    }
    let mut fill = start.clone();
    let mut adj = vec![0u32; edges.len()];
    for &(a, b) in edges {
        let s = id_of(a) as usize;
        adj[fill[s] as usize] = id_of(b);
        fill[s] += 1;
    }

    // Three-color iterative DFS: WHITE unvisited, GRAY on the current
    // path, BLACK exhausted. A GRAY successor closes a cycle.
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    let mut stack: Vec<(u32, u32)> = Vec::new(); // (vertex, next out-edge offset)
    let mut path: Vec<u32> = Vec::new();
    for root in 0..n as u32 {
        if color[root as usize] != WHITE {
            continue;
        }
        color[root as usize] = GRAY;
        stack.push((root, start[root as usize]));
        path.push(root);
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < start[v as usize + 1] {
                let w = adj[*next as usize];
                *next += 1;
                match color[w as usize] {
                    GRAY => {
                        // Cycle: slice the path from w onward.
                        let pos = path.iter().position(|&x| x == w).expect("on path");
                        return Some(path[pos..].iter().map(|&i| verts[i as usize]).collect());
                    }
                    WHITE => {
                        color[w as usize] = GRAY;
                        stack.push((w, start[w as usize]));
                        path.push(w);
                    }
                    _ => {}
                }
            } else {
                stack.pop();
                let popped = path.pop().expect("path mirrors stack");
                color[popped as usize] = BLACK;
            }
        }
    }
    None
}

/// Checks the wormhole fabric for deadlock at cycle `now`. `threshold` is
/// the no-progress age (in cycles) beyond which a busy fabric counts as
/// frozen; size it well above the worst honest service time (e.g. a few
/// thousand cycles for the topologies used here).
#[must_use]
pub fn check_fabric(fabric: &WormholeFabric, now: Cycle, threshold: u64) -> DeadlockReport {
    let in_flight = fabric.in_flight_flits();
    let stall_age = if in_flight > 0 {
        fabric.progress_age(now)
    } else {
        0
    };
    let frozen = in_flight > 0 && stall_age > threshold;
    let wait_cycle = if frozen {
        find_wait_cycle(&fabric.wait_edges())
    } else {
        None
    };
    DeadlockReport {
        stall_age,
        in_flight_flits: in_flight,
        deadlocked: frozen,
        wait_cycle,
    }
}

/// Checks the full wave-switched network: the wormhole plane's freeze
/// detector plus the protocol-plane invariant audit. The control plane
/// itself cannot silently freeze (every pending action is a scheduled
/// event), so the protocol-plane check is structural.
#[must_use]
pub fn check_wave(net: &WaveNetwork, now: Cycle, threshold: u64) -> DeadlockReport {
    let mut report = check_fabric(net.fabric(), now, threshold);
    // A consistent protocol plane cannot hold the fabric hostage; surface
    // audit violations as a deadlock-adjacent failure.
    if !net.audit().is_empty() {
        report.deadlocked = true;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_cycle() {
        assert!(find_wait_cycle(&[]).is_none());
    }

    #[test]
    fn chain_has_no_cycle() {
        let e = [((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (3, 0))];
        assert!(find_wait_cycle(&e).is_none());
    }

    #[test]
    fn triangle_is_found() {
        let e = [((0, 0), (1, 0)), ((1, 0), (2, 0)), ((2, 0), (0, 0))];
        let c = find_wait_cycle(&e).expect("cycle");
        assert_eq!(c.len(), 3);
        // Every consecutive pair must be an edge.
        for i in 0..c.len() {
            let a = c[i];
            let b = c[(i + 1) % c.len()];
            assert!(e.contains(&(a, b)), "({a:?} -> {b:?}) missing");
        }
    }

    #[test]
    fn self_loop_is_found() {
        let e = [((5, 1), (5, 1))];
        let c = find_wait_cycle(&e).expect("self-loop");
        assert_eq!(c, vec![(5, 1)]);
    }

    #[test]
    fn large_ring_with_chords_is_found() {
        // A 512-vertex ring plus forward chords: every cycle uses the
        // wrap edge, and whichever one comes back must be a real walk.
        let n: u32 = 512;
        let mut e: Vec<(WaitVc, WaitVc)> = Vec::new();
        for i in 0..n {
            e.push(((i, 0), ((i + 1) % n, 0)));
            if i + 7 < n {
                e.push(((i, 0), (i + 7, 0)));
            }
        }
        let c = find_wait_cycle(&e).expect("ring cycle");
        for i in 0..c.len() {
            let a = c[i];
            let b = c[(i + 1) % c.len()];
            assert!(e.contains(&(a, b)), "({a:?} -> {b:?}) missing");
        }
    }

    #[test]
    fn layered_dag_has_no_cycle() {
        let mut e: Vec<(WaitVc, WaitVc)> = Vec::new();
        for layer in 0..16u32 {
            for i in 0..8u16 {
                for j in 0..8u16 {
                    e.push(((layer, i), (layer + 1, j)));
                }
            }
        }
        assert!(find_wait_cycle(&e).is_none());
    }

    #[test]
    fn branch_then_cycle_is_found() {
        let e = [
            ((0, 0), (1, 0)),
            ((1, 0), (2, 0)),
            ((1, 0), (3, 0)),
            ((3, 0), (4, 0)),
            ((4, 0), (1, 0)),
        ];
        let c = find_wait_cycle(&e).expect("cycle via branch");
        assert!(c.contains(&(1, 0)));
        assert!(c.contains(&(4, 0)));
    }

    /// Theorems 1–4 must survive the dynamic fault model: a CLRP run
    /// under continuous lane fail/repair churn stays deadlock-free (no
    /// wait cycle, no stall), audits clean at every sample, and still
    /// delivers every message.
    #[test]
    fn clrp_stays_deadlock_free_under_fault_churn() {
        use wavesim_core::{FaultEvent, LaneId, ProtocolKind, WaveConfig};
        use wavesim_network::Message;
        use wavesim_topology::{NodeId, Topology};

        let topo = Topology::mesh(&[5, 5]);
        let mut net = WaveNetwork::new(
            topo.clone(),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                misroutes: 3,
                cache_capacity: 3,
                ..WaveConfig::default()
            },
        );
        // Deterministic churn: every valid link fails and repairs on its
        // own staggered period while traffic flows.
        let links: Vec<_> = topo.links().collect();
        for (i, &link) in links.iter().enumerate() {
            let phase = 200 + (i as u64 * 97) % 1_500;
            for s in 1..=net.config().k {
                let lane = LaneId::new(link, s);
                net.schedule_fault(phase, FaultEvent::Fail(lane)).unwrap();
                net.schedule_fault(phase + 400, FaultEvent::Repair(lane))
                    .unwrap();
                net.schedule_fault(phase + 1_100, FaultEvent::Fail(lane))
                    .unwrap();
                net.schedule_fault(phase + 1_600, FaultEvent::Repair(lane))
                    .unwrap();
            }
        }
        let mut id = 0;
        let mut sent = 0u64;
        for round in 0..12u32 {
            for a in 0..25u32 {
                let b = (a + 3 + round) % 25;
                net.send(
                    u64::from(round) * 150,
                    Message::new(id, NodeId(a), NodeId(b), 48, u64::from(round) * 150),
                );
                id += 1;
                sent += 1;
            }
        }
        let mut now = 0;
        let mut delivered = 0u64;
        while net.busy() && now < 1_000_000 {
            net.tick(now);
            delivered += net.drain_deliveries().len() as u64;
            if now % 64 == 0 {
                let rep = check_wave(&net, now, 20_000);
                assert!(
                    !rep.deadlocked,
                    "deadlock under fault churn at {now}: {rep:?}"
                );
                assert!(rep.wait_cycle.is_none(), "wait cycle at {now}");
            }
            now += 1;
        }
        assert!(!net.busy(), "network failed to drain under churn");
        delivered += net.drain_deliveries().len() as u64;
        assert_eq!(delivered, sent, "messages lost under fault churn");
        assert!(net.audit().is_empty(), "{:?}", net.audit());
        let s = net.stats();
        assert!(s.lane_faults > 0 && s.lane_repairs > 0);
    }
}
