//! Runtime livelock checks (Theorems 3–4, executed).
//!
//! The paper's livelock argument: MB-m misroutes at most `m` times, the
//! History Store prevents re-searching a path, and the number of paths is
//! finite, so every probe either reserves a circuit or returns exhausted
//! in finite time; messages then fall back to minimal (livelock-free)
//! wormhole routing. Executable form:
//!
//! * every probe's step count must stay within
//!   [`wavesim_core::probe::ProbeState::step_bound`] — a bound derived
//!   from "each (node, output) pair is searched at most once";
//! * a finished run must have delivered **every** accepted message
//!   ("guaranteeing that every message will reach its destination in
//!   finite time", §5).

use wavesim_core::probe::ProbeState;
use wavesim_core::WaveNetwork;

/// Result of a livelock check.
#[derive(Debug, Clone, Copy)]
pub struct LivelockReport {
    /// Largest observed per-probe step count.
    pub max_probe_steps: u64,
    /// The theoretical bound for this topology.
    pub bound: u64,
    /// Messages accepted but never delivered at check time.
    pub undelivered: u64,
    /// Verdict: bound respected and (if the run is over) nothing lost.
    pub livelock_free: bool,
}

/// Checks the probe step bound and message completeness. Call after a run
/// has drained (`!net.busy()`); calling mid-run checks only the bound.
#[must_use]
pub fn check_probe_livelock(net: &WaveNetwork) -> LivelockReport {
    let bound = ProbeState::step_bound(net.topology());
    let max = net.max_probe_steps();
    let undelivered = if net.busy() { 0 } else { net.outstanding() };
    LivelockReport {
        max_probe_steps: max,
        bound,
        undelivered,
        livelock_free: max <= bound && undelivered == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
    use wavesim_network::Message;
    use wavesim_topology::{NodeId, Topology};

    #[test]
    fn quiet_network_is_livelock_free() {
        let net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let r = check_probe_livelock(&net);
        assert!(r.livelock_free);
        assert_eq!(r.max_probe_steps, 0);
        assert!(r.bound > 0);
    }

    #[test]
    fn drained_run_reports_complete_delivery() {
        let mut net = WaveNetwork::new(
            Topology::mesh(&[4, 4]),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                ..WaveConfig::default()
            },
        );
        for i in 0..8u64 {
            net.send(0, Message::new(i, NodeId(i as u32), NodeId(15), 16, 0));
        }
        let mut now = 0;
        while net.busy() && now < 200_000 {
            net.tick(now);
            now += 1;
        }
        assert!(!net.busy());
        let r = check_probe_livelock(&net);
        assert!(r.livelock_free, "{r:?}");
        assert!(r.max_probe_steps > 0, "probes did walk");
        assert!(r.max_probe_steps <= r.bound);
    }
}
