//! Runtime livelock checks (Theorems 3–4, executed).
//!
//! The paper's livelock argument: MB-m misroutes at most `m` times, the
//! History Store prevents re-searching a path, and the number of paths is
//! finite, so every probe either reserves a circuit or returns exhausted
//! in finite time; messages then fall back to minimal (livelock-free)
//! wormhole routing. Executable form:
//!
//! * every probe's step count must stay within
//!   [`wavesim_core::probe::ProbeState::step_bound`] — a bound derived
//!   from "each (node, output) pair is searched at most once";
//! * a finished run must have delivered **every** accepted message
//!   ("guaranteeing that every message will reach its destination in
//!   finite time", §5).

use wavesim_core::probe::ProbeState;
use wavesim_core::WaveNetwork;

/// The progress measure shared by the runtime detector and the offline
/// model checker (`wavesim-model`) — **one** definition of "the protocol
/// made progress", so the two can never drift apart.
///
/// Every component is nondecreasing over a run (they are counts of
/// one-way events), which is the property both users rely on:
///
/// * the runtime detector calls a network live only while the measure
///   keeps growing between observations;
/// * the model checker's lasso search exploits that any cycle in the
///   reachable state graph must keep the measure constant, so livelocks
///   hide entirely inside one rank layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressMeasure {
    /// Messages accepted into the protocol layer.
    pub injected: u64,
    /// Messages delivered (circuit or wormhole).
    pub delivered: u64,
    /// One-way escapes: establishments abandoned to the wormhole plane,
    /// circuits torn down for good, retry budget consumed, fault events
    /// absorbed — progress in the "giving up is also progress" sense of
    /// Theorems 3–4.
    pub escaped: u64,
}

impl ProgressMeasure {
    /// Collapses the components into one monotone rank. Deliveries weigh
    /// most, then escapes, then injections; the packing only needs to be
    /// monotone in each component, which `saturating` arithmetic keeps
    /// true even on absurd inputs.
    #[must_use]
    pub fn rank(&self) -> u64 {
        self.delivered
            .saturating_mul(1 << 40)
            .saturating_add(self.escaped.saturating_mul(1 << 20))
            .saturating_add(self.injected)
    }

    /// True when `self` is strictly ahead of `earlier` — the network
    /// moved between two observations.
    #[must_use]
    pub fn advanced_since(&self, earlier: &ProgressMeasure) -> bool {
        self.rank() > earlier.rank()
    }
}

/// Reads the measure off a live network — the runtime side of the shared
/// definition (the model checker computes the same components from its
/// abstract states).
#[must_use]
pub fn wave_measure(net: &WaveNetwork) -> ProgressMeasure {
    let s = net.stats();
    ProgressMeasure {
        injected: s.msgs_sent,
        delivered: s.msgs_circuit + s.msgs_wormhole,
        escaped: s.wormhole_fallbacks
            + s.teardowns
            + s.establish_retries
            + s.lane_faults
            + s.lane_repairs,
    }
}

/// Result of a livelock check.
#[derive(Debug, Clone, Copy)]
pub struct LivelockReport {
    /// Largest observed per-probe step count.
    pub max_probe_steps: u64,
    /// The theoretical bound for this topology.
    pub bound: u64,
    /// Messages accepted but never delivered at check time.
    pub undelivered: u64,
    /// The shared progress measure at check time.
    pub measure: ProgressMeasure,
    /// Verdict: bound respected and (if the run is over) nothing lost.
    pub livelock_free: bool,
}

/// Checks the probe step bound and message completeness. Call after a run
/// has drained (`!net.busy()`); calling mid-run checks only the bound.
#[must_use]
pub fn check_probe_livelock(net: &WaveNetwork) -> LivelockReport {
    let bound = ProbeState::step_bound(net.topology());
    let max = net.max_probe_steps();
    let measure = wave_measure(net);
    let undelivered = if net.busy() {
        0
    } else {
        measure.injected - measure.delivered
    };
    LivelockReport {
        max_probe_steps: max,
        bound,
        undelivered,
        measure,
        livelock_free: max <= bound && undelivered == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_core::{ProtocolKind, WaveConfig, WaveNetwork};
    use wavesim_network::Message;
    use wavesim_topology::{NodeId, Topology};

    #[test]
    fn quiet_network_is_livelock_free() {
        let net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let r = check_probe_livelock(&net);
        assert!(r.livelock_free);
        assert_eq!(r.max_probe_steps, 0);
        assert!(r.bound > 0);
    }

    #[test]
    fn drained_run_reports_complete_delivery() {
        let mut net = WaveNetwork::new(
            Topology::mesh(&[4, 4]),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                ..WaveConfig::default()
            },
        );
        for i in 0..8u64 {
            net.send(0, Message::new(i, NodeId(i as u32), NodeId(15), 16, 0));
        }
        let mut now = 0;
        while net.busy() && now < 200_000 {
            net.tick(now);
            now += 1;
        }
        assert!(!net.busy());
        let r = check_probe_livelock(&net);
        assert!(r.livelock_free, "{r:?}");
        assert!(r.max_probe_steps > 0, "probes did walk");
        assert!(r.max_probe_steps <= r.bound);
    }
}
