//! Prometheus-style text metrics exposition.
//!
//! [`MetricsPage`] renders the simulator's `wavesim-sim` instruments —
//! counters, gauges, and the power-of-two [`Histogram`] — in the
//! Prometheus text exposition format (`# HELP` / `# TYPE` headers,
//! cumulative `le` buckets, `_sum` / `_count` series). The page is a plain
//! builder: callers append metrics in the order they should appear and the
//! output is exactly that order — deterministic, diffable, scrape-able.
//!
//! Histograms are exported from [`Histogram::nonzero_buckets`], so the
//! bucket boundaries are the instrument's own power-of-two bounds; `_sum`
//! is reconstructed as `mean × count` (exact for the integral cycle
//! samples the simulator records, up to f64 precision).

use wavesim_sim::stats::Histogram;

fn sanitize(name: &str) -> String {
    // Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label *value* per the exposition format: `\`, `"`, and
/// newline become `\\`, `\"`, and `\n`.
fn escape_label(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
}

/// Escapes `# HELP` / comment text: `\` and newline only — quotes are
/// legal in help text, but a raw newline would terminate the line and
/// leave the remainder as garbage the scraper rejects.
fn escape_help(out: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
}

fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x.is_infinite() {
        (if x > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Builder for one Prometheus text exposition page.
#[derive(Debug, Clone, Default)]
pub struct MetricsPage {
    out: String,
}

impl MetricsPage {
    /// An empty page.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        escape_help(&mut self.out, help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Appends a free-form `# <text>` comment line (page-level headers).
    /// Backslashes and newlines are escaped so the comment stays one line.
    pub fn comment(&mut self, text: &str) {
        self.out.push_str("# ");
        escape_help(&mut self.out, text);
        self.out.push('\n');
    }

    /// Appends a gauge with string labels, e.g. the `wavesim_run_info`
    /// identity gauge that makes an exported page self-describing. Label
    /// values have `\` and `"` escaped per the exposition format.
    pub fn gauge_labeled(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: f64) {
        let name = sanitize(name);
        self.header(&name, help, "gauge");
        self.out.push_str(&name);
        self.out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                self.out.push(',');
            }
            self.out.push_str(&sanitize(k));
            self.out.push_str("=\"");
            escape_label(&mut self.out, v);
            self.out.push('"');
        }
        self.out.push_str(&format!("}} {}\n", fmt_f64(value)));
    }

    /// Appends a monotonic counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        let name = sanitize(name);
        self.header(&name, help, "counter");
        self.out.push_str(&format!("{name} {value}\n"));
    }

    /// Appends a gauge with a floating-point value.
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        let name = sanitize(name);
        self.header(&name, help, "gauge");
        self.out.push_str(&format!("{name} {}\n", fmt_f64(value)));
    }

    /// Appends a histogram: cumulative `le` buckets from the instrument's
    /// own power-of-two bounds, a `+Inf` bucket, `_sum` (mean × count) and
    /// `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        let name = sanitize(name);
        self.header(&name, help, "histogram");
        let mut cumulative = 0u64;
        for (_, hi, count) in h.nonzero_buckets() {
            cumulative += count;
            if hi == u64::MAX {
                continue; // folded into +Inf below
            }
            self.out
                .push_str(&format!("{name}_bucket{{le=\"{hi}\"}} {cumulative}\n"));
        }
        self.out
            .push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        // Samples are integral cycles, so the true sum is an integer; snap
        // away the Welford-mean rounding noise.
        let sum = h.mean() * h.count() as f64;
        let sum = if (sum - sum.round()).abs() < 1e-6 {
            sum.round()
        } else {
            sum
        };
        self.out.push_str(&format!("{name}_sum {}\n", fmt_f64(sum)));
        self.out.push_str(&format!("{name}_count {}\n", h.count()));
        // Bucket-interpolated percentiles, so readers get the headline
        // quantiles without re-deriving them from the bucket dump.
        self.gauge_f64(
            &format!("{name}_p50"),
            "Bucket-interpolated 50th percentile.",
            h.p50().unwrap_or(0.0),
        );
        self.gauge_f64(
            &format!("{name}_p95"),
            "Bucket-interpolated 95th percentile.",
            h.p95().unwrap_or(0.0),
        );
        self.gauge_f64(
            &format!("{name}_p99"),
            "Bucket-interpolated 99th percentile.",
            h.p99().unwrap_or(0.0),
        );
    }

    /// The rendered exposition text.
    #[must_use]
    pub fn render(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_format() {
        let mut page = MetricsPage::new();
        page.counter("wavesim_messages_sent_total", "Messages injected.", 42);
        page.gauge_f64("wavesim_avg_latency_cycles", "Mean latency.", 17.5);
        let text = page.render();
        assert!(text.contains("# HELP wavesim_messages_sent_total Messages injected.\n"));
        assert!(text.contains("# TYPE wavesim_messages_sent_total counter\n"));
        assert!(text.contains("\nwavesim_messages_sent_total 42\n") || text.starts_with("# HELP"));
        assert!(text.contains("wavesim_messages_sent_total 42\n"));
        assert!(text.contains("# TYPE wavesim_avg_latency_cycles gauge\n"));
        assert!(text.contains("wavesim_avg_latency_cycles 17.5\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut h = Histogram::new();
        for x in [1u64, 1, 2, 3, 10, 100] {
            h.record(x);
        }
        let mut page = MetricsPage::new();
        page.histogram("wavesim_latency_cycles", "Latency histogram.", &h);
        let text = page.render();
        // Bucket {0,1} holds 2 samples; {2,3} two more (cumulative 4);
        // {8..15} one more (5); {64..127} the last (6).
        assert!(text.contains("wavesim_latency_cycles_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("wavesim_latency_cycles_bucket{le=\"3\"} 4\n"));
        assert!(text.contains("wavesim_latency_cycles_bucket{le=\"15\"} 5\n"));
        assert!(text.contains("wavesim_latency_cycles_bucket{le=\"127\"} 6\n"));
        assert!(text.contains("wavesim_latency_cycles_bucket{le=\"+Inf\"} 6\n"));
        assert!(text.contains("wavesim_latency_cycles_count 6\n"));
        assert!(text.contains("wavesim_latency_cycles_sum 117\n"));
        assert!(text.contains("# TYPE wavesim_latency_cycles_p50 gauge\n"));
        assert!(text.contains("wavesim_latency_cycles_p99 "));
    }

    #[test]
    fn labeled_gauge_and_comment() {
        let mut page = MetricsPage::new();
        page.comment("wavesim run export");
        page.gauge_labeled(
            "wavesim_run_info",
            "Run identity.",
            &[
                ("protocol", "clrp".to_string()),
                ("topology", "16x16 \"mesh\"".to_string()),
            ],
            1.0,
        );
        let text = page.render();
        assert!(text.starts_with("# wavesim run export\n"));
        assert!(text.contains("# TYPE wavesim_run_info gauge\n"));
        assert!(text
            .contains("wavesim_run_info{protocol=\"clrp\",topology=\"16x16 \\\"mesh\\\"\"} 1\n"));
    }

    /// Inverse of [`escape_label`], for the round-trip test below.
    fn unescape_label(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        let mut chars = v.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                Some('n') => out.push('\n'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        }
        out
    }

    #[test]
    fn label_escaping_round_trips() {
        let nasty = "a\\b \"quoted\"\nnext \\n literal";
        let mut page = MetricsPage::new();
        page.gauge_labeled(
            "wavesim_run_info",
            "Run identity.",
            &[("label", nasty.to_string())],
            1.0,
        );
        let text = page.render();
        // Every line must stay a single line: no raw newline may survive
        // inside the label value.
        let data_line = text
            .lines()
            .find(|l| l.starts_with("wavesim_run_info{"))
            .expect("gauge line present");
        let start = data_line.find("label=\"").expect("label present") + "label=\"".len();
        let end = data_line.rfind('"').expect("closing quote");
        assert_eq!(unescape_label(&data_line[start..end]), nasty);
    }

    #[test]
    fn help_and_comment_text_is_escaped() {
        let mut page = MetricsPage::new();
        page.comment("line one\nline two \\ slash");
        page.counter("wavesim_total", "multi\nline help", 3);
        let text = page.render();
        assert!(text.contains("# line one\\nline two \\\\ slash\n"));
        assert!(text.contains("# HELP wavesim_total multi\\nline help\n"));
        // Page parses line-by-line: each line is either a comment or
        // `name value` — the embedded newlines must not create orphans.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "orphan line: {line:?}"
            );
        }
    }

    #[test]
    fn empty_histogram_still_well_formed() {
        let mut page = MetricsPage::new();
        page.histogram("wavesim_empty", "Nothing recorded.", &Histogram::new());
        let text = page.render();
        assert!(text.contains("wavesim_empty_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("wavesim_empty_sum 0\n"));
        assert!(text.contains("wavesim_empty_count 0\n"));
    }

    #[test]
    fn bad_names_are_sanitized() {
        let mut page = MetricsPage::new();
        page.counter("2fast×furious", "Sanitized.", 1);
        let text = page.render();
        assert!(text.contains("_fast_furious 1\n"));
    }
}
