//! # wavesim-trace — the flight-recorder observability subsystem
//!
//! A fast simulator is only as debuggable as its event record: when a CLRP
//! probe backtracks forever or the wormhole plane freezes, the interesting
//! part is the *order of events leading into the stall*, which counters
//! cannot reconstruct. This crate provides always-on, low-overhead
//! structured tracing for the whole workspace:
//!
//! * [`TraceEvent`] / [`TraceRecord`] — a typed, `Copy` vocabulary of
//!   everything the wave router does: probe lifecycles (launch → hop →
//!   backtrack → park → establish/abort), circuit-cache hits and
//!   evictions, wormhole packet injection→delivery spans, circuit
//!   transfers, and per-plane tick boundaries;
//! * [`TraceSink`] — the consumer interface, with [`NullSink`] (drops
//!   everything; the compiled-in default costs one branch per emit
//!   point), [`recorder::FlightRecorder`] (fixed-capacity ring buffer,
//!   allocation-free in steady state) and [`recorder::VecSink`]
//!   (unbounded, for tests and goldens);
//! * [`TraceBuf`] / [`TraceHub`] — the plumbing the instrumented planes
//!   use: each plane stages records in its own [`TraceBuf`] (one branch
//!   when disarmed) and the composition root's [`TraceHub`] stamps a
//!   global sequence number and forwards to the installed sink;
//! * [`perfetto`] — Chrome/Perfetto `trace_event` JSON export (one track
//!   per router and plane) plus a serde-less validator;
//! * [`metrics`] — Prometheus-style text exposition built on the
//!   `wavesim-sim` instruments;
//! * [`postmortem`] — the stall watchdog's dump format: last-N recorder
//!   entries plus the wait-for graph, bundled as one JSON document.
//!
//! The crate deliberately depends only on `wavesim-sim` (for [`Cycle`]
//! and the histogram) and `wavesim-json`: identifiers cross the API as
//! raw integers so `wavesim-core` can depend on this crate without a
//! cycle.

#![warn(missing_docs)]

pub mod columnar;
pub mod metrics;
pub mod perfetto;
pub mod postmortem;
pub mod recorder;
pub mod stream;
pub mod timeseries;

pub use columnar::{read_columnar, ColumnarBuf, ColumnarReader};
pub use recorder::{FlightRecorder, VecSink};
pub use stream::{read_trace_file, ColumnarSink, JsonlSink, TraceFormat, TraceReader};
pub use timeseries::{WindowRow, WindowSeries};

use wavesim_sim::Cycle;

/// A plane of the wave router, as seen by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlaneId {
    /// The `S0` wormhole fabric.
    Data,
    /// Probes, acks, teardowns (the PCS control network).
    Control,
    /// Circuit caches, protocol engines, windowed transfers.
    Circuit,
}

impl PlaneId {
    /// Stable display name (also the Perfetto process name).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlaneId::Data => "wormhole plane",
            PlaneId::Control => "control plane",
            PlaneId::Circuit => "circuit plane",
        }
    }

    /// Stable Perfetto process id of the plane's track group.
    #[must_use]
    pub fn pid(self) -> u64 {
        match self {
            PlaneId::Data => 1,
            PlaneId::Control => 2,
            PlaneId::Circuit => 3,
        }
    }
}

/// One observed fact about the simulation.
///
/// Identifiers are raw integers (`CircuitId.0`, `ProbeId.0`, `MessageId.0`,
/// `NodeId.0`) so this crate sits *below* `wavesim-core` in the dependency
/// graph; the emit points convert typed ids at the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A plane did work this cycle (tick boundary marker).
    PlaneTick {
        /// The plane that ran.
        plane: PlaneId,
    },
    /// A probe left its source to search one wave switch.
    ProbeLaunch {
        /// Circuit the probe works for.
        circuit: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// Wave switch searched (1-based).
        switch: u8,
        /// Whether the Force bit is set (CLRP phase two).
        force: bool,
    },
    /// A probe reserved a lane and moved forward one hop.
    ProbeHop {
        /// Circuit the probe works for.
        circuit: u64,
        /// The probe.
        probe: u64,
        /// Node the probe arrived at.
        node: u32,
        /// Physical link of the lane the hop reserved (the wave switch is
        /// the one named by the probe's `ProbeLaunch`). Together they name
        /// the reserved lane, which is what lane-occupancy analytics key on.
        link: u32,
        /// Whether this hop spent misroute budget.
        misroute: bool,
    },
    /// A probe released its last lane and stepped back one hop.
    ProbeBacktrack {
        /// Circuit the probe works for.
        circuit: u64,
        /// The probe.
        probe: u64,
        /// Node the probe backtracked to.
        node: u32,
    },
    /// A force-mode probe parked on a lane and requested a victim release.
    ProbePark {
        /// Circuit the probe works for.
        circuit: u64,
        /// The probe.
        probe: u64,
        /// Node the probe is blocked at.
        node: u32,
        /// Circuit selected as the victim.
        victim: u64,
    },
    /// A probe reached the destination (path reserved; ack walk starts).
    ProbeReached {
        /// Circuit the probe works for.
        circuit: u64,
        /// The probe.
        probe: u64,
        /// Destination node.
        dest: u32,
        /// Control steps the probe took (hops + backtracks).
        steps: u64,
    },
    /// A probe backtracked all the way to its source: switch exhausted.
    ProbeExhausted {
        /// Circuit whose attempt failed.
        circuit: u64,
        /// Source node.
        src: u32,
        /// Switch whose search space is exhausted.
        switch: u8,
        /// Whether the exhausted probe had the Force bit set.
        force: bool,
    },
    /// The path-setup acknowledgment reached the source: circuit ready.
    CircuitEstablished {
        /// The established circuit.
        circuit: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// Path length in hops.
        hops: u32,
    },
    /// Teardown (or probe unwind) finished; every lane is free again.
    CircuitReleased {
        /// The fully released circuit.
        circuit: u64,
    },
    /// Establishment failed on every switch; the circuit id retires.
    CircuitAbandoned {
        /// The abandoned circuit.
        circuit: u64,
    },
    /// A forced release was requested for an established circuit.
    ForcedRelease {
        /// Circuit to release.
        circuit: u64,
        /// The circuit's source node.
        src: u32,
    },
    /// A send found a Ready circuit in the source's cache.
    CacheHit {
        /// Node whose cache was consulted.
        node: u32,
        /// Destination looked up.
        dest: u32,
        /// The circuit that will carry the message.
        circuit: u64,
    },
    /// A send found no usable cache entry.
    CacheMiss {
        /// Node whose cache was consulted.
        node: u32,
        /// Destination looked up.
        dest: u32,
    },
    /// A full cache evicted an entry to make room.
    CacheEvict {
        /// Node whose cache evicted.
        node: u32,
        /// Destination of the evicted entry.
        victim_dest: u32,
        /// Circuit of the evicted entry.
        circuit: u64,
    },
    /// A message started streaming over an established circuit.
    TransferStart {
        /// The carrying circuit.
        circuit: u64,
        /// The message.
        msg: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// Message length in flits.
        len_flits: u32,
    },
    /// A message entered the wormhole fabric.
    WormholeInject {
        /// The message.
        msg: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// Message length in flits.
        len_flits: u32,
    },
    /// A wormhole message reached its destination.
    WormholeDeliver {
        /// The message.
        msg: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// A circuit transfer reached its destination.
    CircuitDeliver {
        /// The message.
        msg: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// A wave lane became faulty (static injection or dynamic fail event).
    LaneFault {
        /// The lane's physical link.
        link: u32,
        /// The lane's wave switch (1-based).
        switch: u8,
    },
    /// A faulty wave lane returned to service (dynamic repair event).
    LaneRepair {
        /// The lane's physical link.
        link: u32,
        /// The lane's wave switch (1-based).
        switch: u8,
    },
    /// A dynamic fault destroyed a circuit; its teardown started.
    CircuitBroken {
        /// The destroyed circuit.
        circuit: u64,
        /// The circuit's source node.
        src: u32,
        /// The circuit's destination node.
        dest: u32,
    },
    /// A post-fault re-establishment attempt launched (backoff expired).
    EstablishRetry {
        /// The fresh circuit id of the retry attempt.
        circuit: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dest: u32,
        /// Which retry this is (1-based, bounded by the retry budget).
        attempt: u8,
    },
    /// A run watchdog rule fired (progress SLO violated; see
    /// `wavesim-bench`'s watchdog for the rule numbering).
    WatchdogTrip {
        /// Which rule fired (stable small integer, see the watchdog docs).
        rule: u8,
        /// The observed value that violated the rule.
        value: u64,
        /// The rule's configured threshold.
        limit: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the event kind (post-mortem JSON `type`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PlaneTick { .. } => "plane_tick",
            TraceEvent::ProbeLaunch { .. } => "probe_launch",
            TraceEvent::ProbeHop { .. } => "probe_hop",
            TraceEvent::ProbeBacktrack { .. } => "probe_backtrack",
            TraceEvent::ProbePark { .. } => "probe_park",
            TraceEvent::ProbeReached { .. } => "probe_reached",
            TraceEvent::ProbeExhausted { .. } => "probe_exhausted",
            TraceEvent::CircuitEstablished { .. } => "circuit_established",
            TraceEvent::CircuitReleased { .. } => "circuit_released",
            TraceEvent::CircuitAbandoned { .. } => "circuit_abandoned",
            TraceEvent::ForcedRelease { .. } => "forced_release",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::TransferStart { .. } => "transfer_start",
            TraceEvent::WormholeInject { .. } => "wormhole_inject",
            TraceEvent::WormholeDeliver { .. } => "wormhole_deliver",
            TraceEvent::CircuitDeliver { .. } => "circuit_deliver",
            TraceEvent::LaneFault { .. } => "lane_fault",
            TraceEvent::LaneRepair { .. } => "lane_repair",
            TraceEvent::CircuitBroken { .. } => "circuit_broken",
            TraceEvent::EstablishRetry { .. } => "establish_retry",
            TraceEvent::WatchdogTrip { .. } => "watchdog_trip",
        }
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation cycle the event happened at.
    pub at: Cycle,
    /// Global sequence number: a total order over one network's records,
    /// stamped by the [`TraceHub`] as records reach the sink.
    pub seq: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// Consumer of trace records.
///
/// `record` sits on the simulation hot path: implementations must not
/// allocate in steady state (the ring buffer pre-allocates; the null sink
/// does nothing).
pub trait TraceSink {
    /// Accepts one record.
    fn record(&mut self, rec: TraceRecord);

    /// Accepts a batch of records in order. The [`TraceHub`] hands its
    /// pending buffer over through this, so one virtual call amortizes
    /// over thousands of records; sinks with a bulk fast path (the
    /// streaming sinks, [`recorder::VecSink`]) override it.
    fn record_many(&mut self, recs: &[TraceRecord]) {
        for rec in recs {
            self.record(*rec);
        }
    }

    /// The records the sink retained, oldest first. Exporters and the
    /// post-mortem dump read this; sinks that retain nothing return empty.
    fn snapshot(&self) -> Vec<TraceRecord> {
        Vec::new()
    }

    /// Records offered but no longer retained (ring-buffer overwrites).
    fn dropped(&self) -> u64 {
        0
    }

    /// Total records offered to the sink.
    fn total(&self) -> u64 {
        0
    }

    /// Flushes any buffered state to the sink's backing store. Called once
    /// when the traced run ends; streaming sinks (see [`stream::JsonlSink`])
    /// drain their chunk queue and flush the writer here. In-memory sinks
    /// keep the default no-op.
    fn finish(&mut self) -> Result<(), String> {
        Ok(())
    }
}

/// A sink that drops everything: the "tracing compiled in but off" case
/// the overhead budget is measured against.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: TraceRecord) {}
}

/// Events a [`TraceBuf`] pre-allocates for when armed (a plane's worst
/// single-dispatch burst stays well under this on the benched fabrics).
const STAGED_CAPACITY: usize = 4096;

/// Records the [`TraceHub`] accumulates before one `record_many` hand-off
/// to the sink. Batching keeps the per-record hot-path cost to a bounds
/// check + 24-byte copy; the dyn-dispatch and sink bookkeeping amortize
/// across the batch.
const PENDING_FLUSH: usize = 4096;

/// Per-plane staging buffer for intra-plane emit points.
///
/// Planes cannot reach the network-level [`TraceHub`] directly (they are
/// independent engines), so they stage records here and the composition
/// root absorbs them into the hub after every dispatch. A disarmed buffer
/// ignores emits — the instrumented planes pay exactly one predictable
/// branch per potential record, which is what keeps the `NullSink` bench
/// delta inside the < 3 % budget.
///
/// Events are staged as full [`TraceRecord`]s with a placeholder sequence
/// number, so [`TraceHub::absorb`] stamps sequences in place and moves
/// the batch with one bulk copy instead of re-building each record.
#[derive(Debug, Default)]
pub struct TraceBuf {
    armed: bool,
    staged: Vec<TraceRecord>,
}

impl TraceBuf {
    /// A disarmed, empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when emits are being recorded.
    #[inline]
    #[must_use]
    pub fn armed(&self) -> bool {
        self.armed
    }

    /// Starts recording emits. Pre-sizes the staging vector so the first
    /// traced cycles never grow it mid-dispatch.
    pub fn arm(&mut self) {
        self.armed = true;
        if self.staged.capacity() < STAGED_CAPACITY {
            self.staged.reserve(STAGED_CAPACITY - self.staged.len());
        }
    }

    /// Stops recording and discards anything staged.
    pub fn disarm(&mut self) {
        self.armed = false;
        self.staged.clear();
    }

    /// Stages one event (no-op while disarmed). The staging vector keeps
    /// its capacity across absorptions, so steady state allocates nothing.
    #[inline]
    pub fn emit(&mut self, at: Cycle, ev: TraceEvent) {
        if self.armed {
            self.staged.push(TraceRecord { at, seq: 0, ev });
        }
    }

    /// Number of staged events (test observation).
    #[must_use]
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }
}

/// The per-network trace hub: owns the installed sink, stamps global
/// sequence numbers, and absorbs the planes' staging buffers.
///
/// Stamped records accumulate in a pending batch and reach the sink
/// through [`TraceSink::record_many`] — every `PENDING_FLUSH` records,
/// and unconditionally in [`TraceHub::take`] / [`TraceHub::flush`] — so
/// the per-record cost on the simulation thread is a plain `Vec` push,
/// not a virtual call.
#[derive(Default)]
pub struct TraceHub {
    sink: Option<Box<dyn TraceSink>>,
    seq: u64,
    pending: Vec<TraceRecord>,
}

impl TraceHub {
    /// A hub with no sink installed (all emits disabled).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// True when a sink is installed.
    #[inline]
    #[must_use]
    pub fn armed(&self) -> bool {
        self.sink.is_some()
    }

    /// Installs `sink` and restarts the sequence counter.
    pub fn install(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
        self.seq = 0;
        self.pending.reserve(PENDING_FLUSH);
    }

    /// Removes and returns the installed sink (pending records are
    /// flushed to it first), if any.
    pub fn take(&mut self) -> Option<Box<dyn TraceSink>> {
        self.flush();
        self.sink.take()
    }

    /// Read access to the installed sink (peek at a live recorder).
    /// Flushes pending records first so the view is current.
    pub fn sink(&mut self) -> Option<&dyn TraceSink> {
        self.flush();
        self.sink.as_deref()
    }

    /// Hands the pending batch to the sink. Called automatically at the
    /// batch threshold and from [`TraceHub::take`]; callers only need it
    /// when inspecting the sink mid-run through other means.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            if !self.pending.is_empty() {
                sink.record_many(&self.pending);
                self.pending.clear();
            }
        }
    }

    /// Forwards one event to the sink (no-op when none is installed).
    #[inline]
    pub fn emit(&mut self, at: Cycle, ev: TraceEvent) {
        if self.sink.is_some() {
            let seq = self.seq;
            self.seq += 1;
            self.pending.push(TraceRecord { at, seq, ev });
            if self.pending.len() >= PENDING_FLUSH {
                self.flush();
            }
        }
    }

    /// Drains a plane's staging buffer into the sink, stamping sequence
    /// numbers in staging order: one in-place pass over the staged batch
    /// plus one bulk copy into the pending buffer.
    #[inline]
    pub fn absorb(&mut self, buf: &mut TraceBuf) {
        if buf.staged.is_empty() {
            return;
        }
        if self.sink.is_some() {
            let base = self.seq;
            for (i, rec) in buf.staged.iter_mut().enumerate() {
                rec.seq = base + i as u64;
            }
            self.seq = base + buf.staged.len() as u64;
            self.pending.extend_from_slice(&buf.staged);
            buf.staged.clear();
            if self.pending.len() >= PENDING_FLUSH {
                self.flush();
            }
        } else {
            buf.staged.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_buf_ignores_emits() {
        let mut buf = TraceBuf::new();
        buf.emit(3, TraceEvent::CacheMiss { node: 0, dest: 1 });
        assert_eq!(buf.staged_len(), 0);
        buf.arm();
        buf.emit(4, TraceEvent::CacheMiss { node: 0, dest: 1 });
        assert_eq!(buf.staged_len(), 1);
        buf.disarm();
        assert_eq!(buf.staged_len(), 0);
    }

    #[test]
    fn hub_stamps_sequence_in_order() {
        let mut hub = TraceHub::new();
        assert!(!hub.armed());
        hub.install(Box::new(VecSink::new()));
        hub.emit(
            10,
            TraceEvent::PlaneTick {
                plane: PlaneId::Data,
            },
        );
        let mut buf = TraceBuf::new();
        buf.arm();
        buf.emit(10, TraceEvent::CacheMiss { node: 2, dest: 7 });
        buf.emit(
            11,
            TraceEvent::CacheHit {
                node: 2,
                dest: 7,
                circuit: 1,
            },
        );
        hub.absorb(&mut buf);
        assert_eq!(buf.staged_len(), 0);
        let sink = hub.take().expect("installed");
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].seq, 1);
        assert_eq!(recs[2].seq, 2);
        assert_eq!(recs[2].at, 11);
        assert!(hub.take().is_none());
    }

    #[test]
    fn absorb_without_sink_discards() {
        let mut hub = TraceHub::new();
        let mut buf = TraceBuf::new();
        buf.arm();
        buf.emit(0, TraceEvent::CircuitReleased { circuit: 5 });
        hub.absorb(&mut buf);
        assert_eq!(buf.staged_len(), 0);
    }

    #[test]
    fn null_sink_retains_nothing() {
        let mut s = NullSink;
        s.record(TraceRecord {
            at: 0,
            seq: 0,
            ev: TraceEvent::CircuitReleased { circuit: 1 },
        });
        assert!(s.snapshot().is_empty());
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.total(), 0);
    }
}
