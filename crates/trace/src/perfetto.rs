//! Chrome/Perfetto `trace_event` JSON export.
//!
//! The exporter turns a [`TraceRecord`] stream into the JSON object
//! format consumed by `ui.perfetto.dev` and `chrome://tracing`:
//! `{"traceEvents": [...]}` with one *process* per plane
//! ([`PlaneId::pid`]) and one *thread* (track) per router. Long-lived
//! activities become async-nestable span pairs (`ph: "b"` / `ph: "e"`,
//! matched by category + id):
//!
//! | category   | span                                          |
//! |------------|-----------------------------------------------|
//! | `packet`   | wormhole injection → delivery (id `m<msg>`)   |
//! | `transfer` | circuit transfer start → delivery (id `m<msg>`) |
//! | `setup`    | probe launch → reached/exhausted (id `c<circuit>`) |
//! | `circuit`  | established → released (id `c<circuit>`)      |
//!
//! Point events (hops, backtracks, parks, cache activity) become thread-
//! scoped instants. Timestamps map one simulated cycle to one microsecond.
//! [`TraceEvent::PlaneTick`] records are recorder context only and are not
//! exported (they would dominate the file one instant per plane-cycle).
//!
//! A ring-buffer snapshot may have lost the opening (or will never see the
//! closing) half of a span: the exporter drops orphan ends and closes
//! still-open spans at the trace horizon, so the output is always balanced
//! — [`validate`] checks exactly that, giving CI a serde-less schema gate.

use std::collections::HashMap;

use wavesim_json::Value;

use crate::{PlaneId, TraceEvent, TraceRecord};

/// Open-span bookkeeping key: (category, async id).
type SpanKey = (&'static str, String);
/// Open-span bookkeeping payload: (depth, pid, tid, name).
type OpenSlot = (u64, u64, u64, String);

/// One span/instant mapping decision for a record.
enum Shape {
    /// Async span begin: (cat, id, pid, tid, name, args).
    Begin(
        &'static str,
        String,
        u64,
        u64,
        String,
        Vec<(&'static str, Value)>,
    ),
    /// Async span end.
    End(
        &'static str,
        String,
        u64,
        u64,
        String,
        Vec<(&'static str, Value)>,
    ),
    /// Thread-scoped instant.
    Instant(u64, u64, String, Vec<(&'static str, Value)>),
    /// Not exported.
    Skip,
}

fn shape_of(ev: &TraceEvent) -> Shape {
    let n = |x: u32| u64::from(x);
    match *ev {
        TraceEvent::PlaneTick { .. } => Shape::Skip,
        TraceEvent::WormholeInject {
            msg,
            src,
            dest,
            len_flits,
        } => Shape::Begin(
            "packet",
            format!("m{msg}"),
            PlaneId::Data.pid(),
            n(src),
            format!("msg {msg}"),
            vec![
                ("src", n(src).into()),
                ("dest", n(dest).into()),
                ("len_flits", u64::from(len_flits).into()),
            ],
        ),
        TraceEvent::WormholeDeliver {
            msg,
            src,
            dest,
            latency,
        } => Shape::End(
            "packet",
            format!("m{msg}"),
            PlaneId::Data.pid(),
            n(src),
            format!("msg {msg}"),
            vec![("dest", n(dest).into()), ("latency", latency.into())],
        ),
        TraceEvent::TransferStart {
            circuit,
            msg,
            src,
            dest,
            len_flits,
        } => Shape::Begin(
            "transfer",
            format!("m{msg}"),
            PlaneId::Circuit.pid(),
            n(src),
            format!("msg {msg}"),
            vec![
                ("circuit", circuit.into()),
                ("dest", n(dest).into()),
                ("len_flits", u64::from(len_flits).into()),
            ],
        ),
        TraceEvent::CircuitDeliver {
            msg,
            src,
            dest,
            latency,
        } => Shape::End(
            "transfer",
            format!("m{msg}"),
            PlaneId::Circuit.pid(),
            n(src),
            format!("msg {msg}"),
            vec![("dest", n(dest).into()), ("latency", latency.into())],
        ),
        TraceEvent::ProbeLaunch {
            circuit,
            src,
            dest,
            switch,
            force,
        } => Shape::Begin(
            "setup",
            format!("c{circuit}"),
            PlaneId::Control.pid(),
            n(src),
            format!("setup c{circuit}"),
            vec![
                ("dest", n(dest).into()),
                ("switch", u64::from(switch).into()),
                ("force", force.into()),
            ],
        ),
        TraceEvent::ProbeReached {
            circuit,
            probe,
            dest,
            steps,
        } => Shape::End(
            "setup",
            format!("c{circuit}"),
            PlaneId::Control.pid(),
            n(dest),
            format!("setup c{circuit}"),
            vec![("probe", probe.into()), ("steps", steps.into())],
        ),
        TraceEvent::ProbeExhausted {
            circuit,
            src,
            switch,
            force,
        } => Shape::End(
            "setup",
            format!("c{circuit}"),
            PlaneId::Control.pid(),
            n(src),
            format!("setup c{circuit}"),
            vec![
                ("switch", u64::from(switch).into()),
                ("force", force.into()),
                ("exhausted", true.into()),
            ],
        ),
        TraceEvent::CircuitEstablished {
            circuit,
            src,
            dest,
            hops,
        } => Shape::Begin(
            "circuit",
            format!("c{circuit}"),
            PlaneId::Circuit.pid(),
            n(src),
            format!("c{circuit}"),
            vec![("dest", n(dest).into()), ("hops", u64::from(hops).into())],
        ),
        TraceEvent::CircuitReleased { circuit } => Shape::End(
            "circuit",
            format!("c{circuit}"),
            PlaneId::Circuit.pid(),
            0,
            format!("c{circuit}"),
            Vec::new(),
        ),
        TraceEvent::ProbeHop {
            circuit,
            probe,
            node,
            link,
            misroute,
        } => Shape::Instant(
            PlaneId::Control.pid(),
            n(node),
            format!("hop c{circuit}"),
            vec![
                ("probe", probe.into()),
                ("link", link.into()),
                ("misroute", misroute.into()),
            ],
        ),
        TraceEvent::ProbeBacktrack {
            circuit,
            probe,
            node,
        } => Shape::Instant(
            PlaneId::Control.pid(),
            n(node),
            format!("backtrack c{circuit}"),
            vec![("probe", probe.into())],
        ),
        TraceEvent::ProbePark {
            circuit,
            probe,
            node,
            victim,
        } => Shape::Instant(
            PlaneId::Control.pid(),
            n(node),
            format!("park c{circuit}"),
            vec![("probe", probe.into()), ("victim", victim.into())],
        ),
        TraceEvent::CircuitAbandoned { circuit } => Shape::Instant(
            PlaneId::Circuit.pid(),
            0,
            format!("abandon c{circuit}"),
            Vec::new(),
        ),
        TraceEvent::ForcedRelease { circuit, src } => Shape::Instant(
            PlaneId::Circuit.pid(),
            n(src),
            format!("forced release c{circuit}"),
            Vec::new(),
        ),
        TraceEvent::CacheHit {
            node,
            dest,
            circuit,
        } => Shape::Instant(
            PlaneId::Circuit.pid(),
            n(node),
            "cache hit".to_string(),
            vec![("dest", n(dest).into()), ("circuit", circuit.into())],
        ),
        TraceEvent::CacheMiss { node, dest } => Shape::Instant(
            PlaneId::Circuit.pid(),
            n(node),
            "cache miss".to_string(),
            vec![("dest", n(dest).into())],
        ),
        TraceEvent::CacheEvict {
            node,
            victim_dest,
            circuit,
        } => Shape::Instant(
            PlaneId::Circuit.pid(),
            n(node),
            "cache evict".to_string(),
            vec![
                ("victim_dest", n(victim_dest).into()),
                ("circuit", circuit.into()),
            ],
        ),
        TraceEvent::LaneFault { link, switch } => Shape::Instant(
            PlaneId::Control.pid(),
            n(link),
            format!("lane fault s{switch}"),
            vec![
                ("link", n(link).into()),
                ("switch", u64::from(switch).into()),
            ],
        ),
        TraceEvent::LaneRepair { link, switch } => Shape::Instant(
            PlaneId::Control.pid(),
            n(link),
            format!("lane repair s{switch}"),
            vec![
                ("link", n(link).into()),
                ("switch", u64::from(switch).into()),
            ],
        ),
        TraceEvent::CircuitBroken { circuit, src, dest } => Shape::Instant(
            PlaneId::Circuit.pid(),
            n(src),
            format!("broken c{circuit}"),
            vec![("dest", n(dest).into())],
        ),
        TraceEvent::EstablishRetry {
            circuit,
            src,
            dest,
            attempt,
        } => Shape::Instant(
            PlaneId::Circuit.pid(),
            n(src),
            format!("retry c{circuit}"),
            vec![
                ("dest", n(dest).into()),
                ("attempt", u64::from(attempt).into()),
            ],
        ),
        TraceEvent::WatchdogTrip { rule, value, limit } => Shape::Instant(
            PlaneId::Control.pid(),
            0,
            format!("watchdog r{rule}"),
            vec![("value", value.into()), ("limit", limit.into())],
        ),
    }
}

fn event_json(
    ph: &str,
    ts: u64,
    pid: u64,
    tid: u64,
    name: &str,
    cat_id: Option<(&str, &str)>,
    args: Vec<(&'static str, Value)>,
) -> Value {
    let mut pairs: Vec<(&str, Value)> = vec![
        ("ph", ph.into()),
        ("ts", ts.into()),
        ("pid", pid.into()),
        ("tid", tid.into()),
        ("name", name.into()),
    ];
    if let Some((cat, id)) = cat_id {
        pairs.push(("cat", cat.into()));
        pairs.push(("id", id.into()));
    }
    if ph == "i" {
        pairs.push(("s", "t".into()));
    }
    if !args.is_empty() {
        pairs.push(("args", Value::obj(args)));
    }
    Value::obj(pairs)
}

/// Exports `records` as a Chrome/Perfetto `trace_event` JSON document.
///
/// One simulated cycle maps to one microsecond of trace time. The output
/// is deterministic in the input (no maps are iterated) and always
/// span-balanced: orphan ends are dropped and unclosed spans are closed at
/// the trace horizon.
#[must_use]
pub fn export(records: &[TraceRecord]) -> Value {
    export_with_counters(records, Vec::new())
}

/// [`export`], plus pre-built counter-track events (`ph: "C"`) appended
/// after the event stream — the windowed time-series sampler renders its
/// per-window metrics this way so traces open with overlay graphs (see
/// [`crate::timeseries::perfetto_counters`]). Counter events live under a
/// dedicated pid-0 "run metrics" process.
#[must_use]
pub fn export_with_counters(records: &[TraceRecord], counters: Vec<Value>) -> Value {
    let mut events: Vec<Value> = Vec::new();
    // (pid, tid) pairs seen, for thread_name metadata; pids seen, for
    // process_name metadata.
    let mut threads: Vec<(u64, u64)> = Vec::new();
    let mut pids: Vec<u64> = Vec::new();
    // Open span depth per (cat, id); (begin pid, tid, name) retained so a
    // horizon close can reuse them.
    let mut open: HashMap<SpanKey, OpenSlot> = HashMap::new();
    let horizon = records.iter().map(|r| r.at).max().unwrap_or(0);

    for rec in records {
        match shape_of(&rec.ev) {
            Shape::Skip => continue,
            Shape::Begin(cat, id, pid, tid, name, args) => {
                threads.push((pid, tid));
                pids.push(pid);
                let slot = open
                    .entry((cat, id.clone()))
                    .or_insert((0, pid, tid, name.clone()));
                slot.0 += 1;
                events.push(event_json(
                    "b",
                    rec.at,
                    pid,
                    tid,
                    &name,
                    Some((cat, &id)),
                    args,
                ));
            }
            Shape::End(cat, id, pid, tid, name, args) => {
                // Orphan end (the ring dropped the begin): skip to stay
                // balanced.
                let Some(slot) = open.get_mut(&(cat, id.clone())) else {
                    continue;
                };
                if slot.0 == 0 {
                    continue;
                }
                slot.0 -= 1;
                threads.push((pid, tid));
                pids.push(pid);
                events.push(event_json(
                    "e",
                    rec.at,
                    pid,
                    tid,
                    &name,
                    Some((cat, &id)),
                    args,
                ));
            }
            Shape::Instant(pid, tid, name, args) => {
                threads.push((pid, tid));
                pids.push(pid);
                events.push(event_json("i", rec.at, pid, tid, &name, None, args));
            }
        }
    }

    // Close spans still open at the horizon (in-flight at snapshot time),
    // deterministically ordered.
    let mut dangling: Vec<(SpanKey, OpenSlot)> =
        open.into_iter().filter(|(_, slot)| slot.0 > 0).collect();
    dangling.sort_by(|a, b| (a.0 .0, &a.0 .1).cmp(&(b.0 .0, &b.0 .1)));
    for ((cat, id), (depth, pid, tid, name)) in dangling {
        for _ in 0..depth {
            events.push(event_json(
                "e",
                horizon,
                pid,
                tid,
                &name,
                Some((cat, &id)),
                vec![("truncated", true.into())],
            ));
        }
    }

    // Metadata records, emitted ahead of the event stream.
    pids.sort_unstable();
    pids.dedup();
    threads.sort_unstable();
    threads.dedup();
    let mut meta: Vec<Value> = Vec::new();
    if !counters.is_empty() {
        meta.push(Value::obj(vec![
            ("ph", "M".into()),
            ("pid", 0u64.into()),
            ("name", "process_name".into()),
            ("args", Value::obj(vec![("name", "run metrics".into())])),
        ]));
    }
    for pid in pids {
        let name = match pid {
            1 => PlaneId::Data.name(),
            2 => PlaneId::Control.name(),
            _ => PlaneId::Circuit.name(),
        };
        meta.push(Value::obj(vec![
            ("ph", "M".into()),
            ("pid", pid.into()),
            ("name", "process_name".into()),
            ("args", Value::obj(vec![("name", name.into())])),
        ]));
    }
    for (pid, tid) in threads {
        meta.push(Value::obj(vec![
            ("ph", "M".into()),
            ("pid", pid.into()),
            ("tid", tid.into()),
            ("name", "thread_name".into()),
            (
                "args",
                Value::obj(vec![("name", format!("router {tid}").into())]),
            ),
        ]));
    }
    meta.extend(events);
    meta.extend(counters);

    Value::obj(vec![
        ("traceEvents", Value::Arr(meta)),
        ("displayTimeUnit", "ms".into()),
    ])
}

/// Summary statistics returned by a successful [`validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfettoSummary {
    /// Total entries in `traceEvents` (metadata included).
    pub events: usize,
    /// Completed async span pairs.
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter-track samples (`ph: "C"`).
    pub counters: usize,
}

fn require_u64(ev: &Value, key: &str, i: usize) -> Result<u64, String> {
    ev[key]
        .as_u64()
        .ok_or_else(|| format!("event {i}: missing or non-integer {key:?}"))
}

/// Structurally validates a Perfetto `trace_event` JSON document (as
/// produced by [`export`]) without any serde machinery — the check CI runs
/// against traced smoke simulations.
///
/// Verified: `traceEvents` is an array; every entry has a known `ph` and a
/// string `name`; non-metadata entries carry integer `ts`/`pid`/`tid`;
/// span events carry `cat` + `id` and are balanced per `(cat, id)` with no
/// end-before-begin.
///
/// # Errors
/// Returns a description of the first structural violation found.
pub fn validate(doc: &Value) -> Result<PerfettoSummary, String> {
    let events = doc["traceEvents"]
        .as_array()
        .ok_or("traceEvents must be an array")?;
    let mut open: HashMap<(String, String), u64> = HashMap::new();
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut counters = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev["ph"]
            .as_str()
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ev["name"].as_str().is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if ph == "M" {
            require_u64(ev, "pid", i)?;
            continue;
        }
        require_u64(ev, "ts", i)?;
        require_u64(ev, "pid", i)?;
        require_u64(ev, "tid", i)?;
        match ph {
            "i" => instants += 1,
            "C" => {
                if ev["args"].get("value").and_then(Value::as_f64).is_none() {
                    return Err(format!("event {i}: counter without numeric args.value"));
                }
                counters += 1;
            }
            "b" | "e" => {
                let cat = ev["cat"]
                    .as_str()
                    .ok_or_else(|| format!("event {i}: span without cat"))?;
                let id = ev["id"]
                    .as_str()
                    .ok_or_else(|| format!("event {i}: span without id"))?;
                let depth = open.entry((cat.to_string(), id.to_string())).or_insert(0);
                if ph == "b" {
                    *depth += 1;
                } else {
                    if *depth == 0 {
                        return Err(format!("event {i}: end before begin for {cat}/{id}"));
                    }
                    *depth -= 1;
                    spans += 1;
                }
            }
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    let mut unbalanced: Vec<&(String, String)> = open
        .iter()
        .filter(|(_, &d)| d > 0)
        .map(|(k, _)| k)
        .collect();
    if !unbalanced.is_empty() {
        unbalanced.sort();
        let (cat, id) = unbalanced[0];
        return Err(format!(
            "{} unclosed span(s), first {cat}/{id}",
            unbalanced.len()
        ));
    }
    Ok(PerfettoSummary {
        events: events.len(),
        spans,
        instants,
        counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { at, seq, ev }
    }

    #[test]
    fn exports_balanced_packet_span() {
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::WormholeInject {
                    msg: 1,
                    src: 0,
                    dest: 3,
                    len_flits: 16,
                },
            ),
            rec(
                9,
                1,
                TraceEvent::WormholeDeliver {
                    msg: 1,
                    src: 0,
                    dest: 3,
                    latency: 9,
                },
            ),
        ];
        let doc = export(&records);
        let sum = validate(&doc).expect("valid");
        assert_eq!(sum.spans, 1);
        assert_eq!(sum.instants, 0);
        // Round-trips through the parser (what CI does with the file).
        let reparsed = Value::parse(&doc.pretty()).expect("parses");
        assert_eq!(validate(&reparsed).expect("still valid"), sum);
    }

    #[test]
    fn closes_dangling_spans_and_drops_orphan_ends() {
        let records = vec![
            // Orphan end: its begin fell out of the ring.
            rec(
                2,
                0,
                TraceEvent::CircuitDeliver {
                    msg: 7,
                    src: 1,
                    dest: 2,
                    latency: 5,
                },
            ),
            // Begin with no end: in flight at snapshot time.
            rec(
                4,
                1,
                TraceEvent::ProbeLaunch {
                    circuit: 3,
                    src: 0,
                    dest: 5,
                    switch: 1,
                    force: false,
                },
            ),
        ];
        let doc = export(&records);
        let sum = validate(&doc).expect("exporter must balance");
        assert_eq!(sum.spans, 1, "dangling launch closed at horizon");
    }

    #[test]
    fn plane_ticks_are_not_exported() {
        let records = vec![rec(
            0,
            0,
            TraceEvent::PlaneTick {
                plane: PlaneId::Data,
            },
        )];
        let doc = export(&records);
        let sum = validate(&doc).expect("valid");
        assert_eq!(sum.events, 0);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate(&Value::parse("{}").unwrap()).is_err());
        let no_name = r#"{"traceEvents":[{"ph":"i","ts":0,"pid":1,"tid":0}]}"#;
        assert!(validate(&Value::parse(no_name).unwrap())
            .unwrap_err()
            .contains("name"));
        let unbalanced =
            r#"{"traceEvents":[{"ph":"b","name":"x","cat":"c","id":"1","ts":0,"pid":1,"tid":0}]}"#;
        assert!(validate(&Value::parse(unbalanced).unwrap())
            .unwrap_err()
            .contains("unclosed"));
        let early_end =
            r#"{"traceEvents":[{"ph":"e","name":"x","cat":"c","id":"1","ts":0,"pid":1,"tid":0}]}"#;
        assert!(validate(&Value::parse(early_end).unwrap())
            .unwrap_err()
            .contains("end before begin"));
    }

    #[test]
    fn metadata_names_planes_and_routers() {
        let records = vec![rec(1, 0, TraceEvent::CacheMiss { node: 4, dest: 9 })];
        let doc = export(&records);
        let evs = doc["traceEvents"].as_array().unwrap();
        assert!(evs.iter().any(|e| e["ph"].as_str() == Some("M")
            && e["args"]["name"].as_str() == Some("circuit plane")));
        assert!(evs.iter().any(
            |e| e["ph"].as_str() == Some("M") && e["args"]["name"].as_str() == Some("router 4")
        ));
    }
}
