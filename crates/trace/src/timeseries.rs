//! Windowed time-series sampling.
//!
//! A [`WindowSeries`] folds a run into fixed-width cycle windows and
//! reports, per window: delivered messages and flits, throughput
//! (flits/node/cycle), p50/p99 delivery latency, circuit-cache hit rate,
//! and the peak active-router count. The bench driver feeds one live
//! (`wavesim-bench` observes the network each cycle); the analyzer derives
//! the same series offline from a captured trace stream. Rows export as
//! CSV, JSON, and Perfetto counter tracks
//! ([`crate::perfetto::export_with_counters`]).
//!
//! Windows are half-open `[start, start + window)`; a trailing partial
//! window is emitted by [`WindowSeries::finish`] with its real `end` so
//! rates stay honest. A window that delivered nothing has *no* latency:
//! its p50/p99 are `None` (empty CSV cells, JSON `null`, no Perfetto
//! counter sample), never a fabricated zero.

use std::fmt::Write as _;

use wavesim_json::Value;
use wavesim_sim::stats::Histogram;
use wavesim_sim::Cycle;

/// One closed sampling window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRow {
    /// First cycle of the window (inclusive).
    pub start: Cycle,
    /// End of the window (exclusive).
    pub end: Cycle,
    /// Messages delivered inside the window.
    pub delivered: u64,
    /// Flits delivered inside the window.
    pub flits: u64,
    /// Median delivery latency of the window's deliveries; `None` when
    /// the window delivered nothing (an empty window has no latency, and
    /// reporting `0` would read as "instant delivery").
    pub p50: Option<f64>,
    /// 99th-percentile delivery latency; `None` when the window
    /// delivered nothing.
    pub p99: Option<f64>,
    /// Circuit-cache hits observed in the window.
    pub cache_hits: u64,
    /// Circuit-cache misses observed in the window.
    pub cache_misses: u64,
    /// Peak simultaneously-active router count observed in the window.
    pub active_routers: u64,
}

impl WindowRow {
    /// Delivered flits per node per cycle over the window.
    #[must_use]
    pub fn throughput(&self, nodes: u64) -> f64 {
        let span = self.end.saturating_sub(self.start);
        if span == 0 || nodes == 0 {
            return 0.0;
        }
        self.flits as f64 / (span as f64 * nodes as f64)
    }

    /// Cache hit rate over the window (0 when the cache was idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// Streaming window accumulator. Feed observations in non-decreasing
/// cycle order; closed windows accumulate in [`WindowSeries::rows`].
#[derive(Debug)]
pub struct WindowSeries {
    window: u64,
    nodes: u64,
    start: Cycle,
    lat: Histogram,
    delivered: u64,
    flits: u64,
    cache_hits: u64,
    cache_misses: u64,
    active_peak: u64,
    rows: Vec<WindowRow>,
}

impl WindowSeries {
    /// A series with `window`-cycle windows over a `nodes`-node network.
    ///
    /// # Panics
    /// Panics if `window` or `nodes` is zero.
    #[must_use]
    pub fn new(window: u64, nodes: u64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(nodes > 0, "node count must be positive");
        Self {
            window,
            nodes,
            start: 0,
            lat: Histogram::new(),
            delivered: 0,
            flits: 0,
            cache_hits: 0,
            cache_misses: 0,
            active_peak: 0,
            rows: Vec::new(),
        }
    }

    /// Window width in cycles.
    #[must_use]
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Node count used for throughput normalization.
    #[must_use]
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Windows closed so far, oldest first.
    #[must_use]
    pub fn rows(&self) -> &[WindowRow] {
        &self.rows
    }

    fn close_window(&mut self) {
        let end = self.start + self.window;
        self.rows.push(WindowRow {
            start: self.start,
            end,
            delivered: self.delivered,
            flits: self.flits,
            p50: self.lat.p50(),
            p99: self.lat.p99(),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            active_routers: self.active_peak,
        });
        self.start = end;
        self.lat = Histogram::new();
        self.delivered = 0;
        self.flits = 0;
        self.cache_hits = 0;
        self.cache_misses = 0;
        self.active_peak = 0;
    }

    fn roll_to(&mut self, now: Cycle) {
        while now >= self.start + self.window {
            self.close_window();
        }
    }

    /// Per-cycle observation: current active-router count plus the cache
    /// hit/miss activity since the previous observation.
    pub fn observe(&mut self, now: Cycle, active_routers: u64, hits_delta: u64, misses_delta: u64) {
        self.roll_to(now);
        self.active_peak = self.active_peak.max(active_routers);
        self.cache_hits += hits_delta;
        self.cache_misses += misses_delta;
    }

    /// Records one delivered message.
    pub fn record_delivery(&mut self, at: Cycle, latency: u64, flits: u64) {
        self.roll_to(at);
        self.lat.record(latency);
        self.delivered += 1;
        self.flits += flits;
    }

    /// Closes out the series at `end` (exclusive) and returns all rows.
    /// A trailing partial window keeps its real `end`.
    #[must_use]
    pub fn finish(mut self, end: Cycle) -> Vec<WindowRow> {
        self.roll_to(end.min(Cycle::MAX - self.window));
        if end > self.start {
            let had_content = self.delivered > 0
                || self.cache_hits + self.cache_misses > 0
                || self.active_peak > 0;
            if had_content {
                self.rows.push(WindowRow {
                    start: self.start,
                    end,
                    delivered: self.delivered,
                    flits: self.flits,
                    p50: self.lat.p50(),
                    p99: self.lat.p99(),
                    cache_hits: self.cache_hits,
                    cache_misses: self.cache_misses,
                    active_routers: self.active_peak,
                });
            }
        }
        self.rows
    }
}

/// Renders rows as CSV (header + one line per window, `{:.4}` floats for
/// byte stability).
#[must_use]
pub fn to_csv(rows: &[WindowRow], nodes: u64) -> String {
    let mut out = String::from(
        "start,end,delivered,flits,throughput,p50_latency,p99_latency,\
         cache_hits,cache_misses,cache_hit_rate,active_routers\n",
    );
    // Empty windows have no latency: their p50/p99 cells stay empty
    // rather than printing a misleading 0.
    let quantile = |q: Option<f64>| q.map_or_else(String::new, |v| format!("{v:.4}"));
    for r in rows {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{},{},{},{},{:.4},{}",
            r.start,
            r.end,
            r.delivered,
            r.flits,
            r.throughput(nodes),
            quantile(r.p50),
            quantile(r.p99),
            r.cache_hits,
            r.cache_misses,
            r.hit_rate(),
            r.active_routers,
        );
    }
    out
}

/// Renders rows as a JSON array of window objects.
#[must_use]
pub fn to_json(rows: &[WindowRow], nodes: u64) -> Value {
    Value::Arr(
        rows.iter()
            .map(|r| {
                Value::obj(vec![
                    ("start", r.start.into()),
                    ("end", r.end.into()),
                    ("delivered", r.delivered.into()),
                    ("flits", r.flits.into()),
                    ("throughput", r.throughput(nodes).into()),
                    ("p50_latency", r.p50.map_or(Value::Null, Value::from)),
                    ("p99_latency", r.p99.map_or(Value::Null, Value::from)),
                    ("cache_hits", r.cache_hits.into()),
                    ("cache_misses", r.cache_misses.into()),
                    ("cache_hit_rate", r.hit_rate().into()),
                    ("active_routers", r.active_routers.into()),
                ])
            })
            .collect(),
    )
}

/// Builds Perfetto counter-track events (`ph: "C"`) from rows, one sample
/// per window start per metric, for
/// [`crate::perfetto::export_with_counters`]. Windows with no deliveries
/// emit no latency samples (the counter track simply has a gap there),
/// so an idle stretch never renders as a latency of zero.
#[must_use]
pub fn perfetto_counters(rows: &[WindowRow], nodes: u64) -> Vec<Value> {
    let mut out = Vec::with_capacity(rows.len() * 5);
    let mut push = |ts: Cycle, name: &str, value: f64| {
        out.push(Value::obj(vec![
            ("ph", "C".into()),
            ("ts", ts.into()),
            ("pid", 0u64.into()),
            ("tid", 0u64.into()),
            ("name", name.into()),
            ("args", Value::obj(vec![("value", value.into())])),
        ]));
    };
    for r in rows {
        push(
            r.start,
            "throughput (flits/node/cycle)",
            r.throughput(nodes),
        );
        if let Some(p50) = r.p50 {
            push(r.start, "p50 latency (cycles)", p50);
        }
        if let Some(p99) = r.p99 {
            push(r.start, "p99 latency (cycles)", p99);
        }
        push(r.start, "cache hit rate", r.hit_rate());
        push(r.start, "active routers", r.active_routers as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfetto;

    #[test]
    fn windows_roll_and_aggregate() {
        let mut s = WindowSeries::new(100, 4);
        s.observe(0, 2, 1, 1);
        s.record_delivery(10, 40, 8);
        s.record_delivery(90, 60, 8);
        s.observe(150, 3, 4, 0);
        s.record_delivery(150, 50, 8);
        let rows = s.finish(200);
        assert_eq!(rows.len(), 2);
        let w0 = &rows[0];
        assert_eq!((w0.start, w0.end), (0, 100));
        assert_eq!(w0.delivered, 2);
        assert_eq!(w0.flits, 16);
        assert_eq!(w0.cache_hits, 1);
        assert_eq!(w0.cache_misses, 1);
        assert_eq!(w0.active_routers, 2);
        assert!((w0.hit_rate() - 0.5).abs() < 1e-12);
        assert!((w0.throughput(4) - 16.0 / 400.0).abs() < 1e-12);
        assert!(w0.p50.unwrap() >= 40.0 && w0.p99.unwrap() <= 63.0);
        let w1 = &rows[1];
        assert_eq!((w1.start, w1.end), (100, 200));
        assert_eq!(w1.delivered, 1);
        assert_eq!(w1.active_routers, 3);
    }

    #[test]
    fn empty_windows_between_activity_are_kept() {
        let mut s = WindowSeries::new(10, 1);
        s.record_delivery(5, 3, 1);
        s.record_delivery(35, 3, 1);
        let rows = s.finish(40);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[1].delivered, 0);
        assert_eq!(rows[2].delivered, 0);
        assert_eq!(rows[3].delivered, 1);
        // Empty windows have no latency — explicitly None, not 0.
        assert_eq!(rows[1].p50, None);
        assert_eq!(rows[2].p99, None);
        assert!(rows[3].p50.is_some());
    }

    #[test]
    fn empty_window_latency_is_null_in_json_and_blank_in_csv() {
        let mut s = WindowSeries::new(10, 1);
        s.record_delivery(5, 3, 1);
        s.record_delivery(25, 7, 1);
        let rows = s.finish(30);
        assert_eq!(rows.len(), 3);
        let json = to_json(&rows, 1);
        assert!(matches!(json[1]["p50_latency"], Value::Null));
        assert!(matches!(json[1]["p99_latency"], Value::Null));
        assert_eq!(json[0]["p50_latency"].as_f64(), Some(3.0));
        let csv = to_csv(&rows, 1);
        let line: Vec<&str> = csv.lines().nth(2).unwrap().split(',').collect();
        assert_eq!(line[5], "", "empty window's p50 cell must be blank");
        assert_eq!(line[6], "", "empty window's p99 cell must be blank");
        let full: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(full[5], "3.0000");
    }

    #[test]
    fn empty_windows_emit_no_latency_counter_samples() {
        let mut s = WindowSeries::new(10, 1);
        s.record_delivery(5, 3, 1);
        s.record_delivery(25, 7, 1);
        let rows = s.finish(30);
        // Row 1 is empty: 3 counters instead of 5.
        let counters = perfetto_counters(&rows, 1);
        assert_eq!(counters.len(), 5 + 3 + 5);
        let doc = perfetto::export_with_counters(&[], counters);
        perfetto::validate(&doc).expect("valid");
    }

    #[test]
    fn trailing_partial_window_keeps_real_end() {
        let mut s = WindowSeries::new(100, 1);
        s.record_delivery(105, 9, 2);
        let rows = s.finish(150);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[1].start, rows[1].end), (100, 150));
        assert!((rows[1].throughput(1) - 2.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn quiet_trailing_partial_is_dropped() {
        let mut s = WindowSeries::new(100, 1);
        s.record_delivery(5, 9, 2);
        let rows = s.finish(150);
        assert_eq!(rows.len(), 1, "empty 50-cycle tail should not add a row");
    }

    #[test]
    fn csv_and_json_agree_on_row_count() {
        let mut s = WindowSeries::new(50, 2);
        s.record_delivery(10, 5, 4);
        s.record_delivery(60, 7, 4);
        let rows = s.finish(100);
        let csv = to_csv(&rows, 2);
        assert_eq!(csv.lines().count(), 1 + rows.len());
        assert!(csv.starts_with("start,end,delivered"));
        let json = to_json(&rows, 2);
        assert_eq!(json.as_array().unwrap().len(), rows.len());
        assert_eq!(json[0]["delivered"].as_u64(), Some(1));
    }

    #[test]
    fn counter_events_validate_inside_export() {
        let mut s = WindowSeries::new(50, 2);
        s.observe(0, 1, 1, 0);
        s.record_delivery(10, 5, 4);
        let rows = s.finish(50);
        let counters = perfetto_counters(&rows, 2);
        assert_eq!(counters.len(), 5 * rows.len());
        let doc = perfetto::export_with_counters(&[], counters);
        let sum = perfetto::validate(&doc).expect("valid");
        assert_eq!(sum.counters, 5 * rows.len());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = WindowSeries::new(0, 1);
    }
}
