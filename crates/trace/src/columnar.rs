//! Binary columnar trace capture — the production-cheap record format.
//!
//! Streamed JSONL (see [`crate::stream`]) is lossless but pays ~90 bytes
//! and a `core::fmt`-free-but-still-textual encode per record; at 64×64+
//! fabric sizes that is the difference between always-on tracing and
//! tracing you turn off. This module defines a compact binary framing of
//! the same [`TraceRecord`] stream:
//!
//! * records are grouped into **frames** (one frame per writer chunk);
//! * within a frame, like data lives in **columns**: one kind-tag byte
//!   per record, zigzag **delta-encoded cycle stamps**, an optional
//!   explicit sequence column (omitted entirely in the common case where
//!   sequence numbers are consecutive), and a varint payload column;
//! * the wide `u64` identifier spaces (circuit, probe, message ids) are
//!   **interned** into a per-frame dictionary in first-appearance order,
//!   so payloads reference 1–2 byte indices instead of repeating 5-byte
//!   varints;
//! * booleans (`force`, `misroute`) fold into the kind-tag byte.
//!
//! The result is typically 6–9 bytes per record — less than a tenth of
//! the JSONL line — and the encoder is pure integer appends, cheap enough
//! to gate emission+encode below 5 % of the untraced run on one core.
//!
//! Decoding reproduces every record *exactly* (`at`, `seq`, and event
//! fields), so a binary capture converts to byte-identical JSONL and all
//! analytics consume either format through [`crate::stream::TraceReader`].
//! The format is deliberately self-contained per frame: a truncated file
//! loses at most its trailing frame, and frames decode with bounded
//! memory.

use crate::stream::ChunkEncoder;
use crate::{PlaneId, TraceEvent, TraceRecord, TraceSink};

/// File magic prefixing every columnar capture (8 bytes, version baked in).
pub const MAGIC: [u8; 8] = *b"WSTRACE1";

/// Frame flag bit: an explicit sequence column follows the cycle column.
const FLAG_EXPLICIT_SEQ: u8 = 0x01;

/// Kind-tag bit carrying the variant's boolean field (`force`/`misroute`).
const TAG_BOOL: u8 = 0x40;

// ---------------------------------------------------------------------
// Varint primitives
// ---------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (7 bits per byte, high bit = more).
#[inline]
fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Zigzag-maps a signed delta so small magnitudes stay small varints.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads one varint from `bytes` at `*pos`, advancing it.
fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes
            .get(*pos)
            .ok_or("truncated varint (unexpected end of frame)")?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint overflows u64".into());
        }
        v |= u64::from(b & 0x7f)
            .checked_shl(shift)
            .ok_or("varint overflows u64")?;
        if b & 0x80 == 0 {
            // Reject non-canonical encodings that would silently alias.
            if shift == 63 && b > 1 {
                return Err("varint overflows u64".into());
            }
            return Ok(v);
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------
// Kind tags
// ---------------------------------------------------------------------

// `PlaneTick` folds its plane into the tag, so 22 enum variants become 24
// tag values. Tags are part of the on-disk format: append only.
const T_TICK_DATA: u8 = 0;
const T_TICK_CTRL: u8 = 1;
const T_TICK_CIRC: u8 = 2;
const T_PROBE_LAUNCH: u8 = 3;
const T_PROBE_HOP: u8 = 4;
const T_PROBE_BACKTRACK: u8 = 5;
const T_PROBE_PARK: u8 = 6;
const T_PROBE_REACHED: u8 = 7;
const T_PROBE_EXHAUSTED: u8 = 8;
const T_CIRCUIT_ESTABLISHED: u8 = 9;
const T_CIRCUIT_RELEASED: u8 = 10;
const T_CIRCUIT_ABANDONED: u8 = 11;
const T_FORCED_RELEASE: u8 = 12;
const T_CACHE_HIT: u8 = 13;
const T_CACHE_MISS: u8 = 14;
const T_CACHE_EVICT: u8 = 15;
const T_TRANSFER_START: u8 = 16;
const T_WORMHOLE_INJECT: u8 = 17;
const T_WORMHOLE_DELIVER: u8 = 18;
const T_CIRCUIT_DELIVER: u8 = 19;
const T_LANE_FAULT: u8 = 20;
const T_LANE_REPAIR: u8 = 21;
const T_CIRCUIT_BROKEN: u8 = 22;
const T_ESTABLISH_RETRY: u8 = 23;
const T_WATCHDOG_TRIP: u8 = 24;

// ---------------------------------------------------------------------
// Per-frame id interner
// ---------------------------------------------------------------------

/// Open-addressing `u64 -> dictionary index` map, rebuilt per frame.
///
/// `std::collections::HashMap`'s SipHash costs more than the whole rest
/// of a record's encode; ids only need a collision-resistant-enough
/// multiplicative hash and linear probing over a half-empty table.
struct Interner {
    /// Slot -> dictionary index, `u32::MAX` = empty.
    slots: Vec<u32>,
    /// Distinct values in first-appearance order (the frame dictionary).
    dict: Vec<u64>,
}

impl Interner {
    fn new() -> Self {
        Self {
            slots: vec![u32::MAX; 1024],
            dict: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.slots.fill(u32::MAX);
        self.dict.clear();
    }

    #[inline]
    fn hash(v: u64, mask: usize) -> usize {
        (v.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize & mask
    }

    /// Index of `v` in the frame dictionary, inserting on first sight.
    fn intern(&mut self, v: u64) -> u64 {
        let mask = self.slots.len() - 1;
        let mut i = Self::hash(v, mask);
        loop {
            let s = self.slots[i];
            if s == u32::MAX {
                if self.dict.len() * 2 >= self.slots.len() {
                    self.grow();
                    return self.intern(v);
                }
                let idx = self.dict.len() as u32;
                self.dict.push(v);
                self.slots[i] = idx;
                return u64::from(idx);
            }
            if self.dict[s as usize] == v {
                return u64::from(s);
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(cap, u32::MAX);
        let mask = cap - 1;
        for (idx, &v) in self.dict.iter().enumerate() {
            let mut i = Self::hash(v, mask);
            while self.slots[i] != u32::MAX {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32;
        }
    }
}

// ---------------------------------------------------------------------
// Frame encoder
// ---------------------------------------------------------------------

/// Encodes record chunks into self-contained columnar frames.
///
/// One encoder instance serves a whole stream; its column scratch buffers
/// and interner are reused across frames, so steady-state encoding
/// allocates nothing. Frame layout (all integers varint unless noted):
///
/// ```text
/// n_records
/// flags            (1 byte; bit 0 = explicit seq column)
/// first_at         (absolute cycle of the frame's first record)
/// first_seq        (absolute sequence of the frame's first record)
/// dict_len, dict_len × id value         (first-appearance order)
/// kinds_len,   kinds_len bytes          (1 tag byte per record)
/// cycles_len,  cycle column bytes       (zigzag delta per record after the first)
/// [seqs_len,   seq column bytes]        (only when flags bit 0 set)
/// payload_len, payload column bytes     (varint fields, variant order)
/// ```
#[derive(Default)]
pub struct FrameEncoder {
    interner: Option<Interner>,
    kinds: Vec<u8>,
    cycles: Vec<u8>,
    seqs: Vec<u8>,
    payload: Vec<u8>,
}

impl FrameEncoder {
    /// A fresh encoder (emits the stream header before its first frame).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one frame holding `recs` to `out`. Empty chunks emit
    /// nothing.
    pub fn encode_frame(&mut self, recs: &[TraceRecord], out: &mut Vec<u8>) {
        if recs.is_empty() {
            return;
        }
        let interner = self.interner.get_or_insert_with(Interner::new);
        interner.clear();
        self.kinds.clear();
        self.cycles.clear();
        self.seqs.clear();
        self.payload.clear();

        // The hub stamps consecutive sequence numbers; only sampled
        // streams have gaps. Scan once and drop the column when implicit.
        let consecutive = recs
            .windows(2)
            .all(|w| w[1].seq.wrapping_sub(w[0].seq) == 1);

        let mut prev_at = recs[0].at;
        let mut prev_seq = recs[0].seq;
        for rec in recs {
            let (tag, flag) = encode_event(&rec.ev, &mut self.payload, interner);
            self.kinds.push(if flag { tag | TAG_BOOL } else { tag });
            push_varint(
                &mut self.cycles,
                zigzag(rec.at.wrapping_sub(prev_at) as i64),
            );
            prev_at = rec.at;
            if !consecutive {
                push_varint(
                    &mut self.seqs,
                    zigzag(rec.seq.wrapping_sub(prev_seq) as i64),
                );
            }
            prev_seq = rec.seq;
        }

        push_varint(out, recs.len() as u64);
        out.push(if consecutive { 0 } else { FLAG_EXPLICIT_SEQ });
        push_varint(out, recs[0].at);
        push_varint(out, recs[0].seq);
        push_varint(out, interner.dict.len() as u64);
        for &v in &interner.dict {
            push_varint(out, v);
        }
        for col in [&self.kinds, &self.cycles] {
            push_varint(out, col.len() as u64);
            out.extend_from_slice(col);
        }
        if !consecutive {
            push_varint(out, self.seqs.len() as u64);
            out.extend_from_slice(&self.seqs);
        }
        push_varint(out, self.payload.len() as u64);
        out.extend_from_slice(&self.payload);
    }
}

impl ChunkEncoder for FrameEncoder {
    fn header(&mut self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
    }

    fn encode_chunk(&mut self, recs: &[TraceRecord], out: &mut Vec<u8>) {
        self.encode_frame(recs, out);
    }
}

/// Appends the payload fields of `ev` and returns `(tag, bool_flag)`.
#[inline]
fn encode_event(ev: &TraceEvent, p: &mut Vec<u8>, ids: &mut Interner) -> (u8, bool) {
    match *ev {
        TraceEvent::PlaneTick { plane } => (
            match plane {
                PlaneId::Data => T_TICK_DATA,
                PlaneId::Control => T_TICK_CTRL,
                PlaneId::Circuit => T_TICK_CIRC,
            },
            false,
        ),
        TraceEvent::ProbeLaunch {
            circuit,
            src,
            dest,
            switch,
            force,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(dest));
            push_varint(p, u64::from(switch));
            (T_PROBE_LAUNCH, force)
        }
        TraceEvent::ProbeHop {
            circuit,
            probe,
            node,
            link,
            misroute,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, ids.intern(probe));
            push_varint(p, u64::from(node));
            push_varint(p, u64::from(link));
            (T_PROBE_HOP, misroute)
        }
        TraceEvent::ProbeBacktrack {
            circuit,
            probe,
            node,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, ids.intern(probe));
            push_varint(p, u64::from(node));
            (T_PROBE_BACKTRACK, false)
        }
        TraceEvent::ProbePark {
            circuit,
            probe,
            node,
            victim,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, ids.intern(probe));
            push_varint(p, u64::from(node));
            push_varint(p, ids.intern(victim));
            (T_PROBE_PARK, false)
        }
        TraceEvent::ProbeReached {
            circuit,
            probe,
            dest,
            steps,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, ids.intern(probe));
            push_varint(p, u64::from(dest));
            push_varint(p, steps);
            (T_PROBE_REACHED, false)
        }
        TraceEvent::ProbeExhausted {
            circuit,
            src,
            switch,
            force,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(switch));
            (T_PROBE_EXHAUSTED, force)
        }
        TraceEvent::CircuitEstablished {
            circuit,
            src,
            dest,
            hops,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(dest));
            push_varint(p, u64::from(hops));
            (T_CIRCUIT_ESTABLISHED, false)
        }
        TraceEvent::CircuitReleased { circuit } => {
            push_varint(p, ids.intern(circuit));
            (T_CIRCUIT_RELEASED, false)
        }
        TraceEvent::CircuitAbandoned { circuit } => {
            push_varint(p, ids.intern(circuit));
            (T_CIRCUIT_ABANDONED, false)
        }
        TraceEvent::ForcedRelease { circuit, src } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, u64::from(src));
            (T_FORCED_RELEASE, false)
        }
        TraceEvent::CacheHit {
            node,
            dest,
            circuit,
        } => {
            push_varint(p, u64::from(node));
            push_varint(p, u64::from(dest));
            push_varint(p, ids.intern(circuit));
            (T_CACHE_HIT, false)
        }
        TraceEvent::CacheMiss { node, dest } => {
            push_varint(p, u64::from(node));
            push_varint(p, u64::from(dest));
            (T_CACHE_MISS, false)
        }
        TraceEvent::CacheEvict {
            node,
            victim_dest,
            circuit,
        } => {
            push_varint(p, u64::from(node));
            push_varint(p, u64::from(victim_dest));
            push_varint(p, ids.intern(circuit));
            (T_CACHE_EVICT, false)
        }
        TraceEvent::TransferStart {
            circuit,
            msg,
            src,
            dest,
            len_flits,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, ids.intern(msg));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(dest));
            push_varint(p, u64::from(len_flits));
            (T_TRANSFER_START, false)
        }
        TraceEvent::WormholeInject {
            msg,
            src,
            dest,
            len_flits,
        } => {
            push_varint(p, ids.intern(msg));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(dest));
            push_varint(p, u64::from(len_flits));
            (T_WORMHOLE_INJECT, false)
        }
        TraceEvent::WormholeDeliver {
            msg,
            src,
            dest,
            latency,
        } => {
            push_varint(p, ids.intern(msg));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(dest));
            push_varint(p, latency);
            (T_WORMHOLE_DELIVER, false)
        }
        TraceEvent::CircuitDeliver {
            msg,
            src,
            dest,
            latency,
        } => {
            push_varint(p, ids.intern(msg));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(dest));
            push_varint(p, latency);
            (T_CIRCUIT_DELIVER, false)
        }
        TraceEvent::LaneFault { link, switch } => {
            push_varint(p, u64::from(link));
            push_varint(p, u64::from(switch));
            (T_LANE_FAULT, false)
        }
        TraceEvent::LaneRepair { link, switch } => {
            push_varint(p, u64::from(link));
            push_varint(p, u64::from(switch));
            (T_LANE_REPAIR, false)
        }
        TraceEvent::CircuitBroken { circuit, src, dest } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(dest));
            (T_CIRCUIT_BROKEN, false)
        }
        TraceEvent::EstablishRetry {
            circuit,
            src,
            dest,
            attempt,
        } => {
            push_varint(p, ids.intern(circuit));
            push_varint(p, u64::from(src));
            push_varint(p, u64::from(dest));
            push_varint(p, u64::from(attempt));
            (T_ESTABLISH_RETRY, false)
        }
        TraceEvent::WatchdogTrip { rule, value, limit } => {
            push_varint(p, u64::from(rule));
            push_varint(p, value);
            push_varint(p, limit);
            (T_WATCHDOG_TRIP, false)
        }
    }
}

// ---------------------------------------------------------------------
// Inline sink (no writer thread)
// ---------------------------------------------------------------------

/// A columnar sink that encodes synchronously into an in-memory byte
/// buffer — no writer thread, no I/O.
///
/// This is the *emission + encode* measurement arm of the trace-overhead
/// bench (the number that must stay under 5 % on a single core, where a
/// background writer cannot hide any work), and the test fixture for
/// round-trip properties. Production captures use the threaded
/// [`ColumnarSink`](crate::stream::ColumnarSink) instead.
pub struct ColumnarBuf {
    enc: FrameEncoder,
    chunk: Vec<TraceRecord>,
    chunk_cap: usize,
    bytes: Vec<u8>,
    total: u64,
}

impl ColumnarBuf {
    /// An empty capture with the default frame size.
    #[must_use]
    pub fn new() -> Self {
        Self::with_chunk(crate::stream::CHUNK_RECORDS)
    }

    /// An empty capture sealing a frame every `chunk_cap` records.
    ///
    /// # Panics
    /// Panics if `chunk_cap` is zero.
    #[must_use]
    pub fn with_chunk(chunk_cap: usize) -> Self {
        assert!(chunk_cap > 0, "frame capacity must be positive");
        let mut enc = FrameEncoder::new();
        let mut bytes = Vec::with_capacity(64 * 1024);
        enc.header(&mut bytes);
        Self {
            enc,
            chunk: Vec::with_capacity(chunk_cap),
            chunk_cap,
            bytes,
            total: 0,
        }
    }

    /// Seals the in-progress frame and returns the encoded capture.
    #[must_use]
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.enc.encode_frame(&self.chunk, &mut self.bytes);
        self.bytes
    }
}

impl Default for ColumnarBuf {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for ColumnarBuf {
    fn record(&mut self, rec: TraceRecord) {
        self.total += 1;
        self.chunk.push(rec);
        if self.chunk.len() >= self.chunk_cap {
            self.enc.encode_frame(&self.chunk, &mut self.bytes);
            self.chunk.clear();
        }
    }

    fn record_many(&mut self, recs: &[TraceRecord]) {
        self.total += recs.len() as u64;
        let mut rest = recs;
        while !rest.is_empty() {
            let take = (self.chunk_cap - self.chunk.len()).min(rest.len());
            self.chunk.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.chunk.len() >= self.chunk_cap {
                self.enc.encode_frame(&self.chunk, &mut self.bytes);
                self.chunk.clear();
            }
        }
    }

    fn total(&self) -> u64 {
        self.total
    }
}

// ---------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------

/// Streaming decoder over an in-memory columnar capture: yields records
/// frame by frame through [`crate::stream::TraceReader`].
pub struct ColumnarReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    frame: Vec<TraceRecord>,
    next: usize,
    failed: bool,
}

impl<'a> ColumnarReader<'a> {
    /// A reader over `bytes`, which must start with [`MAGIC`].
    ///
    /// # Errors
    /// Fails when the magic prefix is missing (not a columnar capture).
    pub fn new(bytes: &'a [u8]) -> Result<Self, String> {
        let rest = bytes
            .strip_prefix(&MAGIC[..])
            .ok_or("not a columnar trace (missing WSTRACE1 magic)")?;
        Ok(Self {
            bytes: rest,
            pos: 0,
            frame: Vec::new(),
            next: 0,
            failed: false,
        })
    }

    /// Decodes the next frame into `self.frame`; false at end of input.
    fn decode_frame(&mut self) -> Result<bool, String> {
        self.frame.clear();
        self.next = 0;
        decode_frame_into(self.bytes, &mut self.pos, &mut self.frame)
    }
}

/// Decodes one frame of `b` (no magic prefix) starting at `*pos` into
/// `frame`, advancing `*pos` past it. `Ok(false)` at end of input; on
/// `Err` the position is unspecified. Shared by the in-memory
/// [`ColumnarReader`] and the incremental [`FrameStream`].
fn decode_frame_into(
    b: &[u8],
    pos: &mut usize,
    frame: &mut Vec<TraceRecord>,
) -> Result<bool, String> {
    if *pos >= b.len() {
        return Ok(false);
    }
    let n = read_varint(b, pos)? as usize;
    if n == 0 {
        return Err("empty frame".into());
    }
    let &flags = b.get(*pos).ok_or("truncated frame header")?;
    *pos += 1;
    if flags & !FLAG_EXPLICIT_SEQ != 0 {
        return Err(format!("unknown frame flags 0x{flags:02x}"));
    }
    let first_at = read_varint(b, pos)?;
    let first_seq = read_varint(b, pos)?;
    let dict_len = read_varint(b, pos)? as usize;
    let mut dict = Vec::with_capacity(dict_len.min(1 << 20));
    for _ in 0..dict_len {
        dict.push(read_varint(b, pos)?);
    }
    let take_col = |pos: &mut usize| -> Result<(usize, usize), String> {
        let len = read_varint(b, pos)? as usize;
        let start = *pos;
        let end = start.checked_add(len).ok_or("column length overflow")?;
        if end > b.len() {
            return Err("truncated column".into());
        }
        *pos = end;
        Ok((start, end))
    };
    let (kinds_s, kinds_e) = take_col(pos)?;
    if kinds_e - kinds_s != n {
        return Err(format!(
            "kind column holds {} tags for {n} records",
            kinds_e - kinds_s
        ));
    }
    let (cyc_s, cyc_e) = take_col(pos)?;
    let (seq_s, seq_e) = if flags & FLAG_EXPLICIT_SEQ != 0 {
        take_col(pos)?
    } else {
        (0, 0)
    };
    let (pay_s, pay_e) = take_col(pos)?;

    let mut cyc = cyc_s;
    let mut seqp = seq_s;
    let mut pay = pay_s;
    let mut at = first_at;
    let mut seq = first_seq;
    frame.reserve(n);
    for (i, &tag) in b[kinds_s..kinds_e].iter().enumerate() {
        let d = unzigzag(read_varint(&b[..cyc_e], &mut cyc)?);
        at = if i == 0 {
            first_at
        } else {
            at.wrapping_add(d as u64)
        };
        if flags & FLAG_EXPLICIT_SEQ != 0 {
            let d = unzigzag(read_varint(&b[..seq_e], &mut seqp)?);
            seq = if i == 0 {
                first_seq
            } else {
                seq.wrapping_add(d as u64)
            };
        } else {
            seq = first_seq + i as u64;
        }
        let ev = decode_event(tag, &b[..pay_e], &mut pay, &dict)?;
        frame.push(TraceRecord { at, seq, ev });
    }
    if cyc != cyc_e || pay != pay_e || seqp != seq_e {
        return Err("frame columns longer than their records".into());
    }
    Ok(true)
}

impl crate::stream::TraceReader for ColumnarReader<'_> {
    fn next_record(&mut self) -> Option<Result<TraceRecord, String>> {
        if self.failed {
            return None;
        }
        while self.next >= self.frame.len() {
            match self.decode_frame() {
                Ok(true) => {}
                Ok(false) => return None,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(format!("columnar frame at byte {}: {e}", self.pos)));
                }
            }
        }
        let rec = self.frame[self.next];
        self.next += 1;
        Some(Ok(rec))
    }
}

/// Incremental frame decoder over an arbitrary byte source.
///
/// Unlike [`ColumnarReader`], which borrows a fully materialized capture,
/// this reads the source in fixed-size gulps and decodes one frame at a
/// time: peak memory is one frame's records plus the undecoded window,
/// never the capture size — the multi-GB post-mortem path.
///
/// The source must be positioned *after* the [`MAGIC`] prefix (the
/// format sniffer consumes it).
pub struct FrameStream<R: std::io::Read> {
    src: R,
    /// Bytes read but not yet decoded; `pos` marks the consumed prefix.
    buf: Vec<u8>,
    pos: usize,
    eof: bool,
}

/// Bytes [`FrameStream`] reads from its source per refill.
const STREAM_GULP: usize = 256 * 1024;

impl<R: std::io::Read> FrameStream<R> {
    /// A frame stream over `src` (positioned past the magic).
    pub fn new(src: R) -> Self {
        Self {
            src,
            buf: Vec::new(),
            pos: 0,
            eof: false,
        }
    }

    /// Tops the window up with one gulp; records end-of-source.
    fn refill(&mut self) -> Result<(), String> {
        // Drop the consumed prefix before growing so the window stays
        // proportional to one frame, not the bytes read so far.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        let start = self.buf.len();
        self.buf.resize(start + STREAM_GULP, 0);
        let mut filled = start;
        while filled < self.buf.len() {
            match self.src.read(&mut self.buf[filled..]) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("trace stream read: {e}")),
            }
        }
        self.buf.truncate(filled);
        Ok(())
    }

    /// Decodes the next frame into `frame` (cleared first). `Ok(false)`
    /// at end of source.
    ///
    /// # Errors
    /// Fails on I/O errors or a frame that is still malformed once the
    /// whole source is available to it.
    pub fn next_frame(&mut self, frame: &mut Vec<TraceRecord>) -> Result<bool, String> {
        loop {
            frame.clear();
            let mut pos = self.pos;
            match decode_frame_into(&self.buf, &mut pos, frame) {
                Ok(true) => {
                    self.pos = pos;
                    return Ok(true);
                }
                Ok(false) if self.eof => return Ok(false),
                // A decode error on a partial window usually just means
                // the frame is split across gulps: read more and retry.
                // Only an error with the whole source in view is real.
                Ok(false) | Err(_) if !self.eof => self.refill()?,
                Err(e) => return Err(e),
                Ok(false) => return Ok(false),
            }
        }
    }
}

/// Decodes a whole in-memory columnar capture, oldest first.
///
/// # Errors
/// Fails on a missing magic prefix or any malformed frame.
pub fn read_columnar(bytes: &[u8]) -> Result<Vec<TraceRecord>, String> {
    use crate::stream::TraceReader as _;
    ColumnarReader::new(bytes)?.read_all()
}

/// Decodes the payload fields of one record.
fn decode_event(tag: u8, b: &[u8], pos: &mut usize, dict: &[u64]) -> Result<TraceEvent, String> {
    let flag = tag & TAG_BOOL != 0;
    let id = |pos: &mut usize| -> Result<u64, String> {
        let idx = read_varint(b, pos)? as usize;
        dict.get(idx)
            .copied()
            .ok_or_else(|| format!("id index {idx} outside frame dictionary"))
    };
    macro_rules! n32 {
        ($pos:expr) => {
            u32::try_from(read_varint(b, $pos)?).map_err(|_| "field out of u32 range")?
        };
    }
    macro_rules! n8 {
        ($pos:expr) => {
            u8::try_from(read_varint(b, $pos)?).map_err(|_| "field out of u8 range")?
        };
    }
    Ok(match tag & !TAG_BOOL {
        T_TICK_DATA => TraceEvent::PlaneTick {
            plane: PlaneId::Data,
        },
        T_TICK_CTRL => TraceEvent::PlaneTick {
            plane: PlaneId::Control,
        },
        T_TICK_CIRC => TraceEvent::PlaneTick {
            plane: PlaneId::Circuit,
        },
        T_PROBE_LAUNCH => TraceEvent::ProbeLaunch {
            circuit: id(pos)?,
            src: n32!(pos),
            dest: n32!(pos),
            switch: n8!(pos),
            force: flag,
        },
        T_PROBE_HOP => TraceEvent::ProbeHop {
            circuit: id(pos)?,
            probe: id(pos)?,
            node: n32!(pos),
            link: n32!(pos),
            misroute: flag,
        },
        T_PROBE_BACKTRACK => TraceEvent::ProbeBacktrack {
            circuit: id(pos)?,
            probe: id(pos)?,
            node: n32!(pos),
        },
        T_PROBE_PARK => TraceEvent::ProbePark {
            circuit: id(pos)?,
            probe: id(pos)?,
            node: n32!(pos),
            victim: id(pos)?,
        },
        T_PROBE_REACHED => TraceEvent::ProbeReached {
            circuit: id(pos)?,
            probe: id(pos)?,
            dest: n32!(pos),
            steps: read_varint(b, pos)?,
        },
        T_PROBE_EXHAUSTED => TraceEvent::ProbeExhausted {
            circuit: id(pos)?,
            src: n32!(pos),
            switch: n8!(pos),
            force: flag,
        },
        T_CIRCUIT_ESTABLISHED => TraceEvent::CircuitEstablished {
            circuit: id(pos)?,
            src: n32!(pos),
            dest: n32!(pos),
            hops: n32!(pos),
        },
        T_CIRCUIT_RELEASED => TraceEvent::CircuitReleased { circuit: id(pos)? },
        T_CIRCUIT_ABANDONED => TraceEvent::CircuitAbandoned { circuit: id(pos)? },
        T_FORCED_RELEASE => TraceEvent::ForcedRelease {
            circuit: id(pos)?,
            src: n32!(pos),
        },
        T_CACHE_HIT => TraceEvent::CacheHit {
            node: n32!(pos),
            dest: n32!(pos),
            circuit: id(pos)?,
        },
        T_CACHE_MISS => TraceEvent::CacheMiss {
            node: n32!(pos),
            dest: n32!(pos),
        },
        T_CACHE_EVICT => TraceEvent::CacheEvict {
            node: n32!(pos),
            victim_dest: n32!(pos),
            circuit: id(pos)?,
        },
        T_TRANSFER_START => TraceEvent::TransferStart {
            circuit: id(pos)?,
            msg: id(pos)?,
            src: n32!(pos),
            dest: n32!(pos),
            len_flits: n32!(pos),
        },
        T_WORMHOLE_INJECT => TraceEvent::WormholeInject {
            msg: id(pos)?,
            src: n32!(pos),
            dest: n32!(pos),
            len_flits: n32!(pos),
        },
        T_WORMHOLE_DELIVER => TraceEvent::WormholeDeliver {
            msg: id(pos)?,
            src: n32!(pos),
            dest: n32!(pos),
            latency: read_varint(b, pos)?,
        },
        T_CIRCUIT_DELIVER => TraceEvent::CircuitDeliver {
            msg: id(pos)?,
            src: n32!(pos),
            dest: n32!(pos),
            latency: read_varint(b, pos)?,
        },
        T_LANE_FAULT => TraceEvent::LaneFault {
            link: n32!(pos),
            switch: n8!(pos),
        },
        T_LANE_REPAIR => TraceEvent::LaneRepair {
            link: n32!(pos),
            switch: n8!(pos),
        },
        T_CIRCUIT_BROKEN => TraceEvent::CircuitBroken {
            circuit: id(pos)?,
            src: n32!(pos),
            dest: n32!(pos),
        },
        T_ESTABLISH_RETRY => TraceEvent::EstablishRetry {
            circuit: id(pos)?,
            src: n32!(pos),
            dest: n32!(pos),
            attempt: n8!(pos),
        },
        T_WATCHDOG_TRIP => TraceEvent::WatchdogTrip {
            rule: n8!(pos),
            value: read_varint(b, pos)?,
            limit: read_varint(b, pos)?,
        },
        other => return Err(format!("unknown kind tag {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(recs: &[TraceRecord]) -> Vec<TraceRecord> {
        let mut enc = FrameEncoder::new();
        let mut bytes = Vec::new();
        enc.header(&mut bytes);
        enc.encode_frame(recs, &mut bytes);
        read_columnar(&bytes).expect("own output decodes")
    }

    #[test]
    fn varint_roundtrips_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16383,
            16384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 12345, -12345] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_capture_is_just_magic() {
        let bytes = ColumnarBuf::new().into_bytes();
        assert_eq!(bytes, MAGIC);
        assert!(read_columnar(&bytes).unwrap().is_empty());
    }

    #[test]
    fn consecutive_seqs_omit_the_seq_column() {
        let recs: Vec<TraceRecord> = (0..100)
            .map(|i| TraceRecord {
                at: 10 + i,
                seq: 40 + i,
                ev: TraceEvent::CacheMiss {
                    node: 1,
                    dest: i as u32,
                },
            })
            .collect();
        let mut gapped = recs.clone();
        gapped[50].seq += 7; // forces the explicit column
        assert_eq!(roundtrip(&recs), recs);
        assert_eq!(roundtrip(&gapped), gapped);
        let size = |rs: &[TraceRecord]| {
            let mut enc = FrameEncoder::new();
            let mut bytes = Vec::new();
            enc.encode_frame(rs, &mut bytes);
            bytes.len()
        };
        assert!(size(&recs) < size(&gapped), "implicit seqs must be free");
    }

    #[test]
    fn interner_survives_growth_and_collisions() {
        let mut i = Interner::new();
        // More distinct ids than the initial table's load limit.
        for v in 0..5000u64 {
            let idx = i.intern(v.wrapping_mul(0x1234_5678_9abc_def1));
            assert_eq!(idx, v, "first appearance order");
        }
        // Re-interning returns the same indices.
        for v in 0..5000u64 {
            assert_eq!(i.intern(v.wrapping_mul(0x1234_5678_9abc_def1)), v);
        }
    }

    #[test]
    fn truncated_capture_reports_an_error() {
        let recs = vec![TraceRecord {
            at: 5,
            seq: 0,
            ev: TraceEvent::CircuitReleased { circuit: 77 },
        }];
        let mut enc = FrameEncoder::new();
        let mut bytes = Vec::new();
        enc.header(&mut bytes);
        enc.encode_frame(&recs, &mut bytes);
        let cut = &bytes[..bytes.len() - 1];
        assert!(read_columnar(cut).is_err());
        assert!(read_columnar(b"JUNKDATA").is_err());
    }
}
