//! Stall post-mortem bundles.
//!
//! When the deadlock detector trips mid-run, counters tell you *that* the
//! network froze; the interesting artifact is the event order leading into
//! the freeze plus the wait-for graph at the moment of death. [`bundle`]
//! packages both as one JSON document:
//!
//! ```json
//! {
//!   "kind": "wavesim-postmortem",
//!   "version": 1,
//!   "at": 18230,
//!   "stall_age": 20000,
//!   "in_flight_flits": 412,
//!   "wait_for": { "edges": [[[3,1],[7,0]], ...], "cycle": [[3,1],...] },
//!   "recorder": { "total": 99182, "dropped": 33646, "records": [...] }
//! }
//! ```
//!
//! Wait-for vertices are `[link, lane]` pairs (the fabric's `WaitVc`
//! encoding, passed here as raw integers to keep this crate below
//! `wavesim-core`). Each record carries its cycle, global sequence number,
//! the [`TraceEvent::kind`] tag, and the event's fields.

use wavesim_json::Value;

use crate::{TraceEvent, TraceRecord};

/// A wait-for-graph vertex as raw integers: `(link id, virtual lane)`.
pub type RawWaitVc = (u32, u16);

fn vc_json(vc: RawWaitVc) -> Value {
    Value::Arr(vec![vc.0.into(), u64::from(vc.1).into()])
}

/// Serializes one trace record as `{at, seq, type, ...fields}`.
#[must_use]
pub fn record_to_json(rec: &TraceRecord) -> Value {
    let mut pairs: Vec<(&str, Value)> = vec![
        ("at", rec.at.into()),
        ("seq", rec.seq.into()),
        ("type", rec.ev.kind().into()),
    ];
    match rec.ev {
        TraceEvent::PlaneTick { plane } => {
            pairs.push(("plane", plane.name().into()));
        }
        TraceEvent::ProbeLaunch {
            circuit,
            src,
            dest,
            switch,
            force,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("src", src.into()));
            pairs.push(("dest", dest.into()));
            pairs.push(("switch", u64::from(switch).into()));
            pairs.push(("force", force.into()));
        }
        TraceEvent::ProbeHop {
            circuit,
            probe,
            node,
            link,
            misroute,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("probe", probe.into()));
            pairs.push(("node", node.into()));
            pairs.push(("link", link.into()));
            pairs.push(("misroute", misroute.into()));
        }
        TraceEvent::ProbeBacktrack {
            circuit,
            probe,
            node,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("probe", probe.into()));
            pairs.push(("node", node.into()));
        }
        TraceEvent::ProbePark {
            circuit,
            probe,
            node,
            victim,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("probe", probe.into()));
            pairs.push(("node", node.into()));
            pairs.push(("victim", victim.into()));
        }
        TraceEvent::ProbeReached {
            circuit,
            probe,
            dest,
            steps,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("probe", probe.into()));
            pairs.push(("dest", dest.into()));
            pairs.push(("steps", steps.into()));
        }
        TraceEvent::ProbeExhausted {
            circuit,
            src,
            switch,
            force,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("src", src.into()));
            pairs.push(("switch", u64::from(switch).into()));
            pairs.push(("force", force.into()));
        }
        TraceEvent::CircuitEstablished {
            circuit,
            src,
            dest,
            hops,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("src", src.into()));
            pairs.push(("dest", dest.into()));
            pairs.push(("hops", hops.into()));
        }
        TraceEvent::CircuitReleased { circuit } | TraceEvent::CircuitAbandoned { circuit } => {
            pairs.push(("circuit", circuit.into()));
        }
        TraceEvent::ForcedRelease { circuit, src } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("src", src.into()));
        }
        TraceEvent::CacheHit {
            node,
            dest,
            circuit,
        } => {
            pairs.push(("node", node.into()));
            pairs.push(("dest", dest.into()));
            pairs.push(("circuit", circuit.into()));
        }
        TraceEvent::CacheMiss { node, dest } => {
            pairs.push(("node", node.into()));
            pairs.push(("dest", dest.into()));
        }
        TraceEvent::CacheEvict {
            node,
            victim_dest,
            circuit,
        } => {
            pairs.push(("node", node.into()));
            pairs.push(("victim_dest", victim_dest.into()));
            pairs.push(("circuit", circuit.into()));
        }
        TraceEvent::TransferStart {
            circuit,
            msg,
            src,
            dest,
            len_flits,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("msg", msg.into()));
            pairs.push(("src", src.into()));
            pairs.push(("dest", dest.into()));
            pairs.push(("len_flits", len_flits.into()));
        }
        TraceEvent::WormholeInject {
            msg,
            src,
            dest,
            len_flits,
        } => {
            pairs.push(("msg", msg.into()));
            pairs.push(("src", src.into()));
            pairs.push(("dest", dest.into()));
            pairs.push(("len_flits", len_flits.into()));
        }
        TraceEvent::WormholeDeliver {
            msg,
            src,
            dest,
            latency,
        }
        | TraceEvent::CircuitDeliver {
            msg,
            src,
            dest,
            latency,
        } => {
            pairs.push(("msg", msg.into()));
            pairs.push(("src", src.into()));
            pairs.push(("dest", dest.into()));
            pairs.push(("latency", latency.into()));
        }
        TraceEvent::LaneFault { link, switch } | TraceEvent::LaneRepair { link, switch } => {
            pairs.push(("link", link.into()));
            pairs.push(("switch", u64::from(switch).into()));
        }
        TraceEvent::CircuitBroken { circuit, src, dest } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("src", src.into()));
            pairs.push(("dest", dest.into()));
        }
        TraceEvent::EstablishRetry {
            circuit,
            src,
            dest,
            attempt,
        } => {
            pairs.push(("circuit", circuit.into()));
            pairs.push(("src", src.into()));
            pairs.push(("dest", dest.into()));
            pairs.push(("attempt", u64::from(attempt).into()));
        }
        TraceEvent::WatchdogTrip { rule, value, limit } => {
            pairs.push(("rule", u64::from(rule).into()));
            pairs.push(("value", value.into()));
            pairs.push(("limit", limit.into()));
        }
    }
    Value::obj(pairs)
}

/// The fabric's state at the moment the stall watchdog fired.
#[derive(Debug, Clone, Copy, Default)]
pub struct StallContext<'a> {
    /// Wait-for-graph edges: `(waiter, holder)` pairs.
    pub edges: &'a [(RawWaitVc, RawWaitVc)],
    /// The wait cycle the detector found, if any.
    pub cycle: Option<&'a [RawWaitVc]>,
    /// Cycle the dump was taken at.
    pub now: u64,
    /// Cycles since the fabric last made forward progress.
    pub stall_age: u64,
    /// Flits stuck in the fabric at dump time.
    pub in_flight: u64,
}

/// Builds the post-mortem JSON document.
///
/// `records` is the recorder snapshot (oldest first), `dropped`/`total`
/// the recorder's loss accounting, and `ctx` the fabric state at the
/// moment the watchdog fired.
#[must_use]
pub fn bundle(records: &[TraceRecord], dropped: u64, total: u64, ctx: &StallContext) -> Value {
    let edges_json: Vec<Value> = ctx
        .edges
        .iter()
        .map(|&(a, b)| Value::Arr(vec![vc_json(a), vc_json(b)]))
        .collect();
    let cycle_json = match ctx.cycle {
        Some(vcs) => Value::Arr(vcs.iter().copied().map(vc_json).collect()),
        None => Value::Null,
    };
    // Headline latency summary over the deliveries the recorder still
    // holds: bucket-interpolated percentiles, not a raw bucket dump.
    let mut lat = wavesim_sim::stats::Histogram::new();
    for rec in records {
        if let TraceEvent::WormholeDeliver { latency, .. }
        | TraceEvent::CircuitDeliver { latency, .. } = rec.ev
        {
            lat.record(latency);
        }
    }
    Value::obj(vec![
        ("kind", "wavesim-postmortem".into()),
        ("version", 1u64.into()),
        ("at", ctx.now.into()),
        ("stall_age", ctx.stall_age.into()),
        ("in_flight_flits", ctx.in_flight.into()),
        (
            "latency",
            Value::obj(vec![
                ("delivered", lat.count().into()),
                ("mean", lat.mean().into()),
                ("p50", lat.p50().unwrap_or(0.0).into()),
                ("p95", lat.p95().unwrap_or(0.0).into()),
                ("p99", lat.p99().unwrap_or(0.0).into()),
            ]),
        ),
        (
            "wait_for",
            Value::obj(vec![
                ("edges", Value::Arr(edges_json)),
                ("cycle", cycle_json),
            ]),
        ),
        (
            "recorder",
            Value::obj(vec![
                ("total", total.into()),
                ("dropped", dropped.into()),
                (
                    "records",
                    Value::Arr(records.iter().map(record_to_json).collect()),
                ),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_shape_roundtrips() {
        let records = vec![TraceRecord {
            at: 100,
            seq: 7,
            ev: TraceEvent::ProbeBacktrack {
                circuit: 3,
                probe: 9,
                node: 4,
            },
        }];
        let edges = vec![((0u32, 0u16), (1u32, 1u16)), ((1, 1), (0, 0))];
        let cycle = vec![(0u32, 0u16), (1, 1)];
        let ctx = StallContext {
            edges: &edges,
            cycle: Some(&cycle),
            now: 20100,
            stall_age: 20000,
            in_flight: 37,
        };
        let doc = bundle(&records, 5, 6, &ctx);
        let reparsed = Value::parse(&doc.pretty()).expect("parses");
        assert_eq!(reparsed["kind"], "wavesim-postmortem");
        assert_eq!(reparsed["version"].as_u64(), Some(1));
        assert_eq!(reparsed["at"].as_u64(), Some(20100));
        assert_eq!(reparsed["wait_for"]["edges"].as_array().unwrap().len(), 2);
        assert_eq!(reparsed["wait_for"]["cycle"][1][1].as_u64(), Some(1));
        let rec = &reparsed["recorder"]["records"][0];
        assert_eq!(rec["type"], "probe_backtrack");
        assert_eq!(rec["at"].as_u64(), Some(100));
        assert_eq!(rec["seq"].as_u64(), Some(7));
        assert_eq!(rec["node"].as_u64(), Some(4));
        assert_eq!(reparsed["recorder"]["dropped"].as_u64(), Some(5));
    }

    #[test]
    fn no_cycle_is_null() {
        let ctx = StallContext {
            now: 1,
            stall_age: 2,
            in_flight: 3,
            ..StallContext::default()
        };
        let doc = bundle(&[], 0, 0, &ctx);
        assert_eq!(doc["wait_for"]["cycle"], Value::Null);
        assert!(doc["recorder"]["records"].as_array().unwrap().is_empty());
    }

    #[test]
    fn every_event_kind_serializes() {
        use crate::PlaneId;
        let evs = [
            TraceEvent::PlaneTick {
                plane: PlaneId::Data,
            },
            TraceEvent::ProbeLaunch {
                circuit: 1,
                src: 0,
                dest: 1,
                switch: 1,
                force: true,
            },
            TraceEvent::ProbeHop {
                circuit: 1,
                probe: 1,
                node: 1,
                link: 0,
                misroute: false,
            },
            TraceEvent::ProbeBacktrack {
                circuit: 1,
                probe: 1,
                node: 0,
            },
            TraceEvent::ProbePark {
                circuit: 1,
                probe: 1,
                node: 0,
                victim: 2,
            },
            TraceEvent::ProbeReached {
                circuit: 1,
                probe: 1,
                dest: 1,
                steps: 4,
            },
            TraceEvent::ProbeExhausted {
                circuit: 1,
                src: 0,
                switch: 2,
                force: false,
            },
            TraceEvent::CircuitEstablished {
                circuit: 1,
                src: 0,
                dest: 1,
                hops: 2,
            },
            TraceEvent::CircuitReleased { circuit: 1 },
            TraceEvent::CircuitAbandoned { circuit: 1 },
            TraceEvent::ForcedRelease { circuit: 1, src: 0 },
            TraceEvent::CacheHit {
                node: 0,
                dest: 1,
                circuit: 1,
            },
            TraceEvent::CacheMiss { node: 0, dest: 1 },
            TraceEvent::CacheEvict {
                node: 0,
                victim_dest: 1,
                circuit: 1,
            },
            TraceEvent::TransferStart {
                circuit: 1,
                msg: 1,
                src: 0,
                dest: 1,
                len_flits: 8,
            },
            TraceEvent::WormholeInject {
                msg: 1,
                src: 0,
                dest: 1,
                len_flits: 8,
            },
            TraceEvent::WormholeDeliver {
                msg: 1,
                src: 0,
                dest: 1,
                latency: 9,
            },
            TraceEvent::CircuitDeliver {
                msg: 1,
                src: 0,
                dest: 1,
                latency: 9,
            },
            TraceEvent::LaneFault { link: 3, switch: 1 },
            TraceEvent::LaneRepair { link: 3, switch: 1 },
            TraceEvent::CircuitBroken {
                circuit: 1,
                src: 0,
                dest: 1,
            },
            TraceEvent::EstablishRetry {
                circuit: 2,
                src: 0,
                dest: 1,
                attempt: 1,
            },
            TraceEvent::WatchdogTrip {
                rule: 1,
                value: 9000,
                limit: 4096,
            },
        ];
        for (i, ev) in evs.iter().enumerate() {
            let rec = TraceRecord {
                at: i as u64,
                seq: i as u64,
                ev: *ev,
            };
            let json = record_to_json(&rec);
            assert_eq!(json["type"].as_str(), Some(ev.kind()), "event {i}");
            let reparsed = Value::parse(&json.compact()).expect("valid json");
            assert_eq!(reparsed["at"].as_u64(), Some(i as u64));
        }
    }
}
