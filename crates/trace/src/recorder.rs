//! Record-retaining sinks: the fixed-capacity flight recorder and the
//! unbounded test sink.

use crate::{TraceRecord, TraceSink};

/// Fixed-capacity ring buffer over [`TraceRecord`]s.
///
/// The recorder pre-allocates its whole capacity up front and then never
/// allocates again: steady-state recording is a bounds-checked store plus
/// an index increment, consistent with the kernel's scratch-buffer
/// discipline. Once full, the oldest record is overwritten — a crashed or
/// stalled run always has the *last* `capacity` events, which is the part
/// a post-mortem needs.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<TraceRecord>,
    head: usize,
    total: u64,
    capacity: usize,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a flight recorder needs at least one slot");
        Self {
            buf: Vec::with_capacity(capacity),
            head: 0,
            total: 0,
            capacity,
        }
    }

    /// Retention capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for FlightRecorder {
    fn record(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
        }
        self.head = (self.head + 1) % self.capacity;
        self.total += 1;
    }

    /// Retained records, oldest first (unwrapping the ring).
    fn snapshot(&self) -> Vec<TraceRecord> {
        if self.buf.len() < self.capacity {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    fn dropped(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    fn total(&self) -> u64 {
        self.total
    }
}

/// Unbounded sink retaining every record — for tests, goldens, and small
/// diagnostic runs where completeness beats bounded memory.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    records: Vec<TraceRecord>,
}

impl VecSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded stream, in arrival order.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }

    fn record_many(&mut self, recs: &[TraceRecord]) {
        self.records.extend_from_slice(recs);
    }

    fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.clone()
    }

    fn total(&self) -> u64 {
        self.records.len() as u64
    }
}

/// Fans every record out to two sinks: a *primary* that answers the
/// snapshot/dropped/total queries (typically a [`FlightRecorder`] so the
/// post-mortem tail stays available) and a *secondary* that only consumes
/// (typically a [`crate::stream::JsonlSink`] streaming the full run to
/// disk). `finish` forwards to both and reports the first failure.
pub struct TeeSink {
    primary: Box<dyn TraceSink>,
    secondary: Box<dyn TraceSink>,
}

impl TeeSink {
    /// Tees records into `primary` (which answers queries) and `secondary`.
    #[must_use]
    pub fn new(primary: Box<dyn TraceSink>, secondary: Box<dyn TraceSink>) -> Self {
        Self { primary, secondary }
    }

    /// The query-answering primary sink.
    #[must_use]
    pub fn primary(&self) -> &dyn TraceSink {
        self.primary.as_ref()
    }

    /// The consume-only secondary sink.
    #[must_use]
    pub fn secondary(&self) -> &dyn TraceSink {
        self.secondary.as_ref()
    }
}

impl TraceSink for TeeSink {
    fn record(&mut self, rec: TraceRecord) {
        self.primary.record(rec);
        self.secondary.record(rec);
    }

    fn record_many(&mut self, recs: &[TraceRecord]) {
        self.primary.record_many(recs);
        self.secondary.record_many(recs);
    }

    fn snapshot(&self) -> Vec<TraceRecord> {
        self.primary.snapshot()
    }

    fn dropped(&self) -> u64 {
        self.primary.dropped()
    }

    fn total(&self) -> u64 {
        self.primary.total()
    }

    fn finish(&mut self) -> Result<(), String> {
        let a = self.primary.finish();
        let b = self.secondary.finish();
        a.and(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceEvent;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord {
            at: i,
            seq: i,
            ev: TraceEvent::CircuitReleased { circuit: i },
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut r = FlightRecorder::new(4);
        for i in 0..3 {
            r.record(rec(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        let snap = r.snapshot();
        assert_eq!(snap.iter().map(|r| r.seq).collect::<Vec<_>>(), [0, 1, 2]);
        for i in 3..10 {
            r.record(rec(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 10);
        assert_eq!(r.dropped(), 6);
        let snap = r.snapshot();
        assert_eq!(
            snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
            [6, 7, 8, 9],
            "last `capacity` records, oldest first"
        );
    }

    /// Wraparound property: for any capacity and record count, the
    /// snapshot is exactly the last `min(count, capacity)` records in
    /// order, and `dropped + len == total`.
    #[test]
    fn wraparound_property() {
        for capacity in [1usize, 2, 3, 7, 8, 64] {
            for count in [0u64, 1, 5, 7, 8, 9, 63, 64, 65, 200] {
                let mut r = FlightRecorder::new(capacity);
                for i in 0..count {
                    r.record(rec(i));
                }
                let snap = r.snapshot();
                let expect_len = (count as usize).min(capacity);
                assert_eq!(snap.len(), expect_len, "cap {capacity} count {count}");
                let first = count - expect_len as u64;
                for (k, rec) in snap.iter().enumerate() {
                    assert_eq!(rec.seq, first + k as u64, "cap {capacity} count {count}");
                }
                assert!(
                    snap.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
                    "snapshot must be in order"
                );
                assert_eq!(r.total(), count);
                assert_eq!(r.dropped() + r.len() as u64, r.total());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }

    #[test]
    fn tee_feeds_both_and_queries_primary() {
        let mut tee = TeeSink::new(Box::new(FlightRecorder::new(2)), Box::new(VecSink::new()));
        for i in 0..5 {
            tee.record(rec(i));
        }
        // Queries reflect the ring (primary)…
        assert_eq!(tee.total(), 5);
        assert_eq!(tee.dropped(), 3);
        assert_eq!(
            tee.snapshot().iter().map(|r| r.seq).collect::<Vec<_>>(),
            [3, 4]
        );
        // …while the secondary saw the full stream.
        assert_eq!(tee.secondary().total(), 5);
        assert!(tee.finish().is_ok());
    }

    #[test]
    fn vec_sink_keeps_everything() {
        let mut s = VecSink::new();
        for i in 0..100 {
            s.record(rec(i));
        }
        assert_eq!(s.records().len(), 100);
        assert_eq!(s.total(), 100);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.snapshot().len(), 100);
    }
}
