//! Lossless streaming JSONL capture.
//!
//! The flight recorder keeps the *last N* records; paper-scale runs need
//! the *whole* stream. [`JsonlSink`] writes one JSON object per line,
//! using the same schema as [`crate::postmortem::record_to_json`], so a
//! captured file round-trips back into [`TraceRecord`]s via
//! [`read_jsonl`].
//!
//! Memory stays bounded and the hot path stays cheap: `record` appends the
//! `Copy` record to an in-progress chunk, and full chunks are handed to a
//! dedicated writer thread over a bounded channel. Encoding and file I/O
//! happen entirely off the simulation thread; if the writer falls behind,
//! the bounded channel applies backpressure instead of growing without
//! limit. [`TraceSink::finish`] drains the queue and flushes the writer.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use wavesim_json::Value;

use crate::{PlaneId, TraceEvent, TraceRecord, TraceSink};

/// Records per chunk handed to the writer thread.
const CHUNK_RECORDS: usize = 8192;
/// Chunks the bounded queue may hold before the hot path blocks.
const QUEUE_CHUNKS: usize = 8;

/// Streaming JSONL trace sink: one line per record, written by a
/// background thread, bounded memory, lossless.
///
/// Retains nothing in memory (`snapshot` is empty); pair it with a ring
/// buffer via [`TeeSink`](crate::recorder::TeeSink) when the post-mortem
/// machinery also needs a tail snapshot.
pub struct JsonlSink<W: Write + Send + 'static> {
    tx: Option<SyncSender<Vec<TraceRecord>>>,
    handle: Option<JoinHandle<io::Result<W>>>,
    chunk: Vec<TraceRecord>,
    chunk_cap: usize,
    total: u64,
    lost: u64,
    error: Option<String>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and streams records to it.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(BufWriter::new(file)))
    }
}

impl<W: Write + Send + 'static> JsonlSink<W> {
    /// Streams records to `writer` with the default chunk size.
    pub fn new(writer: W) -> Self {
        Self::with_chunk(writer, CHUNK_RECORDS)
    }

    /// Streams records to `writer`, handing off every `chunk_cap` records.
    ///
    /// # Panics
    /// Panics if `chunk_cap` is zero.
    pub fn with_chunk(writer: W, chunk_cap: usize) -> Self {
        assert!(chunk_cap > 0, "chunk capacity must be positive");
        let (tx, rx) = sync_channel(QUEUE_CHUNKS);
        let handle = std::thread::spawn(move || writer_loop(writer, &rx));
        Self {
            tx: Some(tx),
            handle: Some(handle),
            chunk: Vec::with_capacity(chunk_cap),
            chunk_cap,
            total: 0,
            lost: 0,
            error: None,
        }
    }

    /// Hands the in-progress chunk to the writer thread.
    fn flush_chunk(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        if let Some(tx) = &self.tx {
            let full = std::mem::replace(&mut self.chunk, Vec::with_capacity(self.chunk_cap));
            if tx.send(full).is_err() {
                // The writer thread died (I/O error); the error surfaces on
                // finish. Stop sending and count what we could not persist.
                self.tx = None;
                self.lost += self.chunk_cap as u64;
            }
        } else {
            self.lost += self.chunk.len() as u64;
            self.chunk.clear();
        }
    }

    /// Stops the writer thread and collects its result.
    fn shutdown(&mut self) -> Result<Option<W>, String> {
        self.flush_chunk();
        drop(self.tx.take());
        let Some(handle) = self.handle.take() else {
            return match self.error.take() {
                Some(e) => Err(e),
                None => Ok(None),
            };
        };
        match handle.join() {
            Ok(Ok(w)) => {
                if self.lost > 0 {
                    Err(format!("trace stream lost {} records", self.lost))
                } else {
                    Ok(Some(w))
                }
            }
            Ok(Err(e)) => Err(format!("trace stream i/o error: {e}")),
            Err(_) => Err("trace stream writer thread panicked".into()),
        }
    }

    /// Finishes the stream and returns the underlying writer (tests use
    /// this to inspect an in-memory capture).
    pub fn finish_into(mut self) -> Result<W, String> {
        match self.shutdown() {
            Ok(Some(w)) => Ok(w),
            Ok(None) => Err("stream already finished".into()),
            Err(e) => Err(e),
        }
    }
}

impl<W: Write + Send + 'static> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: TraceRecord) {
        self.total += 1;
        self.chunk.push(rec);
        if self.chunk.len() >= self.chunk_cap {
            self.flush_chunk();
        }
    }

    fn dropped(&self) -> u64 {
        self.lost
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn finish(&mut self) -> Result<(), String> {
        let res = self.shutdown().map(|_| ());
        if let Err(e) = &res {
            self.error = Some(e.clone());
        }
        res
    }
}

impl<W: Write + Send + 'static> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        // Best effort: never panic in drop; finish() reports errors.
        let _ = self.shutdown();
    }
}

/// The writer thread: encodes chunks to JSONL and writes them out.
fn writer_loop<W: Write>(mut w: W, rx: &Receiver<Vec<TraceRecord>>) -> io::Result<W> {
    let mut text = String::with_capacity(64 * 1024);
    for chunk in rx {
        text.clear();
        for rec in &chunk {
            encode_record(&mut text, rec);
            text.push('\n');
        }
        w.write_all(text.as_bytes())?;
    }
    w.flush()?;
    Ok(w)
}

/// A field value the fast encoder knows how to append. Implemented for
/// the handful of primitive types [`TraceEvent`] fields use.
trait PushJson {
    fn push_json(self, buf: &mut String);
}

/// Appends `v` in decimal without going through `core::fmt` — the
/// formatting machinery costs ~3× the digits themselves, and the writer
/// thread encodes every record of a traced run.
fn push_u64(buf: &mut String, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // SAFETY-free: tmp[i..] is ASCII digits by construction.
    buf.push_str(std::str::from_utf8(&tmp[i..]).expect("ascii digits"));
}

impl PushJson for u64 {
    fn push_json(self, buf: &mut String) {
        push_u64(buf, self);
    }
}

impl PushJson for u32 {
    fn push_json(self, buf: &mut String) {
        push_u64(buf, u64::from(self));
    }
}

impl PushJson for u8 {
    fn push_json(self, buf: &mut String) {
        push_u64(buf, u64::from(self));
    }
}

impl PushJson for bool {
    fn push_json(self, buf: &mut String) {
        buf.push_str(if self { "true" } else { "false" });
    }
}

/// Appends `,"<name>":<value>` for each listed field binding; the JSON
/// key is the field's own name, matching `postmortem::record_to_json`.
macro_rules! push_fields {
    ($buf:expr $(, $field:ident)+ $(,)?) => {
        $(
            $buf.push_str(concat!(",\"", stringify!($field), "\":"));
            $field.push_json($buf);
        )+
    };
}

/// Appends one record as a compact JSON object (no trailing newline).
///
/// Byte-identical to `postmortem::record_to_json(rec).compact()` — the
/// hand-rolled encoder exists because the writer thread must keep up with
/// the full event rate of a traced run without allocating a [`Value`] tree
/// per record (and without paying `core::fmt` per integer).
pub fn encode_record(buf: &mut String, rec: &TraceRecord) {
    buf.push_str("{\"at\":");
    push_u64(buf, rec.at);
    buf.push_str(",\"seq\":");
    push_u64(buf, rec.seq);
    buf.push_str(",\"type\":\"");
    buf.push_str(rec.ev.kind());
    buf.push('"');
    match rec.ev {
        TraceEvent::PlaneTick { plane } => {
            buf.push_str(",\"plane\":\"");
            buf.push_str(plane.name());
            buf.push('"');
        }
        TraceEvent::ProbeLaunch {
            circuit,
            src,
            dest,
            switch,
            force,
        } => {
            push_fields!(buf, circuit, src, dest, switch, force);
        }
        TraceEvent::ProbeHop {
            circuit,
            probe,
            node,
            link,
            misroute,
        } => {
            push_fields!(buf, circuit, probe, node, link, misroute);
        }
        TraceEvent::ProbeBacktrack {
            circuit,
            probe,
            node,
        } => {
            push_fields!(buf, circuit, probe, node);
        }
        TraceEvent::ProbePark {
            circuit,
            probe,
            node,
            victim,
        } => {
            push_fields!(buf, circuit, probe, node, victim);
        }
        TraceEvent::ProbeReached {
            circuit,
            probe,
            dest,
            steps,
        } => {
            push_fields!(buf, circuit, probe, dest, steps);
        }
        TraceEvent::ProbeExhausted {
            circuit,
            src,
            switch,
            force,
        } => {
            push_fields!(buf, circuit, src, switch, force);
        }
        TraceEvent::CircuitEstablished {
            circuit,
            src,
            dest,
            hops,
        } => {
            push_fields!(buf, circuit, src, dest, hops);
        }
        TraceEvent::CircuitReleased { circuit } | TraceEvent::CircuitAbandoned { circuit } => {
            push_fields!(buf, circuit);
        }
        TraceEvent::ForcedRelease { circuit, src } => {
            push_fields!(buf, circuit, src);
        }
        TraceEvent::CacheHit {
            node,
            dest,
            circuit,
        } => {
            push_fields!(buf, node, dest, circuit);
        }
        TraceEvent::CacheMiss { node, dest } => {
            push_fields!(buf, node, dest);
        }
        TraceEvent::CacheEvict {
            node,
            victim_dest,
            circuit,
        } => {
            push_fields!(buf, node, victim_dest, circuit);
        }
        TraceEvent::TransferStart {
            circuit,
            msg,
            src,
            dest,
            len_flits,
        } => {
            push_fields!(buf, circuit, msg, src, dest, len_flits);
        }
        TraceEvent::WormholeInject {
            msg,
            src,
            dest,
            len_flits,
        } => {
            push_fields!(buf, msg, src, dest, len_flits);
        }
        TraceEvent::WormholeDeliver {
            msg,
            src,
            dest,
            latency,
        }
        | TraceEvent::CircuitDeliver {
            msg,
            src,
            dest,
            latency,
        } => {
            push_fields!(buf, msg, src, dest, latency);
        }
        TraceEvent::LaneFault { link, switch } | TraceEvent::LaneRepair { link, switch } => {
            push_fields!(buf, link, switch);
        }
        TraceEvent::CircuitBroken { circuit, src, dest } => {
            push_fields!(buf, circuit, src, dest);
        }
        TraceEvent::EstablishRetry {
            circuit,
            src,
            dest,
            attempt,
        } => {
            push_fields!(buf, circuit, src, dest, attempt);
        }
    }
    buf.push('}');
}

/// Parses one JSONL object back into a [`TraceRecord`].
pub fn record_from_json(v: &Value) -> Result<TraceRecord, String> {
    let at = num(v, "at")?;
    let seq = num(v, "seq")?;
    let kind = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or("missing `type` field")?;
    let ev = match kind {
        "plane_tick" => TraceEvent::PlaneTick {
            plane: plane_from_name(txt(v, "plane")?)?,
        },
        "probe_launch" => TraceEvent::ProbeLaunch {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            switch: num8(v, "switch")?,
            force: flag(v, "force")?,
        },
        "probe_hop" => TraceEvent::ProbeHop {
            circuit: num(v, "circuit")?,
            probe: num(v, "probe")?,
            node: num32(v, "node")?,
            link: num32(v, "link")?,
            misroute: flag(v, "misroute")?,
        },
        "probe_backtrack" => TraceEvent::ProbeBacktrack {
            circuit: num(v, "circuit")?,
            probe: num(v, "probe")?,
            node: num32(v, "node")?,
        },
        "probe_park" => TraceEvent::ProbePark {
            circuit: num(v, "circuit")?,
            probe: num(v, "probe")?,
            node: num32(v, "node")?,
            victim: num(v, "victim")?,
        },
        "probe_reached" => TraceEvent::ProbeReached {
            circuit: num(v, "circuit")?,
            probe: num(v, "probe")?,
            dest: num32(v, "dest")?,
            steps: num(v, "steps")?,
        },
        "probe_exhausted" => TraceEvent::ProbeExhausted {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            switch: num8(v, "switch")?,
            force: flag(v, "force")?,
        },
        "circuit_established" => TraceEvent::CircuitEstablished {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            hops: num32(v, "hops")?,
        },
        "circuit_released" => TraceEvent::CircuitReleased {
            circuit: num(v, "circuit")?,
        },
        "circuit_abandoned" => TraceEvent::CircuitAbandoned {
            circuit: num(v, "circuit")?,
        },
        "forced_release" => TraceEvent::ForcedRelease {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
        },
        "cache_hit" => TraceEvent::CacheHit {
            node: num32(v, "node")?,
            dest: num32(v, "dest")?,
            circuit: num(v, "circuit")?,
        },
        "cache_miss" => TraceEvent::CacheMiss {
            node: num32(v, "node")?,
            dest: num32(v, "dest")?,
        },
        "cache_evict" => TraceEvent::CacheEvict {
            node: num32(v, "node")?,
            victim_dest: num32(v, "victim_dest")?,
            circuit: num(v, "circuit")?,
        },
        "transfer_start" => TraceEvent::TransferStart {
            circuit: num(v, "circuit")?,
            msg: num(v, "msg")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            len_flits: num32(v, "len_flits")?,
        },
        "wormhole_inject" => TraceEvent::WormholeInject {
            msg: num(v, "msg")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            len_flits: num32(v, "len_flits")?,
        },
        "wormhole_deliver" => TraceEvent::WormholeDeliver {
            msg: num(v, "msg")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            latency: num(v, "latency")?,
        },
        "circuit_deliver" => TraceEvent::CircuitDeliver {
            msg: num(v, "msg")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            latency: num(v, "latency")?,
        },
        "lane_fault" => TraceEvent::LaneFault {
            link: num32(v, "link")?,
            switch: num8(v, "switch")?,
        },
        "lane_repair" => TraceEvent::LaneRepair {
            link: num32(v, "link")?,
            switch: num8(v, "switch")?,
        },
        "circuit_broken" => TraceEvent::CircuitBroken {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
        },
        "establish_retry" => TraceEvent::EstablishRetry {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            attempt: num8(v, "attempt")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok(TraceRecord { at, seq, ev })
}

/// Parses a whole JSONL text back into records, oldest first.
///
/// Blank lines are skipped; any malformed line fails the whole parse with
/// its 1-based line number.
pub fn read_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(record_from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Reads and parses a JSONL trace file.
pub fn read_jsonl_file(path: &Path) -> Result<Vec<TraceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_jsonl(&text)
}

fn plane_from_name(name: &str) -> Result<PlaneId, String> {
    match name {
        "wormhole plane" => Ok(PlaneId::Data),
        "control plane" => Ok(PlaneId::Control),
        "circuit plane" => Ok(PlaneId::Circuit),
        other => Err(format!("unknown plane `{other}`")),
    }
}

fn num(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn num32(v: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(num(v, key)?).map_err(|_| format!("field `{key}` out of u32 range"))
}

fn num8(v: &Value, key: &str) -> Result<u8, String> {
    u8::try_from(num(v, key)?).map_err(|_| format!("field `{key}` out of u8 range"))
}

fn flag(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing or non-bool field `{key}`"))
}

fn txt<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postmortem::record_to_json;

    /// One record of every event kind, with distinctive field values.
    fn sample_records() -> Vec<TraceRecord> {
        let evs = vec![
            TraceEvent::PlaneTick {
                plane: PlaneId::Circuit,
            },
            TraceEvent::ProbeLaunch {
                circuit: 9,
                src: 3,
                dest: 12,
                switch: 2,
                force: true,
            },
            TraceEvent::ProbeHop {
                circuit: 9,
                probe: 4,
                node: 7,
                link: 21,
                misroute: true,
            },
            TraceEvent::ProbeBacktrack {
                circuit: 9,
                probe: 4,
                node: 3,
            },
            TraceEvent::ProbePark {
                circuit: 9,
                probe: 4,
                node: 7,
                victim: 2,
            },
            TraceEvent::ProbeReached {
                circuit: 9,
                probe: 4,
                dest: 12,
                steps: 11,
            },
            TraceEvent::ProbeExhausted {
                circuit: 9,
                src: 3,
                switch: 2,
                force: false,
            },
            TraceEvent::CircuitEstablished {
                circuit: 9,
                src: 3,
                dest: 12,
                hops: 5,
            },
            TraceEvent::CircuitReleased { circuit: 9 },
            TraceEvent::CircuitAbandoned { circuit: 9 },
            TraceEvent::ForcedRelease { circuit: 9, src: 3 },
            TraceEvent::CacheHit {
                node: 3,
                dest: 12,
                circuit: 9,
            },
            TraceEvent::CacheMiss { node: 3, dest: 12 },
            TraceEvent::CacheEvict {
                node: 3,
                victim_dest: 8,
                circuit: 5,
            },
            TraceEvent::TransferStart {
                circuit: 9,
                msg: 77,
                src: 3,
                dest: 12,
                len_flits: 32,
            },
            TraceEvent::WormholeInject {
                msg: 78,
                src: 3,
                dest: 12,
                len_flits: 32,
            },
            TraceEvent::WormholeDeliver {
                msg: 78,
                src: 3,
                dest: 12,
                latency: 140,
            },
            TraceEvent::CircuitDeliver {
                msg: 77,
                src: 3,
                dest: 12,
                latency: 90,
            },
            TraceEvent::LaneFault {
                link: 21,
                switch: 2,
            },
            TraceEvent::LaneRepair {
                link: 21,
                switch: 2,
            },
            TraceEvent::CircuitBroken {
                circuit: 9,
                src: 3,
                dest: 12,
            },
            TraceEvent::EstablishRetry {
                circuit: 10,
                src: 3,
                dest: 12,
                attempt: 1,
            },
        ];
        evs.into_iter()
            .enumerate()
            .map(|(i, ev)| TraceRecord {
                at: 100 + i as u64,
                seq: i as u64,
                ev,
            })
            .collect()
    }

    #[test]
    fn fast_encoder_matches_postmortem_json() {
        for rec in sample_records() {
            let mut fast = String::new();
            encode_record(&mut fast, &rec);
            assert_eq!(fast, record_to_json(&rec).compact(), "{}", rec.ev.kind());
        }
    }

    #[test]
    fn every_kind_round_trips() {
        let recs = sample_records();
        let mut text = String::new();
        for rec in &recs {
            encode_record(&mut text, rec);
            text.push('\n');
        }
        let back = read_jsonl(&text).expect("parse");
        assert_eq!(back, recs);
    }

    #[test]
    fn sink_streams_all_records_through_small_chunks() {
        let recs = sample_records();
        let mut sink = JsonlSink::with_chunk(Vec::new(), 3);
        for rec in &recs {
            sink.record(*rec);
        }
        assert_eq!(sink.total(), recs.len() as u64);
        let bytes = sink.finish_into().expect("finish");
        let back = read_jsonl(std::str::from_utf8(&bytes).unwrap()).expect("parse");
        assert_eq!(back, recs);
    }

    #[test]
    fn trait_finish_flushes_and_is_idempotent() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(TraceRecord {
            at: 1,
            seq: 0,
            ev: TraceEvent::CircuitReleased { circuit: 1 },
        });
        assert!(TraceSink::finish(&mut sink).is_ok());
        assert!(TraceSink::finish(&mut sink).is_ok());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn reader_rejects_garbage_with_line_number() {
        let err = read_jsonl("{\"at\":1,\"seq\":0,\"type\":\"nope\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("unknown event kind"), "{err}");
        let err = read_jsonl("not json").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn reader_skips_blank_lines() {
        let rec = TraceRecord {
            at: 4,
            seq: 0,
            ev: TraceEvent::CacheMiss { node: 1, dest: 2 },
        };
        let mut text = String::from("\n");
        encode_record(&mut text, &rec);
        text.push_str("\n\n");
        assert_eq!(read_jsonl(&text).unwrap(), vec![rec]);
    }
}
