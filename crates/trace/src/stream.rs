//! Lossless streaming trace capture (JSONL and binary columnar).
//!
//! The flight recorder keeps the *last N* records; paper-scale runs need
//! the *whole* stream. This module provides the streaming machinery: the
//! hot path appends `Copy` records to an in-progress chunk, and full
//! chunks are handed to a dedicated writer thread over a bounded channel.
//! Encoding and file I/O happen entirely off the simulation thread; if
//! the writer falls behind, the bounded channel applies backpressure
//! instead of growing without limit. [`TraceSink::finish`] drains the
//! queue and flushes the writer.
//!
//! Two encoders share that plumbing through [`ChunkEncoder`]:
//!
//! * [`JsonlSink`] writes one JSON object per line, using the same schema
//!   as [`crate::postmortem::record_to_json`], so a captured file
//!   round-trips back into [`TraceRecord`]s via [`read_jsonl`];
//! * [`ColumnarSink`] writes the compact binary frame format of
//!   [`crate::columnar`] — typically under a tenth of the JSONL bytes —
//!   which round-trips via [`crate::columnar::read_columnar`].
//!
//! Reading is format-agnostic: [`read_trace_file`] sniffs the
//! [`crate::columnar::MAGIC`] prefix ([`TraceFormat::detect`]) and every
//! decoder is a [`TraceReader`], so the analyzer and the CLI never care
//! which format a capture used.
//!
//! Saturated runs can cap bytes deterministically with
//! [`StreamSink::with_sampling`]: bulk kinds (tick markers, per-hop probe
//! movement, cache lookups) keep 1-in-N records by a counter over the
//! deterministic record order, while every lifecycle and delivery event
//! is always kept — so spans, flows and fault windows stay exact and the
//! sampled stream is identical at any shard count.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::marker::PhantomData;
use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use wavesim_json::Value;

use crate::columnar::FrameEncoder;
use crate::{PlaneId, TraceEvent, TraceRecord, TraceSink};

/// Records per chunk handed to the writer thread (also the columnar
/// frame size).
pub const CHUNK_RECORDS: usize = 8192;
/// Chunks the bounded queue may hold before the hot path blocks.
const QUEUE_CHUNKS: usize = 8;

// ---------------------------------------------------------------------
// Chunk encoders
// ---------------------------------------------------------------------

/// Turns chunks of records into bytes on the writer thread.
///
/// Implementations run off the simulation thread and may keep scratch
/// state across chunks (the columnar encoder reuses its column buffers).
pub trait ChunkEncoder: Send + 'static {
    /// Appends the stream header (file magic) once, before any chunk.
    fn header(&mut self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Appends the encoding of `recs` to `out`.
    fn encode_chunk(&mut self, recs: &[TraceRecord], out: &mut Vec<u8>);
}

/// [`ChunkEncoder`] emitting one compact JSON object per line.
#[derive(Default)]
pub struct JsonlEncoder {
    text: String,
}

impl ChunkEncoder for JsonlEncoder {
    fn encode_chunk(&mut self, recs: &[TraceRecord], out: &mut Vec<u8>) {
        self.text.clear();
        for rec in recs {
            encode_record(&mut self.text, rec);
            self.text.push('\n');
        }
        out.extend_from_slice(self.text.as_bytes());
    }
}

// ---------------------------------------------------------------------
// The streaming sink
// ---------------------------------------------------------------------

/// Streaming trace sink: chunks of records encoded and written by a
/// background thread, bounded memory, lossless (unless sampling is
/// requested explicitly).
///
/// Retains nothing in memory (`snapshot` is empty); pair it with a ring
/// buffer via [`TeeSink`](crate::recorder::TeeSink) when the post-mortem
/// machinery also needs a tail snapshot. Use the [`JsonlSink`] /
/// [`ColumnarSink`] aliases rather than naming the encoder directly.
pub struct StreamSink<W: Write + Send + 'static, E: ChunkEncoder> {
    tx: Option<SyncSender<Vec<TraceRecord>>>,
    handle: Option<JoinHandle<io::Result<W>>>,
    chunk: Vec<TraceRecord>,
    chunk_cap: usize,
    total: u64,
    lost: u64,
    /// Keep 1-in-N bulk-kind records; 0 or 1 = keep everything.
    sample_every: u64,
    /// Bulk-kind records seen (the deterministic sampling clock).
    bulk_seen: u64,
    error: Option<String>,
    _enc: PhantomData<fn() -> E>,
}

/// Streaming JSONL sink: one JSON line per record.
pub type JsonlSink<W> = StreamSink<W, JsonlEncoder>;

/// Streaming binary columnar sink: [`crate::columnar`] frames.
pub type ColumnarSink<W> = StreamSink<W, FrameEncoder>;

impl<E: ChunkEncoder + Default> StreamSink<BufWriter<File>, E> {
    /// Creates (truncating) `path` and streams records to it.
    ///
    /// # Errors
    /// Fails when the file cannot be created.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(BufWriter::new(file)))
    }
}

impl<W: Write + Send + 'static, E: ChunkEncoder + Default> StreamSink<W, E> {
    /// Streams records to `writer` with the default chunk size.
    pub fn new(writer: W) -> Self {
        Self::with_chunk(writer, CHUNK_RECORDS)
    }

    /// Streams records to `writer`, handing off every `chunk_cap` records.
    ///
    /// # Panics
    /// Panics if `chunk_cap` is zero.
    pub fn with_chunk(writer: W, chunk_cap: usize) -> Self {
        Self::with_encoder(writer, E::default(), chunk_cap)
    }
}

impl<W: Write + Send + 'static, E: ChunkEncoder> StreamSink<W, E> {
    /// Streams records through an explicitly constructed encoder — the
    /// entry point for stateful encoders that carry shared handles (the
    /// live-analytics fold rides this with an `io::sink()` writer).
    ///
    /// # Panics
    /// Panics if `chunk_cap` is zero.
    pub fn with_encoder(writer: W, enc: E, chunk_cap: usize) -> Self {
        assert!(chunk_cap > 0, "chunk capacity must be positive");
        let (tx, rx) = sync_channel(QUEUE_CHUNKS);
        let handle = std::thread::spawn(move || writer_loop(writer, enc, &rx));
        Self {
            tx: Some(tx),
            handle: Some(handle),
            chunk: Vec::with_capacity(chunk_cap),
            chunk_cap,
            total: 0,
            lost: 0,
            sample_every: 0,
            bulk_seen: 0,
            error: None,
            _enc: PhantomData,
        }
    }

    /// Keeps only 1-in-`every` records of the bulk kinds (see
    /// [`is_bulk_kind`]); lifecycle and delivery events are always kept.
    ///
    /// Sampling is a counter over the deterministic record order, so the
    /// kept set — and therefore the captured bytes — is identical across
    /// reruns and shard counts. `every` of 0 or 1 disables sampling.
    #[must_use]
    pub fn with_sampling(mut self, every: u64) -> Self {
        self.sample_every = every;
        self
    }
}

impl<W: Write + Send + 'static, E: ChunkEncoder> StreamSink<W, E> {
    /// Hands the in-progress chunk to the writer thread.
    fn flush_chunk(&mut self) {
        if self.chunk.is_empty() {
            return;
        }
        if let Some(tx) = &self.tx {
            let full = std::mem::replace(&mut self.chunk, Vec::with_capacity(self.chunk_cap));
            if tx.send(full).is_err() {
                // The writer thread died (I/O error); the error surfaces on
                // finish. Stop sending and count what we could not persist.
                self.tx = None;
                self.lost += self.chunk_cap as u64;
            }
        } else {
            self.lost += self.chunk.len() as u64;
            self.chunk.clear();
        }
    }

    /// Stops the writer thread and collects its result.
    fn shutdown(&mut self) -> Result<Option<W>, String> {
        self.flush_chunk();
        drop(self.tx.take());
        let Some(handle) = self.handle.take() else {
            return match self.error.take() {
                Some(e) => Err(e),
                None => Ok(None),
            };
        };
        match handle.join() {
            Ok(Ok(w)) => {
                if self.lost > 0 {
                    Err(format!("trace stream lost {} records", self.lost))
                } else {
                    Ok(Some(w))
                }
            }
            Ok(Err(e)) => Err(format!("trace stream i/o error: {e}")),
            Err(_) => Err("trace stream writer thread panicked".into()),
        }
    }

    /// Finishes the stream and returns the underlying writer (tests use
    /// this to inspect an in-memory capture).
    ///
    /// # Errors
    /// Fails when the writer thread hit an I/O error, records were lost,
    /// or the stream already finished.
    pub fn finish_into(mut self) -> Result<W, String> {
        match self.shutdown() {
            Ok(Some(w)) => Ok(w),
            Ok(None) => Err("stream already finished".into()),
            Err(e) => Err(e),
        }
    }
}

/// True for the high-volume kinds [`StreamSink::with_sampling`] thins:
/// per-cycle tick markers, per-hop probe movement, and cache lookups.
/// Everything else (circuit lifecycle, transfers, deliveries, faults) is
/// always captured so span and flow analytics stay exact under sampling.
#[must_use]
pub fn is_bulk_kind(ev: &TraceEvent) -> bool {
    matches!(
        ev,
        TraceEvent::PlaneTick { .. }
            | TraceEvent::ProbeHop { .. }
            | TraceEvent::ProbeBacktrack { .. }
            | TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
    )
}

impl<W: Write + Send + 'static, E: ChunkEncoder> TraceSink for StreamSink<W, E> {
    fn record(&mut self, rec: TraceRecord) {
        self.total += 1;
        if self.sample_every > 1 && is_bulk_kind(&rec.ev) {
            let keep = self.bulk_seen.is_multiple_of(self.sample_every);
            self.bulk_seen += 1;
            if !keep {
                return;
            }
        }
        self.chunk.push(rec);
        if self.chunk.len() >= self.chunk_cap {
            self.flush_chunk();
        }
    }

    fn record_many(&mut self, recs: &[TraceRecord]) {
        if self.sample_every > 1 {
            for rec in recs {
                self.record(*rec);
            }
            return;
        }
        self.total += recs.len() as u64;
        let mut rest = recs;
        while !rest.is_empty() {
            let take = (self.chunk_cap - self.chunk.len()).min(rest.len());
            self.chunk.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.chunk.len() >= self.chunk_cap {
                self.flush_chunk();
            }
        }
    }

    fn dropped(&self) -> u64 {
        self.lost
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn finish(&mut self) -> Result<(), String> {
        let res = self.shutdown().map(|_| ());
        if let Err(e) = &res {
            self.error = Some(e.clone());
        }
        res
    }
}

impl<W: Write + Send + 'static, E: ChunkEncoder> Drop for StreamSink<W, E> {
    fn drop(&mut self) {
        // Best effort: never panic in drop; finish() reports errors.
        let _ = self.shutdown();
    }
}

/// The writer thread: encodes chunks and writes them out.
fn writer_loop<W: Write, E: ChunkEncoder>(
    mut w: W,
    mut enc: E,
    rx: &Receiver<Vec<TraceRecord>>,
) -> io::Result<W> {
    let mut bytes = Vec::with_capacity(64 * 1024);
    enc.header(&mut bytes);
    w.write_all(&bytes)?;
    for chunk in rx {
        bytes.clear();
        enc.encode_chunk(&chunk, &mut bytes);
        w.write_all(&bytes)?;
    }
    w.flush()?;
    Ok(w)
}

// ---------------------------------------------------------------------
// Format detection and the reader trait
// ---------------------------------------------------------------------

/// On-disk encoding of a trace capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (`{"at":...`).
    Jsonl,
    /// Binary columnar frames behind the `WSTRACE1` magic.
    Columnar,
}

impl TraceFormat {
    /// Sniffs the format from a capture's leading bytes: the columnar
    /// magic wins, anything else is treated as JSONL.
    #[must_use]
    pub fn detect(bytes: &[u8]) -> Self {
        if bytes.starts_with(&crate::columnar::MAGIC) {
            TraceFormat::Columnar
        } else {
            TraceFormat::Jsonl
        }
    }
}

/// A streaming decoder over a trace capture, format-agnostic.
///
/// Both [`JsonlReader`] and [`crate::columnar::ColumnarReader`] implement
/// this, so consumers (the analyzer, the converter, the window series)
/// never branch on format past the initial sniff.
pub trait TraceReader {
    /// The next record, `None` at end of stream. After an `Err` the
    /// reader is done (subsequent calls return `None`).
    fn next_record(&mut self) -> Option<Result<TraceRecord, String>>;

    /// Drains the reader into a vector, oldest first.
    ///
    /// # Errors
    /// Fails on the first malformed record.
    fn read_all(&mut self) -> Result<Vec<TraceRecord>, String> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record() {
            out.push(rec?);
        }
        Ok(out)
    }
}

/// Streaming decoder over JSONL text: one record per non-blank line.
pub struct JsonlReader<'a> {
    lines: std::str::Lines<'a>,
    line_no: usize,
    failed: bool,
}

impl<'a> JsonlReader<'a> {
    /// A reader over `text`.
    #[must_use]
    pub fn new(text: &'a str) -> Self {
        Self {
            lines: text.lines(),
            line_no: 0,
            failed: false,
        }
    }
}

impl TraceReader for JsonlReader<'_> {
    fn next_record(&mut self) -> Option<Result<TraceRecord, String>> {
        if self.failed {
            return None;
        }
        loop {
            let line = self.lines.next()?;
            self.line_no += 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let res = Value::parse(line)
                .map_err(|e| format!("line {}: {e}", self.line_no))
                .and_then(|v| {
                    record_from_json(&v).map_err(|e| format!("line {}: {e}", self.line_no))
                });
            if res.is_err() {
                self.failed = true;
            }
            return Some(res);
        }
    }
}

/// Decodes an in-memory capture of either format, oldest first.
///
/// # Errors
/// Fails on malformed content (or non-UTF-8 bytes without the columnar
/// magic).
pub fn read_trace_bytes(bytes: &[u8]) -> Result<Vec<TraceRecord>, String> {
    match TraceFormat::detect(bytes) {
        TraceFormat::Columnar => crate::columnar::read_columnar(bytes),
        TraceFormat::Jsonl => {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| "trace is neither columnar (no magic) nor UTF-8 JSONL".to_string())?;
            read_jsonl(text)
        }
    }
}

/// Reads and decodes a trace file, auto-detecting its format.
///
/// # Errors
/// Fails when the file cannot be read or its content is malformed.
pub fn read_trace_file(path: &Path) -> Result<Vec<TraceRecord>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_trace_bytes(&bytes)
}

// ---------------------------------------------------------------------
// Incremental readers over io::Read sources
// ---------------------------------------------------------------------

/// A format-agnostic incremental decoder over any byte source.
///
/// Where [`read_trace_file`] materializes the whole capture,
/// this sniffs the format from the leading bytes and then yields records
/// one at a time — JSONL line by line, columnar frame by frame — so peak
/// memory is one frame (plus the read window), whatever the capture size.
/// `convert-trace` and `analyze` run on this.
pub struct StreamingReader<R: io::Read> {
    inner: StreamingInner<R>,
    failed: bool,
}

/// The sniffed leading bytes chained back in front of the source.
type Resumed<R> = io::Chain<io::Cursor<Vec<u8>>, R>;

enum StreamingInner<R: io::Read> {
    Jsonl {
        src: io::BufReader<Resumed<R>>,
        line: String,
        line_no: usize,
    },
    Columnar {
        frames: crate::columnar::FrameStream<Resumed<R>>,
        frame: Vec<TraceRecord>,
        next: usize,
    },
}

impl<R: io::Read> StreamingReader<R> {
    /// Sniffs the format from `src`'s first bytes and builds the matching
    /// incremental decoder.
    ///
    /// # Errors
    /// Fails when the source cannot be read at all.
    pub fn new(mut src: R) -> Result<Self, String> {
        use std::io::Read as _;
        // Pull just enough bytes to check for the columnar magic; hand
        // anything that is not the magic back to the line reader.
        let mut head = vec![0u8; crate::columnar::MAGIC.len()];
        let mut got = 0;
        while got < head.len() {
            match src.read(&mut head[got..]) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("trace stream read: {e}")),
            }
        }
        head.truncate(got);
        let inner = if TraceFormat::detect(&head) == TraceFormat::Columnar {
            StreamingInner::Columnar {
                frames: crate::columnar::FrameStream::new(io::Cursor::new(Vec::new()).chain(src)),
                frame: Vec::new(),
                next: 0,
            }
        } else {
            StreamingInner::Jsonl {
                src: io::BufReader::new(io::Cursor::new(head).chain(src)),
                line: String::new(),
                line_no: 0,
            }
        };
        Ok(Self {
            inner,
            failed: false,
        })
    }

    /// The sniffed source format.
    #[must_use]
    pub fn format(&self) -> TraceFormat {
        match self.inner {
            StreamingInner::Jsonl { .. } => TraceFormat::Jsonl,
            StreamingInner::Columnar { .. } => TraceFormat::Columnar,
        }
    }
}

impl<R: io::Read> TraceReader for StreamingReader<R> {
    fn next_record(&mut self) -> Option<Result<TraceRecord, String>> {
        if self.failed {
            return None;
        }
        let res = match &mut self.inner {
            StreamingInner::Jsonl { src, line, line_no } => loop {
                use std::io::BufRead as _;
                line.clear();
                match src.read_line(line) {
                    Ok(0) => return None,
                    Ok(_) => {}
                    Err(e) => break Err(format!("line {}: read error: {e}", *line_no + 1)),
                }
                *line_no += 1;
                let text = line.trim();
                if text.is_empty() {
                    continue;
                }
                break Value::parse(text)
                    .map_err(|e| format!("line {line_no}: {e}"))
                    .and_then(|v| {
                        record_from_json(&v).map_err(|e| format!("line {line_no}: {e}"))
                    });
            },
            StreamingInner::Columnar {
                frames,
                frame,
                next,
            } => {
                if *next >= frame.len() {
                    match frames.next_frame(frame) {
                        Ok(true) => *next = 0,
                        Ok(false) => return None,
                        Err(e) => {
                            self.failed = true;
                            return Some(Err(e));
                        }
                    }
                }
                let rec = frame[*next];
                *next += 1;
                return Some(Ok(rec));
            }
        };
        if res.is_err() {
            self.failed = true;
        }
        Some(res)
    }
}

/// Opens `path` as an incremental [`StreamingReader`] (auto-detected
/// format, bounded memory).
///
/// # Errors
/// Fails when the file cannot be opened.
pub fn stream_trace_file(path: &Path) -> Result<StreamingReader<File>, String> {
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    StreamingReader::new(file)
}

// ---------------------------------------------------------------------
// JSONL encode/decode
// ---------------------------------------------------------------------

/// A field value the fast encoder knows how to append. Implemented for
/// the handful of primitive types [`TraceEvent`] fields use.
trait PushJson {
    fn push_json(self, buf: &mut String);
}

/// Appends `v` in decimal without going through `core::fmt` — the
/// formatting machinery costs ~3× the digits themselves, and the writer
/// thread encodes every record of a traced run.
fn push_u64(buf: &mut String, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // SAFETY-free: tmp[i..] is ASCII digits by construction.
    buf.push_str(std::str::from_utf8(&tmp[i..]).expect("ascii digits"));
}

impl PushJson for u64 {
    fn push_json(self, buf: &mut String) {
        push_u64(buf, self);
    }
}

impl PushJson for u32 {
    fn push_json(self, buf: &mut String) {
        push_u64(buf, u64::from(self));
    }
}

impl PushJson for u8 {
    fn push_json(self, buf: &mut String) {
        push_u64(buf, u64::from(self));
    }
}

impl PushJson for bool {
    fn push_json(self, buf: &mut String) {
        buf.push_str(if self { "true" } else { "false" });
    }
}

/// Appends `,"<name>":<value>` for each listed field binding; the JSON
/// key is the field's own name, matching `postmortem::record_to_json`.
macro_rules! push_fields {
    ($buf:expr $(, $field:ident)+ $(,)?) => {
        $(
            $buf.push_str(concat!(",\"", stringify!($field), "\":"));
            $field.push_json($buf);
        )+
    };
}

/// Appends one record as a compact JSON object (no trailing newline).
///
/// Byte-identical to `postmortem::record_to_json(rec).compact()` — the
/// hand-rolled encoder exists because the writer thread must keep up with
/// the full event rate of a traced run without allocating a [`Value`] tree
/// per record (and without paying `core::fmt` per integer).
pub fn encode_record(buf: &mut String, rec: &TraceRecord) {
    buf.push_str("{\"at\":");
    push_u64(buf, rec.at);
    buf.push_str(",\"seq\":");
    push_u64(buf, rec.seq);
    buf.push_str(",\"type\":\"");
    buf.push_str(rec.ev.kind());
    buf.push('"');
    match rec.ev {
        TraceEvent::PlaneTick { plane } => {
            buf.push_str(",\"plane\":\"");
            buf.push_str(plane.name());
            buf.push('"');
        }
        TraceEvent::ProbeLaunch {
            circuit,
            src,
            dest,
            switch,
            force,
        } => {
            push_fields!(buf, circuit, src, dest, switch, force);
        }
        TraceEvent::ProbeHop {
            circuit,
            probe,
            node,
            link,
            misroute,
        } => {
            push_fields!(buf, circuit, probe, node, link, misroute);
        }
        TraceEvent::ProbeBacktrack {
            circuit,
            probe,
            node,
        } => {
            push_fields!(buf, circuit, probe, node);
        }
        TraceEvent::ProbePark {
            circuit,
            probe,
            node,
            victim,
        } => {
            push_fields!(buf, circuit, probe, node, victim);
        }
        TraceEvent::ProbeReached {
            circuit,
            probe,
            dest,
            steps,
        } => {
            push_fields!(buf, circuit, probe, dest, steps);
        }
        TraceEvent::ProbeExhausted {
            circuit,
            src,
            switch,
            force,
        } => {
            push_fields!(buf, circuit, src, switch, force);
        }
        TraceEvent::CircuitEstablished {
            circuit,
            src,
            dest,
            hops,
        } => {
            push_fields!(buf, circuit, src, dest, hops);
        }
        TraceEvent::CircuitReleased { circuit } | TraceEvent::CircuitAbandoned { circuit } => {
            push_fields!(buf, circuit);
        }
        TraceEvent::ForcedRelease { circuit, src } => {
            push_fields!(buf, circuit, src);
        }
        TraceEvent::CacheHit {
            node,
            dest,
            circuit,
        } => {
            push_fields!(buf, node, dest, circuit);
        }
        TraceEvent::CacheMiss { node, dest } => {
            push_fields!(buf, node, dest);
        }
        TraceEvent::CacheEvict {
            node,
            victim_dest,
            circuit,
        } => {
            push_fields!(buf, node, victim_dest, circuit);
        }
        TraceEvent::TransferStart {
            circuit,
            msg,
            src,
            dest,
            len_flits,
        } => {
            push_fields!(buf, circuit, msg, src, dest, len_flits);
        }
        TraceEvent::WormholeInject {
            msg,
            src,
            dest,
            len_flits,
        } => {
            push_fields!(buf, msg, src, dest, len_flits);
        }
        TraceEvent::WormholeDeliver {
            msg,
            src,
            dest,
            latency,
        }
        | TraceEvent::CircuitDeliver {
            msg,
            src,
            dest,
            latency,
        } => {
            push_fields!(buf, msg, src, dest, latency);
        }
        TraceEvent::LaneFault { link, switch } | TraceEvent::LaneRepair { link, switch } => {
            push_fields!(buf, link, switch);
        }
        TraceEvent::CircuitBroken { circuit, src, dest } => {
            push_fields!(buf, circuit, src, dest);
        }
        TraceEvent::EstablishRetry {
            circuit,
            src,
            dest,
            attempt,
        } => {
            push_fields!(buf, circuit, src, dest, attempt);
        }
        TraceEvent::WatchdogTrip { rule, value, limit } => {
            push_fields!(buf, rule, value, limit);
        }
    }
    buf.push('}');
}

/// Parses one JSONL object back into a [`TraceRecord`].
///
/// # Errors
/// Fails on a missing/unknown `type` or missing/mistyped fields.
pub fn record_from_json(v: &Value) -> Result<TraceRecord, String> {
    let at = num(v, "at")?;
    let seq = num(v, "seq")?;
    let kind = v
        .get("type")
        .and_then(Value::as_str)
        .ok_or("missing `type` field")?;
    let ev = match kind {
        "plane_tick" => TraceEvent::PlaneTick {
            plane: plane_from_name(txt(v, "plane")?)?,
        },
        "probe_launch" => TraceEvent::ProbeLaunch {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            switch: num8(v, "switch")?,
            force: flag(v, "force")?,
        },
        "probe_hop" => TraceEvent::ProbeHop {
            circuit: num(v, "circuit")?,
            probe: num(v, "probe")?,
            node: num32(v, "node")?,
            link: num32(v, "link")?,
            misroute: flag(v, "misroute")?,
        },
        "probe_backtrack" => TraceEvent::ProbeBacktrack {
            circuit: num(v, "circuit")?,
            probe: num(v, "probe")?,
            node: num32(v, "node")?,
        },
        "probe_park" => TraceEvent::ProbePark {
            circuit: num(v, "circuit")?,
            probe: num(v, "probe")?,
            node: num32(v, "node")?,
            victim: num(v, "victim")?,
        },
        "probe_reached" => TraceEvent::ProbeReached {
            circuit: num(v, "circuit")?,
            probe: num(v, "probe")?,
            dest: num32(v, "dest")?,
            steps: num(v, "steps")?,
        },
        "probe_exhausted" => TraceEvent::ProbeExhausted {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            switch: num8(v, "switch")?,
            force: flag(v, "force")?,
        },
        "circuit_established" => TraceEvent::CircuitEstablished {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            hops: num32(v, "hops")?,
        },
        "circuit_released" => TraceEvent::CircuitReleased {
            circuit: num(v, "circuit")?,
        },
        "circuit_abandoned" => TraceEvent::CircuitAbandoned {
            circuit: num(v, "circuit")?,
        },
        "forced_release" => TraceEvent::ForcedRelease {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
        },
        "cache_hit" => TraceEvent::CacheHit {
            node: num32(v, "node")?,
            dest: num32(v, "dest")?,
            circuit: num(v, "circuit")?,
        },
        "cache_miss" => TraceEvent::CacheMiss {
            node: num32(v, "node")?,
            dest: num32(v, "dest")?,
        },
        "cache_evict" => TraceEvent::CacheEvict {
            node: num32(v, "node")?,
            victim_dest: num32(v, "victim_dest")?,
            circuit: num(v, "circuit")?,
        },
        "transfer_start" => TraceEvent::TransferStart {
            circuit: num(v, "circuit")?,
            msg: num(v, "msg")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            len_flits: num32(v, "len_flits")?,
        },
        "wormhole_inject" => TraceEvent::WormholeInject {
            msg: num(v, "msg")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            len_flits: num32(v, "len_flits")?,
        },
        "wormhole_deliver" => TraceEvent::WormholeDeliver {
            msg: num(v, "msg")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            latency: num(v, "latency")?,
        },
        "circuit_deliver" => TraceEvent::CircuitDeliver {
            msg: num(v, "msg")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            latency: num(v, "latency")?,
        },
        "lane_fault" => TraceEvent::LaneFault {
            link: num32(v, "link")?,
            switch: num8(v, "switch")?,
        },
        "lane_repair" => TraceEvent::LaneRepair {
            link: num32(v, "link")?,
            switch: num8(v, "switch")?,
        },
        "circuit_broken" => TraceEvent::CircuitBroken {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
        },
        "establish_retry" => TraceEvent::EstablishRetry {
            circuit: num(v, "circuit")?,
            src: num32(v, "src")?,
            dest: num32(v, "dest")?,
            attempt: num8(v, "attempt")?,
        },
        "watchdog_trip" => TraceEvent::WatchdogTrip {
            rule: num8(v, "rule")?,
            value: num(v, "value")?,
            limit: num(v, "limit")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    };
    Ok(TraceRecord { at, seq, ev })
}

/// Parses a whole JSONL text back into records, oldest first.
///
/// Blank lines are skipped.
///
/// # Errors
/// Any malformed line fails the whole parse with its 1-based line number.
pub fn read_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    JsonlReader::new(text).read_all()
}

/// Reads and parses a JSONL trace file.
///
/// # Errors
/// Fails when the file cannot be read or any line is malformed.
pub fn read_jsonl_file(path: &Path) -> Result<Vec<TraceRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    read_jsonl(&text)
}

fn plane_from_name(name: &str) -> Result<PlaneId, String> {
    match name {
        "wormhole plane" => Ok(PlaneId::Data),
        "control plane" => Ok(PlaneId::Control),
        "circuit plane" => Ok(PlaneId::Circuit),
        other => Err(format!("unknown plane `{other}`")),
    }
}

fn num(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn num32(v: &Value, key: &str) -> Result<u32, String> {
    u32::try_from(num(v, key)?).map_err(|_| format!("field `{key}` out of u32 range"))
}

fn num8(v: &Value, key: &str) -> Result<u8, String> {
    u8::try_from(num(v, key)?).map_err(|_| format!("field `{key}` out of u8 range"))
}

fn flag(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing or non-bool field `{key}`"))
}

fn txt<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postmortem::record_to_json;

    /// One record of every event kind, with distinctive field values.
    fn sample_records() -> Vec<TraceRecord> {
        let evs = vec![
            TraceEvent::PlaneTick {
                plane: PlaneId::Circuit,
            },
            TraceEvent::ProbeLaunch {
                circuit: 9,
                src: 3,
                dest: 12,
                switch: 2,
                force: true,
            },
            TraceEvent::ProbeHop {
                circuit: 9,
                probe: 4,
                node: 7,
                link: 21,
                misroute: true,
            },
            TraceEvent::ProbeBacktrack {
                circuit: 9,
                probe: 4,
                node: 3,
            },
            TraceEvent::ProbePark {
                circuit: 9,
                probe: 4,
                node: 7,
                victim: 2,
            },
            TraceEvent::ProbeReached {
                circuit: 9,
                probe: 4,
                dest: 12,
                steps: 11,
            },
            TraceEvent::ProbeExhausted {
                circuit: 9,
                src: 3,
                switch: 2,
                force: false,
            },
            TraceEvent::CircuitEstablished {
                circuit: 9,
                src: 3,
                dest: 12,
                hops: 5,
            },
            TraceEvent::CircuitReleased { circuit: 9 },
            TraceEvent::CircuitAbandoned { circuit: 9 },
            TraceEvent::ForcedRelease { circuit: 9, src: 3 },
            TraceEvent::CacheHit {
                node: 3,
                dest: 12,
                circuit: 9,
            },
            TraceEvent::CacheMiss { node: 3, dest: 12 },
            TraceEvent::CacheEvict {
                node: 3,
                victim_dest: 8,
                circuit: 5,
            },
            TraceEvent::TransferStart {
                circuit: 9,
                msg: 77,
                src: 3,
                dest: 12,
                len_flits: 32,
            },
            TraceEvent::WormholeInject {
                msg: 78,
                src: 3,
                dest: 12,
                len_flits: 32,
            },
            TraceEvent::WormholeDeliver {
                msg: 78,
                src: 3,
                dest: 12,
                latency: 140,
            },
            TraceEvent::CircuitDeliver {
                msg: 77,
                src: 3,
                dest: 12,
                latency: 90,
            },
            TraceEvent::LaneFault {
                link: 21,
                switch: 2,
            },
            TraceEvent::LaneRepair {
                link: 21,
                switch: 2,
            },
            TraceEvent::CircuitBroken {
                circuit: 9,
                src: 3,
                dest: 12,
            },
            TraceEvent::EstablishRetry {
                circuit: 10,
                src: 3,
                dest: 12,
                attempt: 1,
            },
            TraceEvent::WatchdogTrip {
                rule: 2,
                value: 5000,
                limit: 4096,
            },
        ];
        evs.into_iter()
            .enumerate()
            .map(|(i, ev)| TraceRecord {
                at: 100 + i as u64,
                seq: i as u64,
                ev,
            })
            .collect()
    }

    #[test]
    fn fast_encoder_matches_postmortem_json() {
        for rec in sample_records() {
            let mut fast = String::new();
            encode_record(&mut fast, &rec);
            assert_eq!(fast, record_to_json(&rec).compact(), "{}", rec.ev.kind());
        }
    }

    #[test]
    fn every_kind_round_trips() {
        let recs = sample_records();
        let mut text = String::new();
        for rec in &recs {
            encode_record(&mut text, rec);
            text.push('\n');
        }
        let back = read_jsonl(&text).expect("parse");
        assert_eq!(back, recs);
    }

    #[test]
    fn sink_streams_all_records_through_small_chunks() {
        let recs = sample_records();
        let mut sink = JsonlSink::with_chunk(Vec::new(), 3);
        for rec in &recs {
            sink.record(*rec);
        }
        assert_eq!(sink.total(), recs.len() as u64);
        let bytes = sink.finish_into().expect("finish");
        let back = read_jsonl(std::str::from_utf8(&bytes).unwrap()).expect("parse");
        assert_eq!(back, recs);
    }

    #[test]
    fn columnar_sink_round_trips_every_kind() {
        let recs = sample_records();
        let mut sink = ColumnarSink::with_chunk(Vec::new(), 5);
        sink.record_many(&recs);
        assert_eq!(sink.total(), recs.len() as u64);
        let bytes = sink.finish_into().expect("finish");
        assert_eq!(TraceFormat::detect(&bytes), TraceFormat::Columnar);
        let back = crate::columnar::read_columnar(&bytes).expect("decode");
        assert_eq!(back, recs);
        assert_eq!(read_trace_bytes(&bytes).expect("auto-detect"), recs);
    }

    #[test]
    fn record_many_matches_per_record_streaming() {
        let recs = sample_records();
        let mut one = JsonlSink::with_chunk(Vec::new(), 4);
        for rec in &recs {
            one.record(*rec);
        }
        let mut many = JsonlSink::with_chunk(Vec::new(), 4);
        many.record_many(&recs);
        assert_eq!(
            one.finish_into().expect("finish"),
            many.finish_into().expect("finish")
        );
    }

    #[test]
    fn sampling_keeps_lifecycle_events_and_thins_bulk() {
        // 10 bulk records interleaved with 10 lifecycle records.
        let mut recs = Vec::new();
        for i in 0..10u64 {
            recs.push(TraceRecord {
                at: i,
                seq: i * 2,
                ev: TraceEvent::CacheMiss {
                    node: 0,
                    dest: i as u32,
                },
            });
            recs.push(TraceRecord {
                at: i,
                seq: i * 2 + 1,
                ev: TraceEvent::CircuitReleased { circuit: i },
            });
        }
        let mut sink = JsonlSink::with_chunk(Vec::new(), 4).with_sampling(4);
        sink.record_many(&recs);
        let bytes = sink.finish_into().expect("finish");
        let back = read_jsonl(std::str::from_utf8(&bytes).unwrap()).expect("parse");
        let bulk = back.iter().filter(|r| is_bulk_kind(&r.ev)).count();
        let life = back.iter().filter(|r| !is_bulk_kind(&r.ev)).count();
        assert_eq!(bulk, 3, "1-in-4 of 10 bulk records (indices 0,4,8)");
        assert_eq!(life, 10, "lifecycle events always kept");
        // Sampling is deterministic: a rerun produces identical bytes.
        let mut again = JsonlSink::with_chunk(Vec::new(), 4).with_sampling(4);
        again.record_many(&recs);
        assert_eq!(again.finish_into().expect("finish"), bytes);
    }

    #[test]
    fn trait_finish_flushes_and_is_idempotent() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(TraceRecord {
            at: 1,
            seq: 0,
            ev: TraceEvent::CircuitReleased { circuit: 1 },
        });
        assert!(TraceSink::finish(&mut sink).is_ok());
        assert!(TraceSink::finish(&mut sink).is_ok());
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn reader_rejects_garbage_with_line_number() {
        let err = read_jsonl("{\"at\":1,\"seq\":0,\"type\":\"nope\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("unknown event kind"), "{err}");
        let err = read_jsonl("not json").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn reader_skips_blank_lines() {
        let rec = TraceRecord {
            at: 4,
            seq: 0,
            ev: TraceEvent::CacheMiss { node: 1, dest: 2 },
        };
        let mut text = String::from("\n");
        encode_record(&mut text, &rec);
        text.push_str("\n\n");
        assert_eq!(read_jsonl(&text).unwrap(), vec![rec]);
    }

    /// A reader that hands out at most `cap` bytes per call — exercises
    /// the partial-read paths in the magic sniff and frame refill.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        cap: usize,
    }

    impl io::Read for Dribble<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = out.len().min(self.cap).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn drain<R: io::Read>(mut reader: StreamingReader<R>) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        while let Some(rec) = reader.next_record() {
            out.push(rec.expect("stream"));
        }
        out
    }

    #[test]
    fn streaming_reader_detects_and_decodes_both_formats() {
        let recs = sample_records();

        let mut jsonl = JsonlSink::with_chunk(Vec::new(), 4);
        jsonl.record_many(&recs);
        let jsonl_bytes = jsonl.finish_into().expect("finish");
        let reader = StreamingReader::new(&jsonl_bytes[..]).expect("open");
        assert_eq!(reader.format(), TraceFormat::Jsonl);
        assert_eq!(drain(reader), recs);

        let mut bin = ColumnarSink::with_chunk(Vec::new(), 4);
        bin.record_many(&recs);
        let bin_bytes = bin.finish_into().expect("finish");
        let reader = StreamingReader::new(&bin_bytes[..]).expect("open");
        assert_eq!(reader.format(), TraceFormat::Columnar);
        assert_eq!(drain(reader), recs);
    }

    #[test]
    fn streaming_reader_survives_short_reads() {
        // Frames of 3 records force several frame boundaries, and a
        // 7-byte dribble guarantees every frame straddles refills.
        let recs = sample_records();
        let mut bin = ColumnarSink::with_chunk(Vec::new(), 3);
        bin.record_many(&recs);
        let bytes = bin.finish_into().expect("finish");
        for cap in [1, 7, 64] {
            let src = Dribble {
                data: &bytes,
                pos: 0,
                cap,
            };
            let reader = StreamingReader::new(src).expect("open");
            assert_eq!(reader.format(), TraceFormat::Columnar);
            assert_eq!(drain(reader), recs, "cap {cap}");
        }
    }

    #[test]
    fn streaming_reader_handles_tiny_and_empty_inputs() {
        // Shorter than the magic: must fall back to JSONL (and yield
        // nothing on empty input).
        let reader = StreamingReader::new(&b""[..]).expect("open");
        assert_eq!(reader.format(), TraceFormat::Jsonl);
        assert!(drain(reader).is_empty());

        let rec = TraceRecord {
            at: 4,
            seq: 0,
            ev: TraceEvent::CacheMiss { node: 1, dest: 2 },
        };
        let mut text = String::new();
        encode_record(&mut text, &rec);
        text.push('\n');
        let reader = StreamingReader::new(text.as_bytes()).expect("open");
        assert_eq!(drain(reader), vec![rec]);
    }

    #[test]
    fn streaming_reader_reports_corrupt_columnar() {
        let recs = sample_records();
        let mut bin = ColumnarSink::with_chunk(Vec::new(), 4);
        bin.record_many(&recs);
        let mut bytes = bin.finish_into().expect("finish");
        bytes.truncate(bytes.len() - 3); // chop mid-frame
        let mut reader = StreamingReader::new(&bytes[..]).expect("open");
        let mut saw_err = false;
        while let Some(rec) = reader.next_record() {
            if rec.is_err() {
                saw_err = true;
                break;
            }
        }
        assert!(saw_err, "truncated frame must surface an error");
    }
}
