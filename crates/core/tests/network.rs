//! End-to-end protocol tests over the composed [`WaveNetwork`] — CLRP
//! phases, CARP lifecycle, force-mode releases, replacement, buffers, and
//! ack propagation. These exercise the public API only, which is what
//! keeps the plane split honest: everything here worked against the
//! pre-split monolith and must keep working against the composition root.

use wavesim_core::config::ClrpVariant;
use wavesim_core::{EntryState, LaneId, ProbeState, ProtocolKind, WaveConfig, WaveNetwork};
use wavesim_network::message::DeliveryMode;
use wavesim_network::{Message, WormholeConfig};
use wavesim_sim::Cycle;
use wavesim_topology::{Coords, NodeId, RoutingKind, Topology};

fn cfg(protocol: ProtocolKind) -> WaveConfig {
    WaveConfig {
        protocol,
        ..WaveConfig::default()
    }
}

fn mesh(dims: &[u16], c: WaveConfig) -> WaveNetwork {
    WaveNetwork::new(Topology::mesh(dims), c)
}

fn run(net: &mut WaveNetwork, from: Cycle, max: Cycle) -> Cycle {
    let mut now = from;
    while net.busy() && now < max {
        net.tick(now);
        now += 1;
    }
    now
}

fn node(net: &WaveNetwork, c: &[u16]) -> NodeId {
    net.topology().node(Coords::new(c))
}

#[test]
fn clrp_establishes_circuit_and_delivers() {
    let mut net = mesh(&[8, 8], cfg(ProtocolKind::Clrp));
    let src = node(&net, &[0, 0]);
    let dest = node(&net, &[5, 3]);
    net.send(0, Message::new(1, src, dest, 128, 0));
    run(&mut net, 0, 50_000);
    assert!(!net.busy());
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].mode, DeliveryMode::Circuit);
    let s = net.stats();
    assert_eq!(s.setups_ok, 1);
    assert_eq!(s.cache_misses, 1);
    assert_eq!(s.msgs_circuit, 1);
    // Circuit persists after the transfer (it is cached).
    assert_eq!(net.circuits().len(), 1);
    assert!(net.cache(src).get(dest).unwrap().ack_returned);
    assert!(net.audit().is_empty(), "{:?}", net.audit());
}

#[test]
fn clrp_second_send_hits_the_cache() {
    let mut net = mesh(&[8, 8], cfg(ProtocolKind::Clrp));
    let src = node(&net, &[1, 1]);
    let dest = node(&net, &[6, 6]);
    net.send(0, Message::new(1, src, dest, 32, 0));
    let t = run(&mut net, 0, 50_000);
    net.send(t, Message::new(2, src, dest, 32, t));
    run(&mut net, t, t + 50_000);
    let s = net.stats();
    assert_eq!(s.cache_misses, 1);
    assert_eq!(s.cache_hits, 1);
    assert_eq!(s.probes_sent, 1, "second send must not probe");
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 2);
    // The cache hit skips establishment: strictly lower latency.
    assert!(ds[1].latency() < ds[0].latency());
}

#[test]
fn circuit_reuse_preserves_fifo_order() {
    let mut net = mesh(&[8, 8], cfg(ProtocolKind::Clrp));
    let src = node(&net, &[0, 0]);
    let dest = node(&net, &[7, 7]);
    for i in 0..10 {
        net.send(0, Message::new(i, src, dest, 64, 0));
    }
    run(&mut net, 0, 100_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 10);
    // In-order delivery is guaranteed on a circuit (§2).
    let ids: Vec<u64> = ds.iter().map(|d| d.msg.id.0).collect();
    assert_eq!(ids, (0..10).collect::<Vec<_>>());
    assert!(ds.iter().all(|d| d.mode == DeliveryMode::Circuit));
    assert_eq!(net.cache(src).get(dest).unwrap().uses, 10);
}

#[test]
fn wormhole_only_baseline_uses_s0() {
    let mut net = mesh(&[4, 4], cfg(ProtocolKind::WormholeOnly));
    let src = node(&net, &[0, 0]);
    let dest = node(&net, &[3, 3]);
    net.send(0, Message::new(1, src, dest, 16, 0));
    run(&mut net, 0, 10_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].mode, DeliveryMode::Wormhole);
    assert_eq!(net.stats().probes_sent, 0);
}

#[test]
fn carp_establish_send_teardown_lifecycle() {
    let mut net = mesh(&[6, 6], cfg(ProtocolKind::Carp));
    let src = node(&net, &[0, 0]);
    let dest = node(&net, &[4, 4]);
    let free0 = net.lanes().census().0;
    net.carp_establish(0, src, dest);
    let t = run(&mut net, 0, 50_000);
    assert_eq!(net.stats().setups_ok, 1);
    assert!(net.cache(src).get(dest).unwrap().ack_returned);
    // Lanes along the path are reserved.
    assert!(net.lanes().census().1 > 0);

    net.send(t, Message::new(1, src, dest, 200, t));
    let t = run(&mut net, t, t + 50_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].mode, DeliveryMode::Circuit);

    net.carp_teardown(t, src, dest);
    run(&mut net, t, t + 50_000);
    assert!(net.cache(src).get(dest).is_none());
    assert_eq!(net.circuits().len(), 0);
    assert_eq!(net.lanes().census().0, free0, "all lanes free again");
    assert_eq!(net.stats().teardowns, 1);
    assert!(net.audit().is_empty());
}

#[test]
fn carp_send_without_circuit_uses_wormhole() {
    let mut net = mesh(&[4, 4], cfg(ProtocolKind::Carp));
    let src = node(&net, &[0, 0]);
    let dest = node(&net, &[3, 0]);
    net.send(0, Message::new(1, src, dest, 8, 0));
    run(&mut net, 0, 10_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds[0].mode, DeliveryMode::Wormhole);
    assert_eq!(net.stats().probes_sent, 0);
}

#[test]
fn carp_failed_establishment_marks_entry_and_falls_back() {
    let mut net = mesh(&[4], cfg(ProtocolKind::Carp));
    // Fault every lane of every link: no circuit can ever form.
    let topo = net.topology().clone();
    for link in topo.links() {
        for s in 1..=net.config().k {
            net.inject_lane_fault(LaneId::new(link, s))
                .expect("fault plan matches topology");
        }
    }
    let src = NodeId(0);
    let dest = NodeId(3);
    net.carp_establish(0, src, dest);
    net.send(1, Message::new(1, src, dest, 8, 1));
    run(&mut net, 0, 20_000);
    assert_eq!(net.stats().setups_failed, 1);
    assert_eq!(
        net.cache(src).get(dest).map(|e| e.state),
        Some(EntryState::Failed)
    );
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].mode, DeliveryMode::Wormhole);
    // Teardown of a Failed entry just forgets it.
    net.carp_teardown(1_000_000, src, dest);
    assert!(net.cache(src).get(dest).is_none());
}

#[test]
fn clrp_falls_back_to_wormhole_when_wave_plane_dead() {
    let mut net = mesh(&[4, 4], cfg(ProtocolKind::Clrp));
    let topo = net.topology().clone();
    for link in topo.links() {
        for s in 1..=net.config().k {
            net.inject_lane_fault(LaneId::new(link, s))
                .expect("fault plan matches topology");
        }
    }
    let src = node(&net, &[0, 0]);
    let dest = node(&net, &[3, 3]);
    net.send(0, Message::new(1, src, dest, 64, 0));
    run(&mut net, 0, 50_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].mode, DeliveryMode::Wormhole, "phase 3 fallback");
    let s = net.stats();
    assert_eq!(s.setups_failed, 1);
    assert!(s.wormhole_fallbacks >= 1);
    assert!(s.probe_fault_encounters > 0);
    // CLRP forgets failed attempts.
    assert!(net.cache(src).get(dest).is_none());
    assert!(net.audit().is_empty());
}

#[test]
fn clrp_force_mode_tears_down_remote_victim() {
    // 1D mesh, k=1: circuit A (0 -> 3) monopolises the +X lanes; a
    // later circuit B (1 -> 2) must force A's release through a remote
    // release request (A crosses node 1 but starts at node 0).
    let c = WaveConfig {
        k: 1,
        misroutes: 0,
        ..cfg(ProtocolKind::Clrp)
    };
    let mut net = mesh(&[4], c);
    let n0 = NodeId(0);
    let n1 = NodeId(1);
    let n2 = NodeId(2);
    let n3 = NodeId(3);
    net.send(0, Message::new(1, n0, n3, 16, 0));
    let t = run(&mut net, 0, 20_000);
    assert_eq!(net.circuits().len(), 1, "A is up and cached");

    net.send(t, Message::new(2, n1, n2, 16, t));
    run(&mut net, t, t + 50_000);
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 2);
    let s = net.stats();
    assert!(s.forced_remote_releases >= 1, "{s:?}");
    assert!(s.teardowns >= 1);
    assert_eq!(s.setups_ok, 2);
    // A's entry is gone from node 0's cache; B's circuit lives.
    assert!(net.cache(n0).get(n3).is_none());
    assert!(net.cache(n1).get(n2).is_some());
    assert!(net.audit().is_empty(), "{:?}", net.audit());
}

#[test]
fn clrp_force_mode_releases_local_victim() {
    // Same geometry, but the blocking circuit *starts at* the stuck
    // node: B (0 -> 2) finds A (0 -> 3) holding its first lane, and A
    // starts at node 0 = B's source, so the release is local.
    let c = WaveConfig {
        k: 1,
        misroutes: 0,
        cache_capacity: 4,
        ..cfg(ProtocolKind::Clrp)
    };
    let mut net = mesh(&[4], c);
    let n0 = NodeId(0);
    let n2 = NodeId(2);
    let n3 = NodeId(3);
    net.send(0, Message::new(1, n0, n3, 16, 0));
    let t = run(&mut net, 0, 20_000);
    net.send(t, Message::new(2, n0, n2, 16, t));
    run(&mut net, t, t + 50_000);
    assert_eq!(net.drain_deliveries().len(), 2);
    let s = net.stats();
    assert!(s.forced_local_releases >= 1, "{s:?}");
    assert!(net.cache(n0).get(n3).is_none(), "victim evicted");
    assert!(net.cache(n0).get(n2).is_some());
    assert!(net.audit().is_empty());
}

#[test]
fn probe_misroutes_around_reserved_lane() {
    // 3x3 mesh, k=1: A = (0,0)->(1,0) takes the +X lane out of the
    // corner; B = (0,0)->(2,0) must leave through +Y (a misroute) and
    // still reach its destination in phase one.
    let c = WaveConfig {
        k: 1,
        misroutes: 2,
        cache_capacity: 8,
        ..cfg(ProtocolKind::Clrp)
    };
    let mut net = mesh(&[3, 3], c);
    let a = node(&net, &[0, 0]);
    let d1 = node(&net, &[1, 0]);
    let d2 = node(&net, &[2, 0]);
    net.send(0, Message::new(1, a, d1, 8, 0));
    let t = run(&mut net, 0, 20_000);
    net.send(t, Message::new(2, a, d2, 8, t));
    run(&mut net, t, t + 50_000);
    assert_eq!(net.drain_deliveries().len(), 2);
    let s = net.stats();
    assert!(s.probe_misroutes >= 1, "{s:?}");
    assert_eq!(s.forced_local_releases + s.forced_remote_releases, 0);
    assert_eq!(net.circuits().len(), 2, "both circuits coexist");
    assert!(net.audit().is_empty());
}

#[test]
fn cache_replacement_evicts_lru_victim() {
    let c = WaveConfig {
        cache_capacity: 1,
        ..cfg(ProtocolKind::Clrp)
    };
    let mut net = mesh(&[4, 4], c);
    let src = node(&net, &[0, 0]);
    let d1 = node(&net, &[3, 0]);
    let d2 = node(&net, &[0, 3]);
    net.send(0, Message::new(1, src, d1, 16, 0));
    let t = run(&mut net, 0, 20_000);
    net.send(t, Message::new(2, src, d2, 16, t));
    run(&mut net, t, t + 50_000);
    assert_eq!(net.drain_deliveries().len(), 2);
    let s = net.stats();
    assert_eq!(s.cache_evictions, 1);
    assert!(net.cache(src).get(d1).is_none(), "d1 evicted");
    assert!(net.cache(src).get(d2).is_some());
    assert_eq!(net.circuits().len(), 1);
    assert!(net.audit().is_empty());
}

#[test]
fn skip_phase1_variant_starts_with_force() {
    let c = WaveConfig {
        k: 1,
        misroutes: 0,
        clrp: ClrpVariant {
            skip_phase1: true,
            ..Default::default()
        },
        ..cfg(ProtocolKind::Clrp)
    };
    let mut net = mesh(&[4], c);
    net.send(0, Message::new(1, NodeId(0), NodeId(3), 8, 0));
    let t = run(&mut net, 0, 20_000);
    // Second circuit immediately forces the victim without a phase-1
    // round: exactly one probe for the second establishment.
    let probes_before = net.stats().probes_sent;
    net.send(t, Message::new(2, NodeId(1), NodeId(2), 8, t));
    run(&mut net, t, t + 50_000);
    assert_eq!(net.stats().probes_sent, probes_before + 1);
    assert!(net.stats().forced_remote_releases >= 1);
    assert_eq!(net.drain_deliveries().len(), 2);
}

#[test]
fn deterministic_replay() {
    let build = || {
        let mut net = mesh(&[4, 4], cfg(ProtocolKind::Clrp));
        let mut id = 0;
        let topo = net.topology().clone();
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && (a.0 * 7 + b.0) % 5 == 0 {
                    net.send(0, Message::new(id, a, b, 24, 0));
                    id += 1;
                }
            }
        }
        run(&mut net, 0, 300_000);
        let mut ds: Vec<(u64, u64)> = net
            .drain_deliveries()
            .iter()
            .map(|d| (d.msg.id.0, d.delivered_at))
            .collect();
        ds.sort_unstable();
        ds
    };
    assert_eq!(build(), build());
}

#[test]
fn saturating_clrp_traffic_drains_and_audits_clean() {
    // Every node talks to several destinations; circuit contention
    // forces replacements and phase transitions all over the fabric.
    let c = WaveConfig {
        cache_capacity: 2,
        ..cfg(ProtocolKind::Clrp)
    };
    let mut net = mesh(&[4, 4], c);
    let topo = net.topology().clone();
    let mut id = 0;
    for a in topo.nodes() {
        for off in [1u32, 5, 9, 13] {
            let b = NodeId((a.0 + off) % 16);
            if a != b {
                net.send(0, Message::new(id, a, b, 32, 0));
                id += 1;
            }
        }
    }
    let end = run(&mut net, 0, 2_000_000);
    assert!(!net.busy(), "all traffic must drain (no deadlock) by {end}");
    let ds = net.drain_deliveries();
    assert_eq!(ds.len() as u64, id);
    assert!(net.audit().is_empty(), "{:?}", net.audit());
    // The livelock bound of Theorems 3/4 holds.
    let bound = ProbeState::step_bound(&topo);
    assert!(net.max_probe_steps() <= bound);
}

#[test]
fn wormhole_config_is_respected() {
    let c = WaveConfig {
        wormhole: WormholeConfig {
            w: 4,
            buffer_depth: 8,
            routing: RoutingKind::Adaptive,
            routing_delay: 2,
        },
        ..cfg(ProtocolKind::WormholeOnly)
    };
    let net = mesh(&[4, 4], c);
    assert_eq!(net.fabric().config().w, 4);
    assert_eq!(net.fabric().routing().name(), "duato-adaptive");
}

#[test]
fn clrp_pays_realloc_for_longer_messages() {
    let cfg = WaveConfig {
        protocol: ProtocolKind::Clrp,
        initial_buffer_flits: 32,
        realloc_penalty: 40,
        ..WaveConfig::default()
    };
    let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), cfg);
    let topo = net.topology().clone();
    let src = topo.node(Coords::new(&[0, 0]));
    let dest = topo.node(Coords::new(&[3, 3]));
    // Fits the initial buffer: no penalty.
    net.send(0, Message::new(1, src, dest, 32, 0));
    let t = run(&mut net, 0, 50_000);
    assert_eq!(net.stats().buffer_reallocs, 0);
    // Longer: one re-allocation, buffer grows to 128.
    net.send(t, Message::new(2, src, dest, 128, t));
    let t = run(&mut net, t, t + 50_000);
    assert_eq!(net.stats().buffer_reallocs, 1);
    assert_eq!(net.cache(src).get(dest).unwrap().alloc_flits, Some(128));
    // Same length again: grown buffer suffices.
    net.send(t, Message::new(3, src, dest, 128, t));
    run(&mut net, t, t + 50_000);
    assert_eq!(net.stats().buffer_reallocs, 1);
    assert_eq!(net.drain_deliveries().len(), 3);
}

#[test]
fn realloc_penalty_delays_the_transfer() {
    let mk = |penalty: u32| {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            initial_buffer_flits: 8,
            realloc_penalty: penalty,
            ..WaveConfig::default()
        };
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), cfg);
        let topo = net.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 3]));
        net.send(0, Message::new(1, src, dest, 200, 0));
        run(&mut net, 0, 50_000);
        net.drain_deliveries()[0].latency()
    };
    let cheap = mk(0);
    let costly = mk(100);
    assert_eq!(costly, cheap + 100, "penalty shifts delivery 1:1");
}

#[test]
fn carp_never_reallocates() {
    let cfg = WaveConfig {
        protocol: ProtocolKind::Carp,
        initial_buffer_flits: 8,
        realloc_penalty: 100,
        ..WaveConfig::default()
    };
    let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), cfg);
    let topo = net.topology().clone();
    let src = topo.node(Coords::new(&[0, 0]));
    let dest = topo.node(Coords::new(&[3, 3]));
    net.carp_establish(0, src, dest);
    let t = run(&mut net, 0, 50_000);
    // CARP sized the buffers from the message set: huge message, no
    // penalty ever.
    net.send(t, Message::new(1, src, dest, 4096, t));
    run(&mut net, t, t + 100_000);
    assert_eq!(net.stats().buffer_reallocs, 0);
    assert_eq!(net.cache(src).get(dest).unwrap().alloc_flits, None);
    assert_eq!(net.drain_deliveries().len(), 1);
}

/// `probe_fault_encounters` counts *rejections*, not distinct faulty
/// lanes: two establishment attempts bouncing off the same faulty lanes
/// must double the counter (the semantics pinned in `WaveStats`).
#[test]
fn fault_encounters_count_per_encounter_not_per_lane() {
    let c = WaveConfig {
        k: 2,
        misroutes: 0,
        ..cfg(ProtocolKind::Clrp)
    };
    let mut net = mesh(&[2], c);
    let topo = net.topology().clone();
    let link = topo.links().next().expect("one link in a 2-node mesh");
    for s in 1..=2 {
        net.inject_lane_fault(LaneId::new(link, s))
            .expect("fault a known-good lane");
    }
    let src = NodeId(0);
    let dest = NodeId(1);
    net.send(0, Message::new(1, src, dest, 8, 0));
    let t = run(&mut net, 0, 20_000);
    // The establishment attempt scanned both faulty lanes at least once
    // (CLRP's phases may re-scan them; each scan counts).
    let first = net.stats().probe_fault_encounters;
    assert!(first >= 2, "both lanes rejected at least once: {first}");
    // CLRP forgot the failed attempt, so the next send probes again and
    // rejects the *same two lanes* all over: the counter doubles even
    // though no new faulty lane exists.
    assert!(net.cache(src).get(dest).is_none());
    net.send(t, Message::new(2, src, dest, 8, t));
    run(&mut net, t, t + 20_000);
    assert_eq!(
        net.stats().probe_fault_encounters,
        2 * first,
        "same lanes re-scanned must count again (per encounter)"
    );
    assert_eq!(
        net.drain_deliveries().len(),
        2,
        "wormhole fallback delivers"
    );
}

/// A dynamic fault landing on a lane of an *active*, streaming circuit
/// tears the circuit down mid-transfer — and every in-flight and queued
/// message is still delivered (retry, then wormhole degradation; the
/// wormhole plane is unaffected by wave-lane faults).
#[test]
fn mid_run_fault_on_active_circuit_delivers_all_in_flight() {
    use wavesim_core::FaultEvent;

    let mut net = mesh(&[6], cfg(ProtocolKind::Clrp));
    let topo = net.topology().clone();
    let src = NodeId(0);
    let dest = NodeId(5);
    // Three long messages: the circuit streams for thousands of cycles
    // after the ack returns, so a fault shortly after Ready is
    // guaranteed to hit a live, in-use circuit.
    for i in 0..3 {
        net.send(0, Message::new(i, src, dest, 1024, 0));
    }
    let mut now = 0;
    loop {
        net.tick(now);
        now += 1;
        if net.cache(src).get(dest).is_some_and(|e| e.ack_returned) {
            break;
        }
        assert!(now < 10_000, "circuit should be Ready by now");
    }
    // The 1D path 0 -> 5 crosses the link 2 -> 3; fault every one of its
    // lanes so the retry cannot route around it either.
    let mid = topo
        .links()
        .find(|&l| topo.link_endpoints(l).0 == NodeId(2) && topo.link_dest(l) == NodeId(3))
        .expect("mid-path link");
    for s in 1..=net.config().k {
        net.schedule_fault(now + 5, FaultEvent::Fail(LaneId::new(mid, s)))
            .expect("lane exists");
    }
    run(&mut net, now, now + 200_000);
    assert!(!net.busy(), "network must drain after the mid-run fault");
    let ds = net.drain_deliveries();
    assert_eq!(ds.len(), 3, "every in-flight message is delivered");
    let s = net.stats();
    assert!(
        s.circuits_broken >= 1,
        "the streaming circuit was torn down"
    );
    assert_eq!(s.lane_faults, u64::from(net.config().k));
    assert!(
        s.establish_retries >= 1,
        "CLRP retried before degrading: {s:?}"
    );
    assert!(net.audit().is_empty(), "{:?}", net.audit());
}

/// With a slow control plane, the ack's per-hop progression is
/// observable: routers near the destination see Ack Returned set
/// before the source's Circuit Cache entry becomes Ready.
#[test]
fn ack_propagates_hop_by_hop() {
    let cfg = WaveConfig {
        ctrl_hop_delay: 4,
        pcs_delay: 1,
        ..WaveConfig::default()
    };
    let mut net = WaveNetwork::new(Topology::mesh(&[6]), cfg);
    let topo = net.topology().clone();
    let src = topo.node(Coords::new(&[0]));
    let dest = topo.node(Coords::new(&[5]));
    net.send(0, Message::new(1, src, dest, 8, 0));
    // Tick until the probe reaches the destination (5 forward hops at
    // 5 cycles each + source processing) but before the ack crosses
    // the whole path back (5 hops at 4 cycles each).
    let mut now = 0;
    let cid = loop {
        net.tick(now);
        now += 1;
        if let Some((id, c)) = net.circuits().iter().next() {
            if c.hops() == 5 && net.probes().is_empty() {
                break id;
            }
        }
        assert!(now < 1_000, "probe should have completed by now");
    };
    // Let the ack cross two hops only.
    for _ in 0..9 {
        net.tick(now);
        now += 1;
    }
    let near_dest = topo.node(Coords::new(&[4]));
    assert_eq!(
        net.pcs_ack_returned(near_dest, cid),
        Some(true),
        "router next to the destination has seen the ack"
    );
    assert_eq!(
        net.pcs_ack_returned(src, cid),
        Some(false),
        "the source has not"
    );
    assert_eq!(
        net.cache(src).get(dest).unwrap().state,
        EntryState::Establishing,
        "entry not Ready until the ack arrives home"
    );
    // Finish: the message is delivered over the circuit.
    while net.busy() && now < 50_000 {
        net.tick(now);
        now += 1;
    }
    assert_eq!(net.pcs_ack_returned(src, cid), Some(true));
    assert_eq!(net.drain_deliveries().len(), 1);
}
