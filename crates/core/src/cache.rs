//! The Circuit Cache — Fig. 5 of the paper.
//!
//! "The circuits starting at each node are recorded in a special set of
//! registers denoted as Circuit Cache … located in the network interface
//! of every node." Each [`CacheEntry`] reproduces the Fig. 5 fields
//! (Initial Switch, Switch, Channel, Dest, Ack Returned, In-use, Replace)
//! plus the protocol-visible lifecycle state and the queue of messages
//! waiting for the circuit.

use std::collections::{HashMap, VecDeque};

use wavesim_network::Message;
use wavesim_sim::Cycle;
use wavesim_topology::NodeId;

use crate::config::ReplacementPolicy;
use crate::ids::{CircuitId, LaneId};
use crate::replacement;

/// Lifecycle of a circuit-cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// A probe is searching for a path (Ack Returned still clear).
    Establishing,
    /// The acknowledgment returned; the circuit is ready to carry messages.
    Ready,
    /// A dynamic fault destroyed the circuit; the entry is waiting out the
    /// re-establishment backoff (CLRP only). Sends keep queueing, nothing
    /// is evictable, and the old circuit id stays in `circuit` so a stale
    /// transfer ack can still clear `in_use`.
    RetryWait,
    /// A teardown is propagating (or waiting for In-use to clear).
    Releasing,
    /// Establishment failed on every switch. CARP keeps the entry so
    /// subsequent sends for this set of messages use wormhole switching;
    /// CLRP removes failed entries instead.
    Failed,
}

/// One Circuit Cache register set (Fig. 5).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// `Dest` field: destination node of the circuit.
    pub dest: NodeId,
    /// The circuit attempt/instance this entry tracks.
    pub circuit: CircuitId,
    /// `Initial Switch` field: first switch tried, "to avoid repeating the
    /// search".
    pub initial_switch: u8,
    /// `Switch` field: switch being searched, or used once set up.
    pub switch: u8,
    /// `Channel` field: output lane used by the circuit at the source.
    pub channel: Option<LaneId>,
    /// `Ack Returned` field: path setup acknowledged, circuit usable.
    pub ack_returned: bool,
    /// `In-use` field: a message is in transit; blocks release.
    pub in_use: bool,
    /// `Replace` field: accounting data for the replacement algorithm.
    pub replace: u64,
    /// Lifecycle state (protocol bookkeeping beyond the raw registers).
    pub state: EntryState,
    /// CLRP: the current establishment attempt runs with the Force bit.
    pub force_phase: bool,
    /// A remote node asked for this circuit to be released (or the local
    /// replacement algorithm chose it); tear down as soon as In-use clears.
    pub release_pending: bool,
    /// Messages waiting to use the circuit (transmitted in FIFO order —
    /// circuits guarantee in-order delivery, §2).
    pub queue: VecDeque<Message>,
    /// Cycle the ack returned, if it did.
    pub established_at: Option<Cycle>,
    /// Messages actually carried (for hit-rate statistics).
    pub uses: u64,
    /// End-point message-buffer size in flits. `Some(n)` means the buffer
    /// was sized blindly (CLRP) and grows — with a re-allocation penalty —
    /// when a longer message arrives; `None` means the buffer was sized
    /// from the known message set (CARP, §2) and never re-allocates.
    pub alloc_flits: Option<u32>,
    /// Path length in hops, recorded when the circuit is established (used
    /// to plan transfer timing without consulting the circuit registry).
    pub path_hops: u32,
    /// Re-establishment attempts consumed after dynamic faults broke this
    /// entry's circuit (bounded by `WaveConfig::fault_retries`).
    pub fault_retries_used: u8,
}

impl CacheEntry {
    /// Fresh entry in `Establishing` state.
    #[must_use]
    pub fn new(dest: NodeId, circuit: CircuitId, initial_switch: u8, switch: u8) -> Self {
        Self {
            dest,
            circuit,
            initial_switch,
            switch,
            channel: None,
            ack_returned: false,
            in_use: false,
            replace: 0,
            state: EntryState::Establishing,
            force_phase: false,
            release_pending: false,
            queue: VecDeque::new(),
            established_at: None,
            uses: 0,
            alloc_flits: None,
            path_hops: 0,
            fault_retries_used: 0,
        }
    }

    /// True when the replacement algorithm may evict this entry right now:
    /// fully established, idle, and not already being released.
    #[must_use]
    pub fn evictable(&self) -> bool {
        self.state == EntryState::Ready
            && !self.in_use
            && !self.release_pending
            && self.queue.is_empty()
    }
}

/// The per-node Circuit Cache: at most `capacity` register sets, keyed by
/// destination (one circuit per destination per source, as in §3.1's
/// lookup "to see if a circuit exists for the requested destination").
#[derive(Debug, Clone)]
pub struct CircuitCache {
    capacity: usize,
    entries: HashMap<NodeId, CacheEntry>,
}

impl CircuitCache {
    /// Empty cache with room for `capacity` circuits.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "circuit cache needs at least one entry");
        Self {
            capacity,
            entries: HashMap::new(),
        }
    }

    /// Register-file size.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no circuits are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a new entry cannot be inserted without eviction.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Looks up the entry for `dest`.
    #[must_use]
    pub fn get(&self, dest: NodeId) -> Option<&CacheEntry> {
        self.entries.get(&dest)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, dest: NodeId) -> Option<&mut CacheEntry> {
        self.entries.get_mut(&dest)
    }

    /// Inserts `entry` (keyed by its `dest`).
    ///
    /// # Panics
    /// Panics if the cache is full (evict first) or the destination is
    /// already present.
    pub fn insert(&mut self, entry: CacheEntry) {
        assert!(!self.is_full(), "insert into a full circuit cache");
        let prev = self.entries.insert(entry.dest, entry);
        assert!(prev.is_none(), "duplicate circuit cache entry");
    }

    /// Removes and returns the entry for `dest`.
    pub fn remove(&mut self, dest: NodeId) -> Option<CacheEntry> {
        self.entries.remove(&dest)
    }

    /// Iterates over entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut CacheEntry> {
        self.entries.values_mut()
    }

    /// Selects the eviction victim under `policy`: the evictable entry
    /// with the lowest score, destination id breaking ties for
    /// determinism. `None` when nothing is evictable.
    #[must_use]
    pub fn pick_victim(&self, policy: ReplacementPolicy, seed: u64) -> Option<NodeId> {
        self.entries
            .values()
            .filter(|e| e.evictable())
            .min_by_key(|e| (replacement::eviction_score(e, policy, seed), e.dest))
            .map(|e| e.dest)
    }

    /// Entry whose circuit id is `circuit`, if present.
    #[must_use]
    pub fn find_by_circuit(&self, circuit: CircuitId) -> Option<&CacheEntry> {
        self.entries.values().find(|e| e.circuit == circuit)
    }

    /// Mutable variant of [`CircuitCache::find_by_circuit`].
    pub fn find_by_circuit_mut(&mut self, circuit: CircuitId) -> Option<&mut CacheEntry> {
        self.entries.values_mut().find(|e| e.circuit == circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dest: u32, circuit: u64) -> CacheEntry {
        CacheEntry::new(NodeId(dest), CircuitId(circuit), 1, 1)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut c = CircuitCache::new(4);
        c.insert(entry(5, 1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(NodeId(5)).unwrap().circuit, CircuitId(1));
        assert!(c.get(NodeId(6)).is_none());
        let e = c.remove(NodeId(5)).unwrap();
        assert_eq!(e.dest, NodeId(5));
        assert!(c.is_empty());
    }

    #[test]
    fn capacity_enforced() {
        let mut c = CircuitCache::new(2);
        c.insert(entry(1, 1));
        c.insert(entry(2, 2));
        assert!(c.is_full());
    }

    #[test]
    #[should_panic(expected = "full circuit cache")]
    fn overfull_insert_panics() {
        let mut c = CircuitCache::new(1);
        c.insert(entry(1, 1));
        c.insert(entry(2, 2));
    }

    #[test]
    fn evictability_rules() {
        let mut e = entry(1, 1);
        assert!(!e.evictable(), "establishing entries are not evictable");
        e.state = EntryState::Ready;
        assert!(e.evictable());
        e.in_use = true;
        assert!(!e.evictable(), "In-use blocks eviction (paper §2)");
        e.in_use = false;
        e.release_pending = true;
        assert!(!e.evictable());
        e.release_pending = false;
        e.queue
            .push_back(Message::new(1, NodeId(0), NodeId(1), 4, 0));
        assert!(!e.evictable(), "queued traffic blocks eviction");
    }

    #[test]
    fn victim_selection_respects_policy_and_ties() {
        let mut c = CircuitCache::new(4);
        let mut a = entry(1, 10);
        a.state = EntryState::Ready;
        a.replace = 100; // older LRU stamp
        let mut b = entry(2, 20);
        b.state = EntryState::Ready;
        b.replace = 200;
        c.insert(a);
        c.insert(b);
        assert_eq!(c.pick_victim(ReplacementPolicy::Lru, 0), Some(NodeId(1)));
        // Ties break on destination id.
        c.get_mut(NodeId(2)).unwrap().replace = 100;
        assert_eq!(c.pick_victim(ReplacementPolicy::Lru, 0), Some(NodeId(1)));
    }

    #[test]
    fn no_victim_when_everything_busy() {
        let mut c = CircuitCache::new(2);
        let mut a = entry(1, 1);
        a.state = EntryState::Ready;
        a.in_use = true;
        c.insert(a);
        c.insert(entry(2, 2)); // still establishing
        assert_eq!(c.pick_victim(ReplacementPolicy::Lru, 0), None);
    }

    #[test]
    fn find_by_circuit_works() {
        let mut c = CircuitCache::new(2);
        c.insert(entry(3, 33));
        assert_eq!(c.find_by_circuit(CircuitId(33)).unwrap().dest, NodeId(3));
        assert!(c.find_by_circuit(CircuitId(44)).is_none());
    }
}
