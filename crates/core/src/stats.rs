//! Protocol-level statistics for wave-switched networks.

/// Counters accumulated by [`crate::network::WaveNetwork`] over a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaveStats {
    /// Messages submitted through the protocol layer.
    pub msgs_sent: u64,
    /// Messages delivered over pre-established circuits.
    pub msgs_circuit: u64,
    /// Messages delivered through wormhole switching.
    pub msgs_wormhole: u64,
    /// Circuit-cache hits (send found a Ready circuit).
    pub cache_hits: u64,
    /// Circuit-cache misses that triggered an establishment.
    pub cache_misses: u64,
    /// Source-side evictions performed to make cache room.
    pub cache_evictions: u64,

    /// Probes launched (one per switch attempt).
    pub probes_sent: u64,
    /// Total probe hops (forward + backward).
    pub probe_hops: u64,
    /// Backtrack operations.
    pub probe_backtracks: u64,
    /// Misroute operations.
    pub probe_misroutes: u64,
    /// Probes that reserved a full path.
    pub probes_reached: u64,
    /// Probes that exhausted their switch's search space.
    pub probes_exhausted: u64,
    /// Faulty-lane rejections seen by probes, counted **per encounter**:
    /// every time any probe scans a lane and finds it `Faulty` this
    /// increments, so one probe bouncing off the same faulty lane across
    /// `n` retries contributes `n` (it is a rejection count, not a count
    /// of distinct probes or distinct lanes).
    pub probe_fault_encounters: u64,

    /// Establishment attempts that eventually succeeded (any switch).
    pub setups_ok: u64,
    /// Establishment attempts that failed across every switch.
    pub setups_failed: u64,
    /// Force-mode victim selections of circuits starting at the stuck node.
    pub forced_local_releases: u64,
    /// Force-mode release requests sent to remote sources.
    pub forced_remote_releases: u64,
    /// Release-request control flits discarded (circuit already releasing
    /// or gone — §4's discard rule).
    pub release_requests_discarded: u64,
    /// Circuits torn down (any reason).
    pub teardowns: u64,

    /// Messages that fell back to wormhole because establishment failed
    /// (CLRP phase 3 / CARP fallback).
    pub wormhole_fallbacks: u64,
    /// End-point buffer re-allocations (CLRP circuits hit by a message
    /// longer than the allocated buffer, §2).
    pub buffer_reallocs: u64,

    /// Lanes marked faulty (static injections plus dynamic fail events).
    pub lane_faults: u64,
    /// Faulty lanes returned to service (dynamic repair events).
    pub lane_repairs: u64,
    /// Circuits destroyed because a dynamic fault hit a reserved lane.
    pub circuits_broken: u64,
    /// Re-establishment attempts launched after a dynamic fault broke a
    /// circuit (bounded by `WaveConfig::fault_retries`).
    pub establish_retries: u64,
}

impl WaveStats {
    /// Adds every counter of `other` into `self`. Used by the composition
    /// root to sum the per-plane contributions into one network-wide view.
    pub fn absorb(&mut self, other: &WaveStats) {
        let WaveStats {
            msgs_sent,
            msgs_circuit,
            msgs_wormhole,
            cache_hits,
            cache_misses,
            cache_evictions,
            probes_sent,
            probe_hops,
            probe_backtracks,
            probe_misroutes,
            probes_reached,
            probes_exhausted,
            probe_fault_encounters,
            setups_ok,
            setups_failed,
            forced_local_releases,
            forced_remote_releases,
            release_requests_discarded,
            teardowns,
            wormhole_fallbacks,
            buffer_reallocs,
            lane_faults,
            lane_repairs,
            circuits_broken,
            establish_retries,
        } = other;
        self.msgs_sent += msgs_sent;
        self.msgs_circuit += msgs_circuit;
        self.msgs_wormhole += msgs_wormhole;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.cache_evictions += cache_evictions;
        self.probes_sent += probes_sent;
        self.probe_hops += probe_hops;
        self.probe_backtracks += probe_backtracks;
        self.probe_misroutes += probe_misroutes;
        self.probes_reached += probes_reached;
        self.probes_exhausted += probes_exhausted;
        self.probe_fault_encounters += probe_fault_encounters;
        self.setups_ok += setups_ok;
        self.setups_failed += setups_failed;
        self.forced_local_releases += forced_local_releases;
        self.forced_remote_releases += forced_remote_releases;
        self.release_requests_discarded += release_requests_discarded;
        self.teardowns += teardowns;
        self.wormhole_fallbacks += wormhole_fallbacks;
        self.buffer_reallocs += buffer_reallocs;
        self.lane_faults += lane_faults;
        self.lane_repairs += lane_repairs;
        self.circuits_broken += circuits_broken;
        self.establish_retries += establish_retries;
    }

    /// Circuit-cache hit rate over sends that consulted the cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of launched probes that reserved a path.
    #[must_use]
    pub fn probe_success_rate(&self) -> f64 {
        if self.probes_sent == 0 {
            0.0
        } else {
            self.probes_reached as f64 / self.probes_sent as f64
        }
    }

    /// Fraction of establishment attempts that succeeded.
    #[must_use]
    pub fn setup_success_rate(&self) -> f64 {
        let total = self.setups_ok + self.setups_failed;
        if total == 0 {
            0.0
        } else {
            self.setups_ok as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = WaveStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.probe_success_rate(), 0.0);
        assert_eq!(s.setup_success_rate(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = WaveStats {
            cache_hits: 3,
            cache_misses: 1,
            probes_sent: 10,
            probes_reached: 5,
            setups_ok: 4,
            setups_failed: 1,
            ..WaveStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.probe_success_rate() - 0.5).abs() < 1e-12);
        assert!((s.setup_success_rate() - 0.8).abs() < 1e-12);
    }
}
