//! The dataplane: switch `S0`, i.e. the wormhole fabric, as a plane.
//!
//! The wormhole pipeline itself lives in `wavesim-network`; this module
//! wraps it in the plane discipline of [`crate::events`] — inputs arrive
//! as [`PlaneEvent::InjectWormhole`] (routed by the composition root to
//! [`DataPlane::inject`]) and completed deliveries leave through the
//! plane's outbox as [`PlaneEvent::WormholeDelivered`].

use wavesim_network::message::DeliveryMode;
use wavesim_network::{Message, WormholeConfig, WormholeFabric};
use wavesim_sim::{Cycle, EventQueue, Model};
use wavesim_topology::Topology;
use wavesim_trace::{TraceBuf, TraceEvent, TraceHub};

use crate::events::PlaneEvent;
use crate::stats::WaveStats;

/// The wormhole plane of the wave router.
pub struct DataPlane {
    fabric: WormholeFabric,
    stats: WaveStats,
    outbox: Vec<PlaneEvent>,
    /// Reusable delivery buffer ping-ponged through the fabric's
    /// [`WormholeFabric::drain_deliveries_into`] so the per-cycle
    /// collection path stays allocation-free.
    scratch: Vec<wavesim_network::Delivery>,
    /// Per-shard trace staging, index-aligned with the fabric's shards:
    /// delivery trace events stage into the buffer of the shard that owns
    /// the destination router, and the composition root absorbs the
    /// buffers in shard order. Because the fabric's merge already emits
    /// deliveries in ascending-router order, the concatenation is the
    /// same byte stream at every shard count.
    shard_bufs: Vec<TraceBuf>,
}

impl DataPlane {
    /// Builds the plane for `topo` under the `S0` configuration.
    #[must_use]
    pub fn new(topo: Topology, cfg: WormholeConfig) -> Self {
        Self {
            fabric: WormholeFabric::new(topo, cfg),
            stats: WaveStats::default(),
            outbox: Vec::new(),
            scratch: Vec::new(),
            shard_bufs: vec![TraceBuf::new()],
        }
    }

    /// Repartitions the fabric into `n` spatial shards (see
    /// [`WormholeFabric::set_shards`]) and realigns the per-shard trace
    /// staging. Call between runs, not mid-cycle.
    pub fn set_shards(&mut self, n: usize) {
        self.fabric.set_shards(n);
        let armed = self.shard_bufs.first().is_some_and(TraceBuf::armed);
        self.shard_bufs = (0..self.fabric.shards()).map(|_| TraceBuf::new()).collect();
        if armed {
            self.arm_trace();
        }
    }

    /// Arms the per-shard trace staging buffers.
    pub(crate) fn arm_trace(&mut self) {
        for b in &mut self.shard_bufs {
            b.arm();
        }
    }

    /// Disarms the per-shard trace staging buffers.
    pub(crate) fn disarm_trace(&mut self) {
        for b in &mut self.shard_bufs {
            b.disarm();
        }
    }

    /// Events staged across all shard buffers (test hook).
    #[cfg(test)]
    pub(crate) fn trace_staged_len(&self) -> usize {
        self.shard_bufs.iter().map(TraceBuf::staged_len).sum()
    }

    /// Absorbs the per-shard staging buffers into `hub`, in shard order —
    /// the deterministic merge point of the sharded trace pipeline.
    pub(crate) fn absorb_trace_into(&mut self, hub: &mut TraceHub) {
        for b in &mut self.shard_bufs {
            hub.absorb(b);
        }
    }

    /// Injects a message into the wormhole fabric.
    pub fn inject(&mut self, msg: Message) {
        self.fabric.inject(msg);
    }

    /// Advances the fabric one cycle and stages completed deliveries on
    /// the outbox (and, when traced, the delivery trace events on the
    /// owning shard's staging buffer).
    pub fn step(&mut self, now: Cycle) {
        self.fabric.tick(now);
        let mut buf = std::mem::take(&mut self.scratch);
        self.fabric.drain_deliveries_into(&mut buf);
        let traced = self.shard_bufs.first().is_some_and(TraceBuf::armed);
        for &d in &buf {
            debug_assert_eq!(d.mode, DeliveryMode::Wormhole);
            self.stats.msgs_wormhole += 1;
            if traced {
                let s = self.fabric.shard_of(d.msg.dest);
                self.shard_bufs[s].emit(
                    now,
                    TraceEvent::WormholeDeliver {
                        msg: d.msg.id.0,
                        src: d.msg.src.0,
                        dest: d.msg.dest.0,
                        latency: d.latency(),
                    },
                );
            }
            self.outbox.push(PlaneEvent::WormholeDelivered(d));
        }
        self.scratch = buf;
    }

    /// Moves staged outbound events into `bus`.
    pub fn drain_outbox_into(&mut self, bus: &mut crate::events::EventBus) {
        bus.absorb(&mut self.outbox);
    }

    /// The underlying fabric (read access for instrumentation).
    #[must_use]
    pub fn fabric(&self) -> &WormholeFabric {
        &self.fabric
    }

    /// This plane's statistics contribution.
    #[must_use]
    pub fn stats(&self) -> &WaveStats {
        &self.stats
    }

    /// True while flits are in flight.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.fabric.busy()
    }
}

/// The dataplane is cycle-driven: it does work every tick while busy and
/// schedules no events of its own.
impl Model for DataPlane {
    type Event = ();

    fn tick(&mut self, now: Cycle, _queue: &mut EventQueue<()>) {
        self.step(now);
    }

    fn handle(&mut self, _now: Cycle, _event: (), _queue: &mut EventQueue<()>) {}

    fn busy(&self) -> bool {
        DataPlane::busy(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_network::Message;
    use wavesim_sim::Engine;
    use wavesim_topology::NodeId;

    #[test]
    fn runs_standalone_under_the_engine() {
        let plane = DataPlane::new(Topology::mesh(&[4, 4]), WormholeConfig::default());
        let mut engine = Engine::new(plane);
        engine
            .model_mut()
            .inject(Message::new(1, NodeId(0), NodeId(15), 16, 0));
        let report = engine.run_until(10_000);
        assert!(!engine.model().busy());
        assert!(report.ticks > 0);
        let mut bus = crate::events::EventBus::new();
        engine.model_mut().drain_outbox_into(&mut bus);
        assert!(matches!(bus.pop(), Some(PlaneEvent::WormholeDelivered(_))));
        assert_eq!(engine.model().stats().msgs_wormhole, 1);
    }
}
