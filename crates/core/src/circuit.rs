//! Established circuits and the timing of transfers over them.
//!
//! Once a physical circuit exists, "flits will not find any busy channel in
//! their way … there is no need for flow control" at the link level; only
//! **end-to-end** windowing between the injection buffer and the delivery
//! buffer remains (§2). A transfer over an `h`-hop circuit with lane rate
//! `α/σ` flits per base cycle and window `W` therefore proceeds at
//!
//! ```text
//! rate_eff = min(α/σ, W / RTT)        RTT = 2·h·ctrl_hop_delay
//! ```
//!
//! — the circuit's raw wave-pipelined bandwidth, throttled when the
//! window cannot cover the acknowledgment round trip. The message is
//! delivered `h + ceil(len / rate_eff)` cycles after transmission starts
//! (wave-front propagation plus serialization) and the source's In-use bit
//! clears one ack flight later.

use wavesim_sim::time::cycles_for;
use wavesim_topology::NodeId;

use crate::config::WaveConfig;
use crate::ids::{CircuitId, LaneId};

/// Lifecycle of a circuit in the global registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitStatus {
    /// A probe is still searching/reserving.
    Establishing,
    /// Fully reserved and acknowledged.
    Ready,
    /// A teardown flit is propagating along the path.
    TearingDown,
}

/// Global bookkeeping for one circuit (the simulator's eye view; the
/// distributed equivalents live in the per-node [`crate::pcs::PcsUnit`]s).
#[derive(Debug, Clone)]
pub struct CircuitState {
    /// Identity.
    pub id: CircuitId,
    /// Source node (owner; its Circuit Cache holds the Fig. 5 entry).
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Wave switch used at every hop.
    pub switch: u8,
    /// Reserved lanes in path order (source first). Grows/shrinks while
    /// the probe searches; frozen once `Ready`.
    pub path: Vec<LaneId>,
    /// Lifecycle.
    pub status: CircuitStatus,
}

impl CircuitState {
    /// New circuit in `Establishing` state with an empty path.
    #[must_use]
    pub fn new(id: CircuitId, src: NodeId, dest: NodeId, switch: u8) -> Self {
        Self {
            id,
            src,
            dest,
            switch,
            path: Vec::new(),
            status: CircuitStatus::Establishing,
        }
    }

    /// Path length in hops.
    #[must_use]
    pub fn hops(&self) -> u32 {
        self.path.len() as u32
    }
}

/// The computed timing of one message transfer over a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// Cycles from transmission start until the last flit reaches the
    /// destination's delivery buffer.
    pub delivery_delay: u64,
    /// Cycles from transmission start until the source receives the
    /// acknowledgment for the last fragment (when In-use clears, §2).
    pub ack_delay: u64,
}

/// Plans a transfer of `len_flits` over an `hops`-hop circuit under `cfg`.
///
/// # Panics
/// Panics if `hops == 0` (a circuit has at least one link).
#[must_use]
pub fn plan_transfer(len_flits: u32, hops: u32, cfg: &WaveConfig) -> TransferPlan {
    assert!(hops >= 1, "circuits span at least one link");
    let h = u64::from(hops);
    let (alpha, sigma) = cfg.lane_rate();
    let w = u64::from(cfg.window);
    let rtt = 2 * h * u64::from(cfg.ctrl_hop_delay);
    // Effective rate = min(alpha/sigma, w/rtt), as a fraction.
    let (num, den) = if alpha * rtt <= w * sigma {
        (alpha, sigma)
    } else {
        (w, rtt)
    };
    let serialization = cycles_for(u64::from(len_flits), num, den);
    let delivery_delay = h + serialization;
    let ack_delay = delivery_delay + h * u64::from(cfg.ctrl_hop_delay);
    TransferPlan {
        delivery_delay,
        ack_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaveConfig;

    fn cfg(alpha: u32, sigma: u32, window: u32) -> WaveConfig {
        WaveConfig {
            clock_multiplier: alpha,
            channel_split: sigma,
            window,
            ..WaveConfig::default()
        }
    }

    #[test]
    fn bandwidth_limited_transfer() {
        // 128 flits at 4/2 = 2 flits/cycle over 4 hops; window 64 covers
        // RTT 8 easily.
        let p = plan_transfer(128, 4, &cfg(4, 2, 64));
        assert_eq!(p.delivery_delay, 4 + 64);
        assert_eq!(p.ack_delay, 4 + 64 + 4);
    }

    #[test]
    fn window_limited_transfer() {
        // Window 4 over 8 hops: RTT = 16, rate = 4/16 = 0.25 flits/cycle.
        let p = plan_transfer(16, 8, &cfg(4, 1, 4));
        assert_eq!(p.delivery_delay, 8 + 64);
    }

    #[test]
    fn window_exactly_covers_rtt() {
        // alpha/sigma = 2, RTT = 4, W = 8: W/RTT = 2 = lane rate; either
        // branch gives the same answer.
        let p = plan_transfer(10, 2, &cfg(4, 2, 8));
        assert_eq!(p.delivery_delay, 2 + 5);
    }

    #[test]
    fn single_flit_over_circuit_is_fast() {
        let p = plan_transfer(1, 3, &cfg(4, 2, 64));
        assert_eq!(p.delivery_delay, 3 + 1);
        assert_eq!(p.ack_delay, 3 + 1 + 3);
    }

    #[test]
    fn longer_paths_cost_propagation_and_ack() {
        let short = plan_transfer(64, 2, &cfg(4, 2, 64));
        let long = plan_transfer(64, 10, &cfg(4, 2, 64));
        assert!(long.delivery_delay > short.delivery_delay);
        assert!(long.ack_delay - long.delivery_delay > short.ack_delay - short.delivery_delay);
    }

    #[test]
    fn circuit_state_lifecycle() {
        let c = CircuitState::new(CircuitId(1), NodeId(0), NodeId(5), 1);
        assert_eq!(c.status, CircuitStatus::Establishing);
        assert_eq!(c.hops(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn zero_hop_transfer_rejected() {
        let _ = plan_transfer(8, 0, &WaveConfig::default());
    }
}
