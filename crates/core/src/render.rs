//! Human-readable snapshots of protocol state, for debugging and teaching.
//!
//! Two views:
//! * [`render_circuits`] — one line per live circuit: id, endpoints,
//!   switch, status, and the path in coordinates;
//! * [`render_lane_map`] — for 2-D topologies, an ASCII grid of the wave
//!   plane of one switch, marking each inter-node link free (`.`),
//!   reserved (`#`), or faulty (`x`).
//!
//! Both are pure functions of a [`WaveNetwork`] snapshot; nothing here
//! mutates state.

use std::fmt::Write as _;

use wavesim_topology::{Coords, Dir, PortDir};

use crate::ids::LaneId;
use crate::lanes::LaneState;
use crate::network::WaveNetwork;

/// Lists every live circuit with its path, sorted by id.
#[must_use]
pub fn render_circuits(net: &WaveNetwork) -> String {
    let topo = net.topology();
    let mut ids: Vec<_> = net.circuits().keys().collect();
    ids.sort();
    let mut out = String::new();
    let _ = writeln!(out, "{} live circuit(s):", ids.len());
    for id in ids {
        let c = net.circuits().get(id).expect("listed id is live");
        let mut path = String::new();
        path.push_str(&topo.coords(c.src).to_string());
        for lane in &c.path {
            let next = topo.link_dest(lane.link);
            path.push_str(" -> ");
            path.push_str(&topo.coords(next).to_string());
        }
        let _ = writeln!(
            out,
            "  {id} S{} {:?} {} => {}: {path}",
            c.switch,
            c.status,
            topo.coords(c.src),
            topo.coords(c.dest),
        );
    }
    out
}

fn lane_char(net: &WaveNetwork, lane: LaneId) -> char {
    match net.lanes().state(lane) {
        LaneState::Free => '.',
        LaneState::Reserved(_) => '#',
        LaneState::Faulty => 'x',
    }
}

/// ASCII map of wave switch `switch`'s lanes on a 2-D topology. Nodes are
/// `o`; the two characters after each node show its +X lane (east) and
/// the row below shows +Y lanes (south in the rendering). Reverse-
/// direction lanes are drawn in a second character of each pair.
///
/// # Panics
/// Panics unless the topology is 2-D and `switch` is in `1..=k`.
#[must_use]
pub fn render_lane_map(net: &WaveNetwork, switch: u8) -> String {
    let topo = net.topology();
    assert_eq!(topo.ndims(), 2, "lane map rendering is 2-D only");
    assert!(
        switch >= 1 && switch <= net.lanes().k(),
        "switch out of range"
    );
    let (rx, ry) = (topo.radix(0), topo.radix(1));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "wave plane S{switch} ({rx}x{ry}): . free, # reserved, x faulty"
    );
    for y in 0..ry {
        // Node row: o<+X lane><-X lane of neighbour> ...
        for x in 0..rx {
            let node = topo.node(Coords::new(&[x, y]));
            out.push('o');
            if topo.neighbor(node, PortDir::new(0, Dir::Plus)).is_some() {
                let fwd = LaneId::new(topo.link_id(node, PortDir::new(0, Dir::Plus)), switch);
                let nb = topo.neighbor(node, PortDir::new(0, Dir::Plus)).unwrap();
                let rev = LaneId::new(topo.link_id(nb, PortDir::new(0, Dir::Minus)), switch);
                out.push(lane_char(net, fwd));
                out.push(lane_char(net, rev));
            } else {
                out.push_str("  ");
            }
        }
        out.push('\n');
        // Vertical lane row (+Y downward in the rendering).
        if y + 1 < ry || topo.kind() == wavesim_topology::TopologyKind::Torus {
            for x in 0..rx {
                let node = topo.node(Coords::new(&[x, y]));
                if let Some(nb) = topo.neighbor(node, PortDir::new(1, Dir::Plus)) {
                    let fwd = LaneId::new(topo.link_id(node, PortDir::new(1, Dir::Plus)), switch);
                    let rev = LaneId::new(topo.link_id(nb, PortDir::new(1, Dir::Minus)), switch);
                    out.push(lane_char(net, fwd));
                    out.push(lane_char(net, rev));
                    out.push(' ');
                } else {
                    out.push_str("   ");
                }
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WaveConfig;
    use wavesim_network::Message;
    use wavesim_topology::{NodeId, Topology};

    fn settled_net() -> WaveNetwork {
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        net.send(0, Message::new(1, NodeId(0), NodeId(15), 32, 0));
        let mut now = 0;
        while net.busy() && now < 50_000 {
            net.tick(now);
            now += 1;
        }
        net
    }

    #[test]
    fn circuit_listing_shows_path() {
        let net = settled_net();
        let s = render_circuits(&net);
        assert!(s.contains("1 live circuit(s)"), "{s}");
        assert!(s.contains("(0,0)"), "{s}");
        assert!(s.contains("(3,3)"), "{s}");
        assert!(s.contains("->"), "{s}");
    }

    /// Strips the legend header so marker counts reflect lanes only.
    fn body(map: &str) -> String {
        map.lines().skip(1).collect::<Vec<_>>().join("\n")
    }

    #[test]
    fn lane_map_marks_reserved_lanes() {
        let net = settled_net();
        let k = net.config().k;
        let maps: Vec<String> = (1..=k).map(|s| body(&render_lane_map(&net, s))).collect();
        // The circuit reserved lanes on exactly one switch.
        let reserved_maps = maps.iter().filter(|m| m.contains('#')).count();
        assert_eq!(reserved_maps, 1, "{maps:?}");
        // Reserved lane count in the map equals the census.
        let hashes: usize = maps.iter().map(|m| m.matches('#').count()).sum();
        assert_eq!(hashes, net.lanes().census().1);
    }

    #[test]
    fn lane_map_marks_faults() {
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        let link = net.topology().links().next().unwrap();
        net.inject_lane_fault(LaneId::new(link, 1))
            .expect("fault a known-good lane");
        let s = body(&render_lane_map(&net, 1));
        assert_eq!(s.matches('x').count(), 1, "{s}");
        let s2 = body(&render_lane_map(&net, 2));
        assert_eq!(s2.matches('x').count(), 0);
    }

    #[test]
    fn empty_network_renders_cleanly() {
        let net = WaveNetwork::new(Topology::mesh(&[3, 3]), WaveConfig::default());
        assert!(render_circuits(&net).contains("0 live circuit(s)"));
        let s = body(&render_lane_map(&net, 1));
        assert!(!s.contains('#'));
        assert_eq!(s.matches('o').count(), 9);
    }
}
