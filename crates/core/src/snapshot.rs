//! Canonical observable state snapshots.
//!
//! [`NetSnapshot`] is a deterministic, order-normalized digest of a
//! [`WaveNetwork`]'s protocol-visible state: which lanes are held or
//! faulty, which circuits exist and where they stand, which probes are in
//! flight. Two networks that have reached the same protocol state produce
//! byte-identical snapshots regardless of internal arena slot order, so
//! snapshots support:
//!
//! * convergence checks ("did these two runs end in the same place?");
//! * the model checker's abstraction audit (`wavesim-model` replays an
//!   abstract schedule and compares the real network's snapshot against
//!   what the abstraction predicts);
//! * cheap state digests via [`NetSnapshot::fingerprint`] without keeping
//!   the full snapshot around.

use wavesim_topology::NodeId;

use crate::circuit::CircuitStatus;
use crate::ids::{CircuitId, LaneId};
use crate::lanes::LaneState;
use crate::network::WaveNetwork;

/// One non-free lane: who holds it, or that it is out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LaneUse {
    /// Reserved by the given circuit.
    Held(CircuitId),
    /// Marked faulty.
    Faulty,
}

/// One circuit, reduced to its protocol-visible fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircuitSnap {
    /// The attempt/circuit id.
    pub id: CircuitId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Wave switch in use.
    pub switch: u8,
    /// Lifecycle stage.
    pub status: CircuitStatus,
    /// Reserved path, source first.
    pub path: Vec<LaneId>,
}

/// One in-flight probe, reduced to its protocol-visible fields.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProbeSnap {
    /// The circuit attempt the probe works for.
    pub circuit: CircuitId,
    /// Node currently occupied.
    pub at: NodeId,
    /// Switch being searched.
    pub switch: u8,
    /// Lane the probe is parked on awaiting a forced teardown, if any.
    pub parked_on: Option<LaneId>,
}

/// Order-normalized digest of a network's protocol-visible state.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NetSnapshot {
    /// Every non-free lane, sorted by id.
    pub lanes: Vec<(LaneId, LaneUse)>,
    /// Every live circuit, sorted by id.
    pub circuits: Vec<CircuitSnap>,
    /// Every in-flight probe, sorted by circuit then position.
    pub probes: Vec<ProbeSnap>,
    /// Messages accepted but not yet delivered.
    pub outstanding: u64,
    /// Queued control flits (probes/acks/teardowns in transit).
    pub control_backlog: u64,
}

impl NetSnapshot {
    /// True when nothing is reserved, searching, or outstanding.
    #[must_use]
    pub fn quiescent(&self) -> bool {
        self.outstanding == 0
            && self.control_backlog == 0
            && self.probes.is_empty()
            && self.lanes.iter().all(|(_, u)| matches!(u, LaneUse::Faulty))
    }

    /// FNV-1a digest of the canonical encoding. Stable across runs and
    /// processes (unlike `DefaultHasher`), so it can be pinned in goldens.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            acc ^= v;
            acc = acc.wrapping_mul(0x100_0000_01b3);
        };
        for (lane, usage) in &self.lanes {
            mix(u64::from(lane.link.0));
            mix(u64::from(lane.switch));
            match usage {
                LaneUse::Held(c) => mix(c.0 ^ 1),
                LaneUse::Faulty => mix(u64::MAX),
            }
        }
        for c in &self.circuits {
            mix(c.id.0);
            mix(u64::from(c.src.0));
            mix(u64::from(c.dest.0));
            mix(u64::from(c.switch));
            mix(match c.status {
                CircuitStatus::Establishing => 1,
                CircuitStatus::Ready => 2,
                CircuitStatus::TearingDown => 3,
            });
            mix(c.path.len() as u64);
            for l in &c.path {
                mix(u64::from(l.link.0));
                mix(u64::from(l.switch));
            }
        }
        for p in &self.probes {
            mix(p.circuit.0);
            mix(u64::from(p.at.0));
            mix(u64::from(p.switch));
            match p.parked_on {
                Some(l) => {
                    mix(u64::from(l.link.0));
                    mix(u64::from(l.switch));
                }
                None => mix(u64::MAX - 1),
            }
        }
        mix(self.outstanding);
        mix(self.control_backlog);
        acc
    }
}

impl WaveNetwork {
    /// Captures the protocol-visible state as a canonical snapshot.
    #[must_use]
    pub fn snapshot(&self) -> NetSnapshot {
        let topo = self.topology();
        let k = self.lanes().k();
        let mut lanes = Vec::new();
        for link in topo.links() {
            for s in 1..=k {
                let lane = LaneId::new(link, s);
                match self.lanes().state(lane) {
                    LaneState::Free => {}
                    LaneState::Reserved(c) => lanes.push((lane, LaneUse::Held(c))),
                    LaneState::Faulty => lanes.push((lane, LaneUse::Faulty)),
                }
            }
        }
        lanes.sort_unstable();
        let mut circuits: Vec<CircuitSnap> = self
            .circuits()
            .iter()
            .map(|(id, c)| CircuitSnap {
                id,
                src: c.src,
                dest: c.dest,
                switch: c.switch,
                status: c.status,
                path: c.path.clone(),
            })
            .collect();
        circuits.sort_unstable_by_key(|c| c.id);
        let mut probes: Vec<ProbeSnap> = self
            .probes()
            .iter()
            .map(|(_, p)| ProbeSnap {
                circuit: p.circuit,
                at: p.at,
                switch: p.switch,
                parked_on: p.parked_on,
            })
            .collect();
        probes.sort_unstable_by_key(|p| (p.circuit, p.at, p.switch));
        NetSnapshot {
            lanes,
            circuits,
            probes,
            outstanding: self.outstanding(),
            control_backlog: self.control_backlog() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProtocolKind, WaveConfig};
    use crate::network::WaveNetwork;
    use wavesim_network::Message;
    use wavesim_topology::Topology;

    fn drained_net() -> WaveNetwork {
        let mut net = WaveNetwork::new(
            Topology::mesh(&[2, 2]),
            WaveConfig {
                protocol: ProtocolKind::Clrp,
                ..WaveConfig::default()
            },
        );
        for i in 0..3u64 {
            net.send(0, Message::new(i, NodeId(i as u32), NodeId(3), 8, 0));
        }
        let mut now = 0;
        while net.busy() && now < 100_000 {
            net.tick(now);
            now += 1;
        }
        assert!(!net.busy());
        net
    }

    #[test]
    fn fresh_network_snapshot_is_quiescent() {
        let net = WaveNetwork::new(Topology::mesh(&[2, 2]), WaveConfig::default());
        let snap = net.snapshot();
        assert!(snap.quiescent());
        assert_eq!(snap, NetSnapshot::default());
    }

    #[test]
    fn identical_runs_have_identical_snapshots() {
        let a = drained_net().snapshot();
        let b = drained_net().snapshot();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // CLRP caches circuits: a drained run is NOT quiescent, the
        // Ready circuits and their lanes persist.
        assert!(!a.circuits.is_empty());
        assert!(!a.lanes.is_empty());
    }

    #[test]
    fn fingerprint_reacts_to_state() {
        let fresh = WaveNetwork::new(Topology::mesh(&[2, 2]), WaveConfig::default())
            .snapshot()
            .fingerprint();
        assert_ne!(fresh, drained_net().snapshot().fingerprint());
    }
}
