//! Circuit-cache replacement algorithms.
//!
//! "When a line is required and the cache is full, a replacement algorithm
//! selects a line to be removed" (§3.1). The `Replace` field of the Fig. 5
//! registers "stores accounting information regarding the use of the
//! circuit; the meaning of this field depends on the replacement
//! algorithm" — here that field is a `u64` score and each policy defines
//! how it is maintained and compared.

use crate::cache::CacheEntry;
use crate::config::ReplacementPolicy;

/// SplitMix64 finaliser — a tiny, deterministic integer hash used by the
/// Random policy so victim choice is reproducible from the config seed.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The eviction score of `entry` under `policy` — **lower is evicted
/// first**.
#[must_use]
pub fn eviction_score(entry: &CacheEntry, policy: ReplacementPolicy, seed: u64) -> u64 {
    match policy {
        // LRU: Replace holds the cycle of last use; oldest goes first.
        ReplacementPolicy::Lru => entry.replace,
        // LFU: Replace holds the use count; least used goes first.
        ReplacementPolicy::Lfu => entry.replace,
        // FIFO: Replace holds the establishment sequence number.
        ReplacementPolicy::Fifo => entry.replace,
        // Random: deterministic hash of the circuit identity.
        ReplacementPolicy::Random => splitmix64(entry.circuit.0 ^ seed),
    }
}

/// Updates `entry.replace` when the circuit is used at cycle `now`.
pub fn on_use(entry: &mut CacheEntry, policy: ReplacementPolicy, now: u64) {
    match policy {
        ReplacementPolicy::Lru => entry.replace = now,
        ReplacementPolicy::Lfu => entry.replace = entry.replace.saturating_add(1),
        ReplacementPolicy::Fifo | ReplacementPolicy::Random => {}
    }
}

/// Initialises `entry.replace` when the circuit is created: `now` for LRU
/// (freshly used), zero uses for LFU, the creation sequence for FIFO.
pub fn on_create(entry: &mut CacheEntry, policy: ReplacementPolicy, now: u64, seq: u64) {
    entry.replace = match policy {
        ReplacementPolicy::Lru => now,
        ReplacementPolicy::Lfu => 0,
        ReplacementPolicy::Fifo => seq,
        ReplacementPolicy::Random => 0,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheEntry, EntryState};
    use crate::ids::CircuitId;
    use wavesim_topology::NodeId;

    fn entry(circuit: u64) -> CacheEntry {
        CacheEntry::new(NodeId(1), CircuitId(circuit), 1, 1)
    }

    #[test]
    fn lru_prefers_oldest() {
        let mut a = entry(1);
        let mut b = entry(2);
        on_create(&mut a, ReplacementPolicy::Lru, 100, 0);
        on_create(&mut b, ReplacementPolicy::Lru, 200, 1);
        on_use(&mut a, ReplacementPolicy::Lru, 500);
        // b now least recently used.
        assert!(
            eviction_score(&b, ReplacementPolicy::Lru, 0)
                < eviction_score(&a, ReplacementPolicy::Lru, 0)
        );
    }

    #[test]
    fn lfu_prefers_least_used() {
        let mut a = entry(1);
        let mut b = entry(2);
        on_create(&mut a, ReplacementPolicy::Lfu, 0, 0);
        on_create(&mut b, ReplacementPolicy::Lfu, 0, 1);
        for _ in 0..5 {
            on_use(&mut a, ReplacementPolicy::Lfu, 0);
        }
        on_use(&mut b, ReplacementPolicy::Lfu, 0);
        assert!(
            eviction_score(&b, ReplacementPolicy::Lfu, 0)
                < eviction_score(&a, ReplacementPolicy::Lfu, 0)
        );
    }

    #[test]
    fn fifo_ignores_use() {
        let mut a = entry(1);
        let mut b = entry(2);
        on_create(&mut a, ReplacementPolicy::Fifo, 0, 10);
        on_create(&mut b, ReplacementPolicy::Fifo, 0, 20);
        for _ in 0..100 {
            on_use(&mut a, ReplacementPolicy::Fifo, 999);
        }
        assert!(
            eviction_score(&a, ReplacementPolicy::Fifo, 0)
                < eviction_score(&b, ReplacementPolicy::Fifo, 0),
            "FIFO evicts the older circuit regardless of use"
        );
    }

    #[test]
    fn random_is_deterministic_in_seed() {
        let a = entry(7);
        let s1 = eviction_score(&a, ReplacementPolicy::Random, 42);
        let s2 = eviction_score(&a, ReplacementPolicy::Random, 42);
        let s3 = eviction_score(&a, ReplacementPolicy::Random, 43);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        let _ = EntryState::Ready; // keep import used
    }

    #[test]
    fn splitmix_spreads_bits() {
        let xs: Vec<u64> = (0..64).map(splitmix64).collect();
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), 64);
    }
}
