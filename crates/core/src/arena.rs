//! Generational-index arenas for hot protocol state.
//!
//! The control and circuit planes create and destroy probes and circuits
//! constantly; keying their registries by `HashMap` put a hash + probe
//! sequence on every protocol step. These arenas replace that with direct
//! vector indexing: an id packs `generation << 32 | slot`, slots are
//! recycled LIFO, and the generation is bumped on every free, so a stale
//! id held by anyone (a parked probe, a CARP `Failed` cache entry, a
//! release request in flight) can never alias a recycled slot — lookups
//! with dead ids simply miss, exactly like the `HashMap`s they replace.
//!
//! Three pieces, matching the three ownership shapes in the planes:
//!
//! * [`GenSlab`] — self-allocating storage: insertion mints the id
//!   (probes, owned entirely by the controlplane);
//! * [`IdAlloc`] — an allocator without storage, for ids minted by one
//!   plane (circuitplane) while the state lives in another;
//! * [`SlotMap`] — gen-checked storage keyed by externally minted ids
//!   (the controlplane's circuit registry, keyed by [`IdAlloc`] ids).
//!
//! Iteration is in slot order — deterministic, unlike `HashMap`, which is
//! why swapping these in cannot perturb any schedule.

/// An id type backed by a raw `u64` in `generation << 32 | slot` layout.
///
/// [`crate::ids::CircuitId`] and [`crate::ids::ProbeId`] implement this;
/// plain sequential ids (generation 0) remain valid keys, so tests that
/// hand-construct `CircuitId(0)` keep working.
pub trait ArenaId: Copy + Eq {
    /// Builds the id from its raw packed value.
    fn from_raw(raw: u64) -> Self;
    /// The raw packed value.
    fn raw(self) -> u64;
}

#[inline]
fn slot_of(raw: u64) -> u32 {
    raw as u32
}

#[inline]
fn gen_of(raw: u64) -> u32 {
    (raw >> 32) as u32
}

#[inline]
fn pack(generation: u32, slot: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(slot)
}

/// Self-allocating generational slab: inserting a value mints its id.
#[derive(Debug, Clone)]
pub struct GenSlab<K, V> {
    slots: Vec<(u32, Option<V>)>,
    free: Vec<u32>,
    live: usize,
    _key: std::marker::PhantomData<K>,
}

impl<K, V> Default for GenSlab<K, V> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            _key: std::marker::PhantomData,
        }
    }
}

impl<K: ArenaId, V> GenSlab<K, V> {
    /// Empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a value built from its freshly minted id (for values that
    /// store their own key).
    pub fn insert_with(&mut self, build: impl FnOnce(K) -> V) -> K {
        self.live += 1;
        if let Some(s) = self.free.pop() {
            let k = K::from_raw(pack(self.slots[s as usize].0, s));
            self.slots[s as usize].1 = Some(build(k));
            k
        } else {
            let s = u32::try_from(self.slots.len()).expect("fewer than 2^32 live entries");
            let k = K::from_raw(pack(0, s));
            self.slots.push((0, Some(build(k))));
            k
        }
    }

    /// Inserts a value, returning its minted id.
    pub fn insert(&mut self, value: V) -> K {
        self.insert_with(|_| value)
    }

    fn index(&self, key: K) -> Option<usize> {
        let raw = key.raw();
        let s = slot_of(raw) as usize;
        match self.slots.get(s) {
            Some(&(generation, Some(_))) if generation == gen_of(raw) => Some(s),
            _ => None,
        }
    }

    /// The value for `key`, unless it was removed (stale ids miss).
    #[must_use]
    pub fn get(&self, key: K) -> Option<&V> {
        self.index(key).and_then(|s| self.slots[s].1.as_ref())
    }

    /// Mutable access to the value for `key`.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.index(key).and_then(|s| self.slots[s].1.as_mut())
    }

    /// True when `key` is live.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.index(*key).is_some()
    }

    /// Removes and returns the value for `key`, bumping the slot's
    /// generation so the id dies with it.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let s = self.index(*key)?;
        let v = self.slots[s].1.take();
        self.slots[s].0 = self.slots[s].0.wrapping_add(1);
        self.free.push(s as u32);
        self.live -= 1;
        v
    }

    /// Takes the value out while keeping the slot — and therefore the id —
    /// reserved. The caller must either [`Self::restore`] the value under
    /// the same id or retire the id with [`Self::free`]. Lets a processing
    /// step own the value by move (no aliasing with `&mut self` calls)
    /// without invalidating the id held by parked references.
    pub fn take(&mut self, key: &K) -> Option<V> {
        let s = self.index(*key)?;
        self.live -= 1;
        self.slots[s].1.take()
    }

    /// Puts a value back into the slot a [`Self::take`] left vacant.
    pub fn restore(&mut self, key: K, value: V) {
        let raw = key.raw();
        let s = slot_of(raw) as usize;
        debug_assert!(
            self.slots
                .get(s)
                .is_some_and(|(g, v)| *g == gen_of(raw) && v.is_none()),
            "restore target must be a slot this id was taken from"
        );
        self.slots[s].1 = Some(value);
        self.live += 1;
    }

    /// Retires an id whose slot was left vacant by [`Self::take`]: bumps
    /// the generation and returns the slot to the free pool.
    pub fn free(&mut self, key: K) {
        let raw = key.raw();
        let s = slot_of(raw) as usize;
        let Some((generation, v)) = self.slots.get_mut(s) else {
            return;
        };
        if *generation == gen_of(raw) {
            debug_assert!(v.is_none(), "free expects a taken slot");
            *generation = generation.wrapping_add(1);
            self.free.push(s as u32);
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates `(id, value)` in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(s, (generation, v))| {
                v.as_ref()
                    .map(|v| (K::from_raw(pack(*generation, s as u32)), v))
            })
    }

    /// Iterates values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|(_, v)| v.as_ref())
    }
}

/// Generational id allocator without storage: one plane mints ids, another
/// holds the state. Recycling is gen-checked and idempotent — freeing an
/// id twice (or freeing a stale id) is a no-op, which the release
/// protocol needs: both a probe unwind and a teardown may report the same
/// circuit released.
#[derive(Debug, Clone, Default)]
pub struct IdAlloc<K> {
    gens: Vec<u32>,
    free: Vec<u32>,
    _key: std::marker::PhantomData<K>,
}

impl<K: ArenaId> IdAlloc<K> {
    /// Empty allocator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            gens: Vec::new(),
            free: Vec::new(),
            _key: std::marker::PhantomData,
        }
    }

    /// Mints a fresh id, reusing the most recently recycled slot.
    pub fn alloc(&mut self) -> K {
        if let Some(s) = self.free.pop() {
            K::from_raw(pack(self.gens[s as usize], s))
        } else {
            let s = u32::try_from(self.gens.len()).expect("fewer than 2^32 live ids");
            self.gens.push(0);
            K::from_raw(pack(0, s))
        }
    }

    /// Returns `key`'s slot to the pool. Stale or double frees are
    /// ignored: only the generation currently live for the slot recycles.
    pub fn recycle(&mut self, key: K) {
        let raw = key.raw();
        let s = slot_of(raw) as usize;
        if let Some(generation) = self.gens.get_mut(s) {
            if *generation == gen_of(raw) {
                *generation = generation.wrapping_add(1);
                self.free.push(s as u32);
            }
        }
    }
}

/// Gen-checked storage keyed by externally minted [`ArenaId`]s. Lookups
/// with a stale id (older generation in the same slot) miss; inserting is
/// only valid while the slot is vacant.
#[derive(Debug, Clone)]
pub struct SlotMap<K, V> {
    slots: Vec<Option<(u64, V)>>,
    live: usize,
    _key: std::marker::PhantomData<K>,
}

impl<K, V> Default for SlotMap<K, V> {
    fn default() -> Self {
        Self {
            slots: Vec::new(),
            live: 0,
            _key: std::marker::PhantomData,
        }
    }
}

impl<K: ArenaId, V> SlotMap<K, V> {
    /// Empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn index(&self, key: K) -> Option<usize> {
        let raw = key.raw();
        let s = slot_of(raw) as usize;
        match self.slots.get(s) {
            Some(Some((stored, _))) if *stored == raw => Some(s),
            _ => None,
        }
    }

    /// The value for `key`, if live.
    #[must_use]
    pub fn get(&self, key: K) -> Option<&V> {
        self.index(key)
            .map(|s| &self.slots[s].as_ref().expect("indexed slot is full").1)
    }

    /// Mutable access to the value for `key`.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.index(key)
            .map(|s| &mut self.slots[s].as_mut().expect("indexed slot is full").1)
    }

    /// True when `key` is live.
    #[must_use]
    pub fn contains_key(&self, key: &K) -> bool {
        self.index(*key).is_some()
    }

    /// The value for `key`, inserting `build()` first if absent.
    pub fn get_or_insert_with(&mut self, key: K, build: impl FnOnce() -> V) -> &mut V {
        if self.index(key).is_none() {
            self.insert(key, build());
        }
        self.get_mut(key).expect("just inserted")
    }

    /// Inserts a value under an externally minted key.
    ///
    /// The slot must be vacant: the id allocator guarantees a slot is
    /// never handed out twice concurrently, so an occupied slot means a
    /// recycle was missed.
    pub fn insert(&mut self, key: K, value: V) {
        let raw = key.raw();
        let s = slot_of(raw) as usize;
        if s >= self.slots.len() {
            self.slots.resize_with(s + 1, || None);
        }
        debug_assert!(
            self.slots[s].is_none(),
            "SlotMap::insert into an occupied slot"
        );
        if self.slots[s].is_none() {
            self.live += 1;
        }
        self.slots[s] = Some((raw, value));
    }

    /// Removes and returns the value for `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let s = self.index(*key)?;
        self.live -= 1;
        self.slots[s].take().map(|(_, v)| v)
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates `(id, value)` in slot order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .filter_map(|e| e.as_ref().map(|(raw, v)| (K::from_raw(*raw), v)))
    }

    /// Iterates ids in slot order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(|e| e.as_ref().map(|(_, v)| v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct Id(u64);
    impl ArenaId for Id {
        fn from_raw(raw: u64) -> Self {
            Id(raw)
        }
        fn raw(self) -> u64 {
            self.0
        }
    }

    #[test]
    fn genslab_recycles_slots_with_fresh_generations() {
        let mut slab: GenSlab<Id, &str> = GenSlab::new();
        let a = slab.insert("a");
        assert_eq!(slab.get(a), Some(&"a"));
        assert_eq!(slab.remove(&a), Some("a"));
        assert!(slab.get(a).is_none(), "stale id must miss");
        let b = slab.insert("b");
        assert_ne!(a.raw(), b.raw(), "recycled slot gets a new generation");
        assert_eq!(a.raw() as u32, b.raw() as u32, "but reuses the slot");
        assert_eq!(slab.get(b), Some(&"b"));
        assert!(!slab.contains_key(&a));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn genslab_take_restore_free_cycle() {
        let mut slab: GenSlab<Id, &str> = GenSlab::new();
        let a = slab.insert("a");
        let v = slab.take(&a).unwrap();
        assert!(slab.get(a).is_none() && slab.is_empty());
        slab.restore(a, v);
        assert_eq!(slab.get(a), Some(&"a"), "restore revives the same id");
        let _ = slab.take(&a).unwrap();
        slab.free(a);
        let b = slab.insert("b");
        assert_eq!(a.raw() as u32, b.raw() as u32, "slot recycled");
        assert_ne!(a.raw(), b.raw(), "under a fresh generation");
        assert!(slab.take(&a).is_none(), "retired id misses");
    }

    #[test]
    fn genslab_insert_with_sees_its_own_key() {
        let mut slab: GenSlab<Id, Id> = GenSlab::new();
        let k = slab.insert_with(|k| k);
        assert_eq!(slab.get(k), Some(&k));
    }

    #[test]
    fn genslab_iterates_in_slot_order() {
        let mut slab: GenSlab<Id, u32> = GenSlab::new();
        let a = slab.insert(10);
        let _b = slab.insert(20);
        let _c = slab.insert(30);
        slab.remove(&a);
        let vals: Vec<u32> = slab.values().copied().collect();
        assert_eq!(vals, vec![20, 30]);
        assert_eq!(slab.iter().count(), 2);
    }

    #[test]
    fn idalloc_double_recycle_is_a_noop() {
        let mut alloc: IdAlloc<Id> = IdAlloc::new();
        let a = alloc.alloc();
        let b = alloc.alloc();
        alloc.recycle(a);
        alloc.recycle(a); // stale: generation already bumped
        let c = alloc.alloc();
        let d = alloc.alloc();
        // Only one slot was freed, so exactly one of c/d reuses a's slot
        // (under a new generation) and the other opens a fresh slot.
        assert_ne!(c.raw(), a.raw());
        assert_ne!(d.raw(), a.raw());
        assert_ne!(c.raw(), d.raw());
        assert_ne!(b.raw(), c.raw());
    }

    #[test]
    fn slotmap_gen_checks_external_keys() {
        let mut alloc: IdAlloc<Id> = IdAlloc::new();
        let mut map: SlotMap<Id, &str> = SlotMap::new();
        let a = alloc.alloc();
        map.insert(a, "a");
        assert_eq!(map.get(a), Some(&"a"));
        assert_eq!(map.remove(&a), Some("a"));
        alloc.recycle(a);
        let b = alloc.alloc(); // same slot, new generation
        map.insert(b, "b");
        assert!(map.get(a).is_none(), "stale id must not see the new value");
        assert_eq!(map.get(b), Some(&"b"));
        assert_eq!(map.keys().count(), 1);
    }

    #[test]
    fn slotmap_plain_sequential_ids_work() {
        // Hand-built generation-0 ids (as tests construct) are valid keys.
        let mut map: SlotMap<Id, u32> = SlotMap::new();
        map.insert(Id(0), 100);
        map.insert(Id(5), 200);
        assert_eq!(map.get(Id(0)), Some(&100));
        assert_eq!(map.get(Id(5)), Some(&200));
        assert_eq!(map.len(), 2);
        let ids: Vec<u64> = map.keys().map(ArenaId::raw).collect();
        assert_eq!(ids, vec![0, 5], "slot-order iteration");
    }

    #[test]
    fn slotmap_get_or_insert_with() {
        let mut map: SlotMap<Id, u32> = SlotMap::new();
        *map.get_or_insert_with(Id(3), || 7) += 1;
        assert_eq!(map.get(Id(3)), Some(&8));
        *map.get_or_insert_with(Id(3), || 99) += 1;
        assert_eq!(map.get(Id(3)), Some(&9), "existing entry is kept");
    }
}
