//! Wave-router and protocol configuration.
//!
//! The paper stresses that the architecture "is very flexible … several
//! parameters can be adjusted, including the number of fast switches, the
//! number of virtual channels for wormhole switching, and the routing
//! protocols" (§2). [`WaveConfig`] exposes every one of those knobs; the
//! E9/E10 experiments sweep them.

use wavesim_network::WormholeConfig;

/// Circuit-cache replacement algorithm — the interpretation of the
/// `Replace` field of the Fig. 5 registers ("the meaning of this field
/// depends on the replacement algorithm").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used circuit (`Replace` = last-use cycle).
    Lru,
    /// Evict the least-frequently-used circuit (`Replace` = use count).
    Lfu,
    /// Evict the oldest circuit (`Replace` = establishment sequence).
    Fifo,
    /// Evict a deterministic pseudo-random victim (`Replace` = hash seed).
    Random,
}

/// Which §3 protocol drives circuit management.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Cache-Like Routing Protocol (§3.1): circuits managed automatically,
    /// network treated as a cache of circuits.
    Clrp,
    /// Compiler-Aided Routing Protocol (§3.2): circuits established and
    /// torn down by explicit instructions; other messages use wormhole.
    Carp,
    /// Baseline: wave plane disabled, every message uses wormhole
    /// switching through `S0`. (The comparison system of the evaluation.)
    WormholeOnly,
}

/// CLRP simplification switches (§3.1: "The CLRP protocol can be
/// simplified in several ways…").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClrpVariant {
    /// Skip phase one entirely: the first probe is sent with the Force bit
    /// already set ("the Force bit can be set when the probe is first
    /// sent…, therefore skipping phase one").
    pub skip_phase1: bool,
    /// In the Force phase, try only the initial switch instead of cycling
    /// through all `k` switches ("the second phase may try a single
    /// switch").
    pub single_switch_force: bool,
    /// Disable phase two entirely (no Force probes): failures fall through
    /// to wormhole directly. Not a paper variant per se, but the natural
    /// ablation point for E10.
    pub enable_force: bool,
}

impl Default for ClrpVariant {
    fn default() -> Self {
        Self {
            skip_phase1: false,
            single_switch_force: false,
            enable_force: true,
        }
    }
}

/// Full configuration of a wave-switched network.
#[derive(Debug, Clone, Copy)]
pub struct WaveConfig {
    /// The `S0` wormhole plane configuration (`w` virtual channels etc.).
    pub wormhole: WormholeConfig,
    /// Number of wave-pipelined switches per router — the paper's `k`.
    /// `k = 0` is only meaningful with [`ProtocolKind::WormholeOnly`].
    pub k: u8,
    /// Wave-pipelining clock advantage over the base clock — the paper's
    /// companion study measured "up to four times higher" (§2).
    pub clock_multiplier: u32,
    /// How many narrower physical channels each link is split into for the
    /// wave switches (§2: splitting "shares bandwidth in a very inflexible
    /// way", so keep it small). Lane bandwidth is
    /// `clock_multiplier / channel_split` flits per base cycle.
    pub channel_split: u32,
    /// End-to-end windowing protocol window, in flits (§2: "a windowing
    /// protocol is implemented … requires deep delivery buffers").
    pub window: u32,
    /// Cycles per control-channel hop (probe/ack/teardown/release flits).
    pub ctrl_hop_delay: u32,
    /// Extra cycles the PCS routing control unit spends deciding a probe's
    /// next hop (forward moves only — acks and teardowns follow the
    /// recorded mappings without a routing decision). Comparable to the
    /// wormhole `routing_delay`: the PCS performs the same class of
    /// routing computation, plus History-Store bookkeeping.
    pub pcs_delay: u32,
    /// MB-m misroute budget — the `m` of the probe's Misroute field.
    pub misroutes: u8,
    /// End-point message-buffer size (flits) CLRP allocates when a circuit
    /// is established automatically: "the size of the longest message
    /// using that circuit is not known at that time; a reasonably large
    /// buffer can be allocated" (§2).
    pub initial_buffer_flits: u32,
    /// Software cost (cycles) of re-allocating the end-point buffers when
    /// a longer message arrives ("buffers may have to be re-allocated for
    /// longer messages", §2). CARP circuits never pay it: "buffer size is
    /// determined by the longest message of the set".
    pub realloc_penalty: u32,
    /// Circuit Cache entries per node (Fig. 5 register file size).
    pub cache_capacity: usize,
    /// Replacement algorithm for the circuit cache.
    pub replacement: ReplacementPolicy,
    /// Protocol selection.
    pub protocol: ProtocolKind,
    /// CLRP phase simplifications.
    pub clrp: ClrpVariant,
    /// Stagger initial-switch selection by coordinate sum ("it is
    /// convenient that neighboring nodes try to use different initial
    /// switches", §3.1). Disabled, every node starts at switch 1 — the
    /// E12 ablation.
    pub stagger_initial_switch: bool,
    /// How many times CLRP re-attempts establishment after a dynamic fault
    /// breaks a circuit, before the entry degrades to wormhole delivery.
    /// Each attempt is a full (all switches, then Force) search, so the
    /// total establishment work per circuit stays finite — the Theorem 3/4
    /// argument is unchanged. `0` disables retries entirely.
    pub fault_retries: u8,
    /// Base backoff (cycles) before a post-fault re-establishment; attempt
    /// `n` (1-based) waits `fault_backoff << (n - 1)` cycles, so repeated
    /// breakage of the same circuit backs off exponentially.
    pub fault_backoff: u32,
    /// Seed for the (rare) randomized decisions: Random replacement.
    pub seed: u64,
}

impl Default for WaveConfig {
    fn default() -> Self {
        Self {
            wormhole: WormholeConfig::default(),
            k: 2,
            clock_multiplier: 4,
            channel_split: 2,
            window: 64,
            ctrl_hop_delay: 1,
            pcs_delay: 1,
            misroutes: 2,
            initial_buffer_flits: 64,
            realloc_penalty: 32,
            cache_capacity: 16,
            replacement: ReplacementPolicy::Lru,
            protocol: ProtocolKind::Clrp,
            clrp: ClrpVariant::default(),
            stagger_initial_switch: true,
            fault_retries: 3,
            fault_backoff: 8,
            seed: 0x5_7A5E_5EED,
        }
    }
}

impl WaveConfig {
    /// Lane bandwidth as a `(numerator, denominator)` fraction of flits
    /// per base cycle.
    #[must_use]
    pub fn lane_rate(&self) -> (u64, u64) {
        (
            u64::from(self.clock_multiplier),
            u64::from(self.channel_split),
        )
    }

    /// The "simplest version of wave router … `k = 1` and `w = 0`" of §2,
    /// where all messages use PCS. (With `w = 0` there is no wormhole
    /// fallback; only CARP-style explicit traffic is meaningful.)
    #[must_use]
    pub fn simplest_wave_router(self) -> Self {
        Self { k: 1, ..self }
    }

    /// Sanity-checks parameter combinations.
    ///
    /// # Panics
    /// Panics on nonsensical combinations (zero multiplier/split/window,
    /// wave protocol with `k == 0`).
    pub fn validate(&self) {
        assert!(self.clock_multiplier >= 1, "clock multiplier must be >= 1");
        assert!(self.channel_split >= 1, "channel split must be >= 1");
        assert!(self.window >= 1, "window must hold at least one flit");
        assert!(self.ctrl_hop_delay >= 1, "control hops take time");
        if self.protocol != ProtocolKind::WormholeOnly {
            assert!(self.k >= 1, "wave protocols need at least one wave switch");
            assert!(self.cache_capacity >= 1, "circuit cache cannot be empty");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        WaveConfig::default().validate();
    }

    #[test]
    fn lane_rate_fraction() {
        let cfg = WaveConfig {
            clock_multiplier: 4,
            channel_split: 2,
            ..WaveConfig::default()
        };
        assert_eq!(cfg.lane_rate(), (4, 2));
    }

    #[test]
    #[should_panic(expected = "at least one wave switch")]
    fn zero_switches_with_clrp_rejected() {
        let cfg = WaveConfig {
            k: 0,
            ..WaveConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn wormhole_only_allows_zero_k() {
        let cfg = WaveConfig {
            k: 0,
            protocol: ProtocolKind::WormholeOnly,
            ..WaveConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn simplest_wave_router_sets_k1() {
        let cfg = WaveConfig::default().simplest_wave_router();
        assert_eq!(cfg.k, 1);
    }
}
