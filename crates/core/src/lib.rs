//! # wavesim-core — wave switching and its routing protocols
//!
//! The paper's contribution, implemented in full:
//!
//! * the **hybrid wave router** of Fig. 2 — a wormhole switch `S0`
//!   (provided by `wavesim-network`) plus `k` wave-pipelined circuit
//!   switches `S1..Sk` whose per-link *lanes* carry pre-established
//!   physical circuits at `clock_multiplier / channel_split` flits per
//!   base cycle ([`lanes`]);
//! * the **PCS routing control unit** of Fig. 3 — channel status, direct
//!   and reverse channel mappings, history store, and ack-returned
//!   registers ([`pcs`]);
//! * the **routing probe** of Fig. 4 and the misrouting-backtracking
//!   search protocol **MB-m** it executes ([`probe`]);
//! * the **circuit cache** of Fig. 5 with pluggable replacement
//!   algorithms ([`cache`], [`replacement`]);
//! * end-to-end **windowed circuit transfers** with acknowledgment-driven
//!   In-use release ([`circuit`]);
//! * the two protocols of §3 — **CLRP** (cache-like, three phases with the
//!   Force bit) and **CARP** (compiler-aided, explicit establish/teardown)
//!   — orchestrated per node by [`network::WaveNetwork`].
//!
//! The §4 theorems (deadlock and livelock freedom) are exercised
//! empirically by `wavesim-verify` and the E1/E2 experiments.

#![warn(missing_docs)]

pub mod arena;
pub mod cache;
pub mod circuit;
pub mod circuitplane;
pub mod config;
pub mod controlplane;
pub mod dataplane;
pub mod events;
pub mod ids;
pub mod lanes;
pub mod network;
pub mod pcs;
pub mod probe;
pub mod render;
pub mod replacement;
pub mod snapshot;
pub mod stats;

pub use arena::{ArenaId, GenSlab, IdAlloc, SlotMap};
pub use cache::{CacheEntry, CircuitCache, EntryState};
pub use circuit::{CircuitState, CircuitStatus, TransferPlan};
pub use circuitplane::{CircuitPlane, TransferEvent};
pub use config::{ClrpVariant, ProtocolKind, ReplacementPolicy, WaveConfig};
pub use controlplane::{ControlPlane, CtrlEvent};
pub use dataplane::DataPlane;
pub use events::{EventBus, PlaneEvent};
pub use ids::{CircuitId, LaneId, ProbeId};
pub use lanes::{LaneState, LaneTable};
pub use network::{FaultEvent, HealthSnapshot, WaveNetwork};
pub use probe::{ProbeFlit, ProbeState};
pub use snapshot::{CircuitSnap, LaneUse, NetSnapshot, ProbeSnap};
pub use stats::WaveStats;
