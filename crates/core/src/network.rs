//! The wave-switched network: a thin composition root over the three
//! plane engines.
//!
//! This module used to contain the whole router; it is now the *wiring*
//! only. The actual machinery lives in:
//!
//! * [`crate::dataplane`] — the `S0` wormhole fabric;
//! * [`crate::controlplane`] — wave lanes, PCS units, MB-m probes, and
//!   the ack / teardown / release-request walks;
//! * [`crate::circuitplane`] — Circuit Caches, the CLRP / CARP protocol
//!   engines, and windowed circuit transfers.
//!
//! The planes never touch each other's state: everything crosses the
//! [`EventBus`] as a [`PlaneEvent`], routed here to a fixpoint within the
//! cycle it was emitted (see [`crate::events`] for why that loop
//! terminates). Time-delayed work sits on two per-plane
//! [`EventQueue`]s owned by this root, so each plane stays a pure
//! [`wavesim_sim::Model`] that can also run standalone under an
//! [`wavesim_sim::Engine`].
//!
//! ### CLRP (§3.1), as implemented
//!
//! 1. **Lookup** — a send consults the source's Circuit Cache. A `Ready`
//!    entry is a hit; an `Establishing` entry queues the message behind
//!    the probe.
//! 2. **Phase one** — on a miss, a probe with Force clear searches switch
//!    `1 + (Σ coords) mod k` first (the paper's staggering rule), then the
//!    next switch modulo `k`, recorded in `Initial Switch` to avoid
//!    repeating the search.
//! 3. **Phase two** — if every switch failed, the probe retries with the
//!    Force bit set: blocked at a node, it selects a victim circuit that
//!    holds a requested lane *and has its acknowledgment returned*; a
//!    circuit starting at that node is released locally, otherwise a
//!    release request travels to the circuit's source. The probe parks on
//!    the lane and resumes when the teardown frees it. If every requested
//!    lane belongs to circuits still being established, the probe
//!    backtracks even in force mode (the §4 no-wait rule that preserves
//!    deadlock freedom).
//! 4. **Phase three** — if force probes also fail on every switch, queued
//!    messages fall back to wormhole switching.
//!
//! ### CARP (§3.2), as implemented
//!
//! Explicit [`WaveNetwork::carp_establish`] / [`WaveNetwork::carp_teardown`]
//! calls drive circuits; probes never set Force. Failed establishments
//! leave a `Failed` entry so the affected message set uses wormhole
//! switching, exactly as §3.2 prescribes.
//!
//! ### Policy decisions the paper leaves open (documented choices)
//!
//! * Queued messages behind a circuit that gets released are re-injected
//!   into the wormhole fabric (the paper only specifies the in-transit
//!   message).
//! * The acknowledgment travels hop by hop on the reverse control
//!   channels, setting each router's Ack-Returned bit as it passes
//!   (observable via [`WaveNetwork::pcs_ack_returned`]). Force-mode victim
//!   selection still requires the victim to be globally `Ready` — slightly
//!   more conservative than the per-node register check, which avoids a
//!   wait-without-wakeup race in the simulator (a release request that
//!   overtakes the victim's own ack would be discarded at the source,
//!   stranding the parked probe).
//! * Remote victim selection picks the first eligible lane in dimension
//!   order (the paper does not specify a remote policy; the Replace field
//!   only exists at the source).

use wavesim_network::{Delivery, Message, WormholeFabric};
use wavesim_sim::{Cycle, CycleKernelStats, EventQueue, Model};
use wavesim_topology::{NodeId, Topology};
use wavesim_trace::{PlaneId as TracePlane, TraceEvent, TraceHub, TraceSink};

use crate::arena::{GenSlab, SlotMap};
use crate::cache::{CircuitCache, EntryState};
use crate::circuit::{CircuitState, CircuitStatus};
use crate::circuitplane::{CircuitPlane, TransferEvent};
use crate::config::WaveConfig;
use crate::controlplane::{ControlPlane, CtrlEvent};
use crate::dataplane::DataPlane;
use crate::events::{EventBus, PlaneEvent};
use crate::ids::{CircuitId, LaneId, ProbeId};
use crate::lanes::LaneTable;
use crate::probe::ProbeState;
use crate::stats::WaveStats;

/// A timed fault action applied to one wave lane (the composition root's
/// view of a fault schedule; `wavesim-workloads` builds schedules and
/// expands whole-link events into per-lane ones before scheduling).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Mark the lane faulty, tearing down its circuit if reserved.
    Fail(LaneId),
    /// Return a faulty lane to service.
    Repair(LaneId),
}

impl FaultEvent {
    /// The lane the action targets.
    #[must_use]
    pub fn lane(self) -> LaneId {
        match self {
            FaultEvent::Fail(l) | FaultEvent::Repair(l) => l,
        }
    }
}

/// A cheap cross-plane health snapshot ([`WaveNetwork::health`]): the
/// instantaneous quantities live observers poll without perturbing the
/// run.
#[derive(Debug, Clone, Default)]
pub struct HealthSnapshot {
    /// Flits currently in the wormhole fabric.
    pub in_flight_flits: u64,
    /// Messages accepted but not yet delivered.
    pub outstanding_msgs: u64,
    /// Routers currently doing work, across planes.
    pub active_routers: u64,
    /// Pending control-plane events (probes, acks, teardowns, transfers).
    pub control_backlog: u64,
    /// Cycles since any flit last moved in the fabric.
    pub progress_age: u64,
    /// Per-shard wall-clock nanoseconds spent stepping the fabric.
    pub shard_wall_ns: Vec<u64>,
}

/// The complete wave-switched network (Fig. 2 routers at every node):
/// three plane engines composed over an event bus.
pub struct WaveNetwork {
    topo: Topology,
    cfg: WaveConfig,
    data: DataPlane,
    ctrl: ControlPlane,
    circ: CircuitPlane,
    ctrl_queue: EventQueue<CtrlEvent>,
    xfer_queue: EventQueue<TransferEvent>,
    fault_queue: EventQueue<FaultEvent>,
    bus: EventBus,
    deliveries: Vec<Delivery>,
    msgs_sent: u64,
    outstanding_msgs: u64,
    kernel: CycleKernelStats,
    trace: TraceHub,
}

/// The trace projection of an inter-plane event, if it has one.
/// `ReleaseCircuit` is internal bookkeeping (the observable outcome is the
/// later `CircuitReleased`) and is not traced. `WormholeDelivered` is
/// traced at its source instead: the dataplane stages the delivery event
/// into the owning shard's buffer, absorbed in shard order by
/// [`WaveNetwork::route`].
fn trace_event_of(ev: &PlaneEvent) -> Option<TraceEvent> {
    Some(match ev {
        PlaneEvent::WormholeDelivered(_) => return None,
        PlaneEvent::CircuitDelivered(d) => TraceEvent::CircuitDeliver {
            msg: d.msg.id.0,
            src: d.msg.src.0,
            dest: d.msg.dest.0,
            latency: d.latency(),
        },
        PlaneEvent::InjectWormhole(m) => TraceEvent::WormholeInject {
            msg: m.id.0,
            src: m.src.0,
            dest: m.dest.0,
            len_flits: m.len_flits,
        },
        PlaneEvent::LaunchProbe {
            circuit,
            src,
            dest,
            switch,
            force,
        } => TraceEvent::ProbeLaunch {
            circuit: circuit.0,
            src: src.0,
            dest: dest.0,
            switch: *switch,
            force: *force,
        },
        PlaneEvent::ProbeExhausted {
            circuit,
            src,
            switch,
            force,
            ..
        } => TraceEvent::ProbeExhausted {
            circuit: circuit.0,
            src: src.0,
            switch: *switch,
            force: *force,
        },
        PlaneEvent::CircuitEstablished {
            circuit,
            src,
            dest,
            hops,
            ..
        } => TraceEvent::CircuitEstablished {
            circuit: circuit.0,
            src: src.0,
            dest: dest.0,
            hops: *hops,
        },
        PlaneEvent::VictimRelease { circuit, src } => TraceEvent::ForcedRelease {
            circuit: circuit.0,
            src: src.0,
        },
        PlaneEvent::AbandonCircuit { circuit } => {
            TraceEvent::CircuitAbandoned { circuit: circuit.0 }
        }
        PlaneEvent::CircuitReleased { circuit } => {
            TraceEvent::CircuitReleased { circuit: circuit.0 }
        }
        PlaneEvent::CircuitBroken { circuit, src, dest } => TraceEvent::CircuitBroken {
            circuit: circuit.0,
            src: src.0,
            dest: dest.0,
        },
        PlaneEvent::ReleaseCircuit { .. } => return None,
    })
}

impl WaveNetwork {
    /// Builds the network for `topo` under `cfg`.
    #[must_use]
    pub fn new(topo: Topology, cfg: WaveConfig) -> Self {
        cfg.validate();
        Self {
            data: DataPlane::new(topo.clone(), cfg.wormhole),
            ctrl: ControlPlane::new(topo.clone(), cfg),
            circ: CircuitPlane::new(topo.clone(), cfg),
            ctrl_queue: EventQueue::new(),
            xfer_queue: EventQueue::new(),
            fault_queue: EventQueue::new(),
            bus: EventBus::new(),
            deliveries: Vec::new(),
            msgs_sent: 0,
            outstanding_msgs: 0,
            kernel: CycleKernelStats::default(),
            trace: TraceHub::new(),
            topo,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Tracing
    // ------------------------------------------------------------------

    /// Installs a trace sink and arms every emit point: inter-plane events
    /// and the planes' intra-plane staging buffers all flow into `sink`
    /// from now on, stamped with a single global sequence order.
    pub fn install_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace.install(sink);
        self.data.arm_trace();
        self.ctrl.trace.arm();
        self.circ.trace.arm();
    }

    /// Disarms every emit point and returns the installed sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.data.disarm_trace();
        self.ctrl.trace.disarm();
        self.circ.trace.disarm();
        self.trace.take()
    }

    /// True while a trace sink is installed.
    #[must_use]
    pub fn tracing(&self) -> bool {
        self.trace.armed()
    }

    /// Read access to the installed trace sink (peek at a live recorder).
    /// Flushes the hub's pending batch first so the view is current.
    pub fn trace_sink(&mut self) -> Option<&dyn TraceSink> {
        self.trace.sink()
    }

    /// Emits an out-of-band annotation into the trace stream (no-op when
    /// untraced). Watchdogs and other observers use this to stamp
    /// structured events — e.g. [`TraceEvent::WatchdogTrip`] — into the
    /// same globally-sequenced record stream the planes write, so a
    /// post-mortem shows exactly where the observer fired relative to
    /// protocol activity.
    pub fn trace_note(&mut self, now: Cycle, ev: TraceEvent) {
        if self.trace.armed() {
            self.trace.emit(now, ev);
        }
    }

    /// A cheap cross-plane health snapshot for live observers (watchdogs,
    /// the metrics endpoint). Every field is O(1) to read except the
    /// per-shard walls, which borrow the fabric's existing accounting.
    #[must_use]
    pub fn health(&self, now: Cycle) -> HealthSnapshot {
        let fabric = self.data.fabric();
        HealthSnapshot {
            in_flight_flits: fabric.in_flight_flits(),
            outstanding_msgs: self.outstanding_msgs,
            active_routers: self.active_routers(),
            control_backlog: self.control_backlog() as u64,
            progress_age: fabric.progress_age(now),
            shard_wall_ns: fabric.shard_wall_ns().to_vec(),
        }
    }

    // ------------------------------------------------------------------
    // Observation (delegating to the owning plane)
    // ------------------------------------------------------------------

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &WaveConfig {
        &self.cfg
    }

    /// Protocol statistics: the field-wise sum of the three planes'
    /// contributions plus this root's submission counter.
    #[must_use]
    pub fn stats(&self) -> WaveStats {
        let mut s = WaveStats {
            msgs_sent: self.msgs_sent,
            ..WaveStats::default()
        };
        s.absorb(self.data.stats());
        s.absorb(self.ctrl.stats());
        s.absorb(self.circ.stats());
        s
    }

    /// The underlying wormhole fabric (read access for instrumentation).
    #[must_use]
    pub fn fabric(&self) -> &WormholeFabric {
        self.data.fabric()
    }

    /// Partitions the wormhole fabric into `n` spatial shards processed by
    /// one thread each (clamped to `1..=num_nodes`). Results — the run
    /// schedule, every statistic, and the trace byte stream — are
    /// identical at any shard count; see the fabric's module docs for the
    /// conservative-sync argument. Call between runs, not mid-cycle.
    pub fn set_shards(&mut self, n: usize) {
        self.data.set_shards(n);
    }

    /// The configured shard count.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.data.fabric().shards()
    }

    /// Routers currently doing work, across planes: the wormhole fabric's
    /// active set plus source nodes with a circuit in use or queued
    /// (time-series sampler hook; a node busy in both planes counts in
    /// each). O(1): both planes keep their active sets incrementally.
    #[must_use]
    pub fn active_routers(&self) -> u64 {
        self.data.fabric().active_routers() + self.circ.active_sources()
    }

    /// Deliveries completed but not yet drained (read-only peek — the
    /// time-series sampler observes them between `tick` and the driver's
    /// drain without perturbing the run).
    #[must_use]
    pub fn pending_deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Cycle-kernel work counters: the fabric's scanning effort plus the
    /// inter-plane events this root routed.
    #[must_use]
    pub fn kernel_stats(&self) -> CycleKernelStats {
        let mut k = self.data.fabric().kernel_stats();
        k.events_routed += self.kernel.events_routed;
        k
    }

    /// The wave-lane table (read access for instrumentation).
    #[must_use]
    pub fn lanes(&self) -> &LaneTable {
        self.ctrl.lanes()
    }

    /// Live circuits (read access for instrumentation).
    #[must_use]
    pub fn circuits(&self) -> &SlotMap<CircuitId, CircuitState> {
        self.ctrl.circuits()
    }

    /// Live probes (read access for instrumentation).
    #[must_use]
    pub fn probes(&self) -> &GenSlab<ProbeId, ProbeState> {
        self.ctrl.probes()
    }

    /// The Circuit Cache of `node`.
    #[must_use]
    pub fn cache(&self, node: NodeId) -> &CircuitCache {
        self.circ.cache(node)
    }

    /// The Ack Returned bit of `circuit` at `node`'s PCS unit, if the
    /// circuit has a mapping there (Fig. 3 register observation).
    #[must_use]
    pub fn pcs_ack_returned(&self, node: NodeId, circuit: CircuitId) -> Option<bool> {
        self.ctrl.pcs_ack_returned(node, circuit)
    }

    /// Largest number of control steps any single probe has taken — the
    /// quantity Theorems 3/4 bound (livelock freedom).
    #[must_use]
    pub fn max_probe_steps(&self) -> u64 {
        self.ctrl.max_probe_steps()
    }

    /// Messages accepted but not yet delivered.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.outstanding_msgs
    }

    /// Pending control-plane events (probes, acks, teardowns, transfers).
    #[must_use]
    pub fn control_backlog(&self) -> usize {
        self.ctrl_queue.len() + self.xfer_queue.len()
    }

    /// Checks that `lane` exists under this network's topology and `k`.
    fn validate_lane(&self, lane: LaneId) -> Result<(), String> {
        if !self.topo.has_link(lane.link) {
            return Err(format!(
                "lane {lane}: link {} is not in the topology",
                lane.link.0
            ));
        }
        if lane.switch < 1 || lane.switch > self.cfg.k {
            return Err(format!(
                "lane {lane}: switch {} out of range 1..={}",
                lane.switch, self.cfg.k
            ));
        }
        Ok(())
    }

    /// Marks the `switch`-lane of `link` faulty (static fault injection,
    /// E8). Only the wave plane faults; see DESIGN.md. Fails when the lane
    /// does not exist under this topology/`k` (a fault plan built for a
    /// different network) or is currently reserved (static plans must be
    /// applied before traffic; use [`WaveNetwork::schedule_fault`] for
    /// mid-run teardown-then-fault semantics).
    pub fn inject_lane_fault(&mut self, lane: LaneId) -> Result<(), String> {
        self.validate_lane(lane)?;
        self.ctrl.fault_lane(lane)
    }

    /// Schedules a dynamic fault action for cycle `at`: applied at the
    /// start of [`WaveNetwork::tick`]`(at)`, before any control or
    /// transfer event of that cycle. Validates the lane against the
    /// topology and `k` up front. Pending fault events do not keep the
    /// network [`WaveNetwork::busy`] — a drained network with only future
    /// repairs outstanding is done — but [`WaveNetwork::next_activity`]
    /// honours them so the idle fast-forward cannot skip a fault.
    pub fn schedule_fault(&mut self, at: Cycle, ev: FaultEvent) -> Result<(), String> {
        self.validate_lane(ev.lane())?;
        self.fault_queue.schedule(at, ev);
        Ok(())
    }

    /// Drains deliveries completed since the last call (both transports).
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Drains deliveries into a caller-provided buffer (cleared first) and
    /// keeps the swapped-out capacity for future deliveries — the
    /// allocation-free variant of [`WaveNetwork::drain_deliveries`] for
    /// per-cycle polling loops.
    pub fn drain_deliveries_into(&mut self, out: &mut Vec<Delivery>) {
        out.clear();
        std::mem::swap(&mut self.deliveries, out);
    }

    /// Arms the event-bus tap: every inter-plane [`PlaneEvent`] is
    /// recorded from now on for [`WaveNetwork::take_events`]. External
    /// detectors (`wavesim-verify`) use this to observe the network
    /// without reaching into plane internals.
    pub fn enable_event_tap(&mut self) {
        self.bus.enable_tap();
    }

    /// Drains the tapped events (empty when the tap is not armed).
    pub fn take_events(&mut self) -> Vec<PlaneEvent> {
        self.bus.take_tap()
    }

    /// True while any message, probe, or control flit is outstanding.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.data.busy()
            || self.outstanding_msgs > 0
            || self.ctrl.busy()
            || !self.ctrl_queue.is_empty()
            || !self.xfer_queue.is_empty()
    }

    /// The earliest cycle > `now` at which [`WaveNetwork::tick`] has any
    /// work: the very next cycle while wormhole flits are in flight,
    /// otherwise the next scheduled control/transfer event. `None` means
    /// no tick will ever do anything again (quiescent *or* stuck — a
    /// parked probe with no event in flight never wakes, and callers'
    /// stall monitors must still get a chance to observe that).
    #[must_use]
    pub fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.data.busy() {
            return Some(now + 1);
        }
        let next = [
            self.ctrl_queue.next_time(),
            self.xfer_queue.next_time(),
            self.fault_queue.next_time(),
        ]
        .into_iter()
        .flatten()
        .min();
        next.map(|t| t.max(now + 1))
    }

    // ------------------------------------------------------------------
    // The cycle loop
    // ------------------------------------------------------------------

    /// Advances the whole network by one cycle: the dataplane ticks, then
    /// due control and transfer events are dispatched one at a time, with
    /// the event bus routed to a fixpoint after every step so cross-plane
    /// effects land in the same cycle (matching the pre-split router).
    ///
    /// An idle dataplane is skipped outright: the fabric's VA round-robin
    /// pointer is derived from `now` (not from tick count) and its SA
    /// pointers only move on grants, so skipping dead fabric cycles is
    /// state-identical to ticking through them.
    pub fn tick(&mut self, now: Cycle) {
        let traced = self.trace.armed();
        // Fault events apply first: a lane failing at cycle T is faulty
        // before any probe, ack, or transfer of cycle T runs, regardless
        // of how the caller drives the loop — the deterministic order the
        // jobs-invariance golden relies on.
        while let Some(ev) = self.fault_queue.pop_due(now) {
            match ev.event {
                FaultEvent::Fail(lane) => self.ctrl.on_lane_fault(now, &mut self.ctrl_queue, lane),
                FaultEvent::Repair(lane) => self.ctrl.on_lane_repair(now, lane),
            }
            self.ctrl.drain_outbox_into(&mut self.bus);
            self.route(now);
        }
        if self.data.busy() {
            if traced {
                self.trace.emit(
                    now,
                    TraceEvent::PlaneTick {
                        plane: TracePlane::Data,
                    },
                );
            }
            self.data.step(now);
            self.data.drain_outbox_into(&mut self.bus);
        }
        self.route(now);
        let mut ctrl_ran = false;
        let mut xfer_ran = false;
        loop {
            if let Some(ev) = self.ctrl_queue.pop_due(now) {
                ctrl_ran = true;
                self.ctrl.handle(now, ev.event, &mut self.ctrl_queue);
                self.ctrl.drain_outbox_into(&mut self.bus);
                self.route(now);
            } else if let Some(ev) = self.xfer_queue.pop_due(now) {
                xfer_ran = true;
                self.circ.handle(now, ev.event, &mut self.xfer_queue);
                self.circ.drain_outbox_into(&mut self.bus);
                self.route(now);
            } else {
                break;
            }
        }
        if traced {
            if ctrl_ran {
                self.trace.emit(
                    now,
                    TraceEvent::PlaneTick {
                        plane: TracePlane::Control,
                    },
                );
            }
            if xfer_ran {
                self.trace.emit(
                    now,
                    TraceEvent::PlaneTick {
                        plane: TracePlane::Circuit,
                    },
                );
            }
        }
    }

    /// Routes bus events to their consuming plane until the bus drains.
    /// Terminates because every handler either finishes in bounded
    /// immediate work or schedules delayed work at `now + 1` or later.
    fn route(&mut self, now: Cycle) {
        let traced = self.trace.armed();
        if traced {
            // Intra-plane emits staged since the last route (outbox drains
            // happen right before route calls, so staging order ≈ bus order).
            // Dataplane shard buffers first: their events (deliveries of
            // the tick that just stepped) precede anything the control or
            // circuit planes staged in response.
            self.data.absorb_trace_into(&mut self.trace);
            self.trace.absorb(&mut self.ctrl.trace);
            self.trace.absorb(&mut self.circ.trace);
        }
        while let Some(ev) = self.bus.pop() {
            self.kernel.events_routed += 1;
            if traced {
                if let Some(t) = trace_event_of(&ev) {
                    self.trace.emit(now, t);
                }
            }
            match ev {
                PlaneEvent::WormholeDelivered(d) | PlaneEvent::CircuitDelivered(d) => {
                    self.outstanding_msgs -= 1;
                    self.deliveries.push(d);
                }
                PlaneEvent::InjectWormhole(msg) => self.data.inject(msg),
                PlaneEvent::LaunchProbe {
                    circuit,
                    src,
                    dest,
                    switch,
                    force,
                } => self.ctrl.on_launch_probe(
                    now,
                    &mut self.ctrl_queue,
                    circuit,
                    src,
                    dest,
                    switch,
                    force,
                ),
                PlaneEvent::ProbeExhausted {
                    circuit,
                    src,
                    dest,
                    switch,
                    force,
                } => self
                    .circ
                    .on_probe_exhausted(circuit, src, dest, switch, force),
                PlaneEvent::CircuitEstablished {
                    circuit,
                    src,
                    dest,
                    hops,
                    first_lane,
                } => self.circ.on_established(
                    now,
                    &mut self.xfer_queue,
                    circuit,
                    src,
                    dest,
                    hops,
                    first_lane,
                ),
                PlaneEvent::VictimRelease { circuit, src } => {
                    self.circ.on_victim_release(circuit, src);
                }
                PlaneEvent::ReleaseCircuit { circuit, src } => {
                    self.ctrl
                        .on_release_circuit(now, &mut self.ctrl_queue, circuit, src);
                }
                PlaneEvent::AbandonCircuit { circuit } => {
                    self.ctrl.on_abandon_circuit(circuit);
                    // Nothing references the id any more: recycle its slot.
                    self.circ.on_circuit_freed(circuit);
                }
                PlaneEvent::CircuitReleased { circuit } => {
                    // Teardown (or probe unwind) finished; the id retires.
                    self.circ.on_circuit_freed(circuit);
                }
                PlaneEvent::CircuitBroken { circuit, src, dest } => {
                    self.circ
                        .on_circuit_broken(now, &mut self.xfer_queue, circuit, src, dest);
                }
            }
            self.ctrl.drain_outbox_into(&mut self.bus);
            self.circ.drain_outbox_into(&mut self.bus);
            if traced {
                self.trace.absorb(&mut self.ctrl.trace);
                self.trace.absorb(&mut self.circ.trace);
            }
        }
    }

    // ------------------------------------------------------------------
    // Message submission
    // ------------------------------------------------------------------

    /// Submits a message; the configured protocol decides its transport.
    pub fn send(&mut self, now: Cycle, msg: Message) {
        self.msgs_sent += 1;
        self.outstanding_msgs += 1;
        self.circ.send(now, msg, &mut self.xfer_queue);
        self.circ.drain_outbox_into(&mut self.bus);
        self.route(now);
    }

    /// CARP: explicitly requests a circuit to `dest` from `src` ("when a
    /// physical circuit is requested, a switch S_i is selected and a probe
    /// is sent to establish it").
    ///
    /// # Panics
    /// Panics unless the configured protocol is
    /// [`crate::config::ProtocolKind::Carp`].
    pub fn carp_establish(&mut self, now: Cycle, src: NodeId, dest: NodeId) {
        self.circ.carp_establish(now, src, dest);
        self.circ.drain_outbox_into(&mut self.bus);
        self.route(now);
    }

    /// CARP: explicitly tears down the circuit from `src` to `dest` once
    /// queued traffic drains ("when the circuit is no longer required, it
    /// is explicitly torn down").
    ///
    /// # Panics
    /// Panics unless the configured protocol is
    /// [`crate::config::ProtocolKind::Carp`].
    pub fn carp_teardown(&mut self, now: Cycle, src: NodeId, dest: NodeId) {
        self.circ.carp_teardown(src, dest);
        self.circ.drain_outbox_into(&mut self.bus);
        self.route(now);
    }

    // ------------------------------------------------------------------
    // Invariant audit (used by wavesim-verify and tests)
    // ------------------------------------------------------------------

    /// Cross-checks lane reservations against circuit paths and probe
    /// paths; returns human-readable violations (empty = consistent).
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let lanes = self.ctrl.lanes();
        // Every Ready circuit's path must be reserved by it.
        for (cid, c) in self.ctrl.circuits().iter() {
            if c.status == CircuitStatus::Ready {
                for lane in &c.path {
                    if lanes.holder(*lane) != Some(cid) {
                        problems.push(format!("{cid}: path lane {lane} not held"));
                    }
                }
            }
        }
        // Every live probe's reserved prefix must be held by its circuit.
        for (pid, p) in self.ctrl.probes().iter() {
            for lane in &p.path {
                if lanes.holder(*lane) != Some(p.circuit) {
                    problems.push(format!("{pid}: reserved lane {lane} not held"));
                }
            }
        }
        // Cache entries and circuit registry must agree.
        for (n, cache) in self.circ.caches().iter().enumerate() {
            for e in cache.iter() {
                match e.state {
                    EntryState::Establishing | EntryState::Ready
                        if !self.ctrl.circuits().contains_key(&e.circuit) =>
                    {
                        problems.push(format!(
                            "node {n}: cache entry for {} has no circuit {}",
                            e.dest, e.circuit
                        ));
                    }
                    _ => {}
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProtocolKind;

    /// Composition smoke test: a wormhole-only message round-trips through
    /// the dataplane and the bus decrements the outstanding counter. The
    /// full protocol suites live in `crates/core/tests/network.rs`.
    #[test]
    fn composition_root_routes_deliveries() {
        let cfg = WaveConfig {
            protocol: ProtocolKind::WormholeOnly,
            ..WaveConfig::default()
        };
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), cfg);
        net.enable_event_tap();
        net.send(0, Message::new(1, NodeId(0), NodeId(15), 16, 0));
        assert_eq!(net.outstanding(), 1);
        let mut now = 0;
        while net.busy() && now < 10_000 {
            net.tick(now);
            now += 1;
        }
        assert_eq!(net.outstanding(), 0);
        assert_eq!(net.drain_deliveries().len(), 1);
        let events = net.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, PlaneEvent::InjectWormhole(_))));
        assert!(events
            .iter()
            .any(|e| matches!(e, PlaneEvent::WormholeDelivered(_))));
    }

    /// Tracing wiring test: an installed sink observes the whole CLRP
    /// lifecycle — cache miss, probe launch and hops, establishment,
    /// transfer start, delivery — in one global sequence order.
    #[test]
    fn trace_sink_observes_clrp_lifecycle() {
        let mut net = WaveNetwork::new(Topology::mesh(&[2, 2]), WaveConfig::default());
        assert!(!net.tracing());
        net.install_trace_sink(Box::new(wavesim_trace::VecSink::new()));
        assert!(net.tracing());
        net.send(0, Message::new(1, NodeId(0), NodeId(3), 16, 0));
        let mut now = 0;
        while net.busy() && now < 10_000 {
            net.tick(now);
            now += 1;
        }
        assert_eq!(net.drain_deliveries().len(), 1);
        let sink = net.take_trace_sink().expect("sink installed");
        assert!(!net.tracing());
        let recs = sink.snapshot();
        let kinds: Vec<&str> = recs.iter().map(|r| r.ev.kind()).collect();
        for expected in [
            "cache_miss",
            "probe_launch",
            "probe_hop",
            "probe_reached",
            "circuit_established",
            "transfer_start",
            "circuit_deliver",
        ] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
        assert!(
            recs.windows(2).all(|w| w[0].seq + 1 == w[1].seq),
            "global sequence numbers are gap-free"
        );
        assert!(
            recs.windows(2).all(|w| w[0].at <= w[1].at),
            "records are time-ordered"
        );
    }

    /// With no sink installed the staging buffers stay disarmed and
    /// nothing accumulates (the near-zero-cost default).
    #[test]
    fn untraced_network_stages_nothing() {
        let mut net = WaveNetwork::new(Topology::mesh(&[2, 2]), WaveConfig::default());
        net.send(0, Message::new(1, NodeId(0), NodeId(3), 16, 0));
        let mut now = 0;
        while net.busy() && now < 10_000 {
            net.tick(now);
            now += 1;
        }
        assert_eq!(net.ctrl.trace.staged_len(), 0);
        assert_eq!(net.circ.trace.staged_len(), 0);
        assert_eq!(net.data.trace_staged_len(), 0);
        assert!(net.take_trace_sink().is_none());
    }

    /// The circuit plane's incremental active-source set must agree with a
    /// brute-force cache sweep at every cycle of a mixed CLRP run.
    #[test]
    fn active_source_counter_matches_full_scan() {
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
        for id in 0..12u64 {
            let src = NodeId((id % 16) as u32);
            let dest = NodeId(((id * 5 + 3) % 16) as u32);
            if src != dest {
                net.send(0, Message::new(id, src, dest, 16, 0));
            }
        }
        let mut now = 0;
        while net.busy() && now < 50_000 {
            net.tick(now);
            now += 1;
            let brute = net
                .circ
                .caches()
                .iter()
                .filter(|c| c.iter().any(|e| e.in_use || !e.queue.is_empty()))
                .count() as u64;
            assert_eq!(
                net.circ.active_sources(),
                brute,
                "incremental active-source set diverged at cycle {now}"
            );
        }
        assert!(!net.busy());
        assert_eq!(net.circ.active_sources(), 0);
    }

    /// Full-stack shard determinism: the same CLRP workload produces a
    /// byte-identical trace and delivery schedule at every shard count.
    #[test]
    fn sharded_network_trace_is_byte_identical() {
        let run_at = |shards: usize| {
            let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), WaveConfig::default());
            net.set_shards(shards);
            assert_eq!(net.shards(), shards);
            net.install_trace_sink(Box::new(wavesim_trace::VecSink::new()));
            for id in 0..20u64 {
                let src = NodeId((id % 16) as u32);
                let dest = NodeId(((id * 7 + 1) % 16) as u32);
                if src != dest {
                    net.send(0, Message::new(id, src, dest, 24, 0));
                }
            }
            let mut now = 0;
            while net.busy() && now < 50_000 {
                net.tick(now);
                now += 1;
            }
            let sched: Vec<_> = net
                .drain_deliveries()
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at))
                .collect();
            let sink = net.take_trace_sink().expect("sink installed");
            (sched, format!("{:?}", sink.snapshot()))
        };
        let serial = run_at(1);
        assert_eq!(serial, run_at(2));
        assert_eq!(serial, run_at(4));
    }
}
