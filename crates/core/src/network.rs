//! The wave-switched network: `S0` wormhole fabric + wave lanes + control
//! plane + per-node protocol engines (CLRP / CARP).
//!
//! This module is the executable form of §3 of the paper. Control flits
//! (probes, acks, teardowns, release requests) travel on the dedicated
//! one-flit control channels at `ctrl_hop_delay` cycles per hop; data
//! messages travel either flit-by-flit through the wormhole fabric or as
//! windowed bulk transfers over established circuits.
//!
//! ### CLRP (§3.1), as implemented
//!
//! 1. **Lookup** — a send consults the source's Circuit Cache. A `Ready`
//!    entry is a hit; an `Establishing` entry queues the message behind
//!    the probe.
//! 2. **Phase one** — on a miss, a probe with Force clear searches switch
//!    `1 + (Σ coords) mod k` first (the paper's staggering rule), then the
//!    next switch modulo `k`, recorded in `Initial Switch` to avoid
//!    repeating the search.
//! 3. **Phase two** — if every switch failed, the probe retries with the
//!    Force bit set: blocked at a node, it selects a victim circuit that
//!    holds a requested lane *and has its acknowledgment returned*; a
//!    circuit starting at that node is released locally, otherwise a
//!    release request travels to the circuit's source. The probe parks on
//!    the lane and resumes when the teardown frees it. If every requested
//!    lane belongs to circuits still being established, the probe
//!    backtracks even in force mode (the §4 no-wait rule that preserves
//!    deadlock freedom).
//! 4. **Phase three** — if force probes also fail on every switch, queued
//!    messages fall back to wormhole switching.
//!
//! ### CARP (§3.2), as implemented
//!
//! Explicit [`WaveNetwork::carp_establish`] / [`WaveNetwork::carp_teardown`]
//! calls drive circuits; probes never set Force. Failed establishments
//! leave a `Failed` entry so the affected message set uses wormhole
//! switching, exactly as §3.2 prescribes.
//!
//! ### Policy decisions the paper leaves open (documented choices)
//!
//! * Queued messages behind a circuit that gets released are re-injected
//!   into the wormhole fabric (the paper only specifies the in-transit
//!   message).
//! * The acknowledgment travels hop by hop on the reverse control
//!   channels, setting each router's Ack-Returned bit as it passes
//!   (observable via [`WaveNetwork::pcs_ack_returned`]). Force-mode victim
//!   selection still requires the victim to be globally `Ready` — slightly
//!   more conservative than the per-node register check, which avoids a
//!   wait-without-wakeup race in the simulator (a release request that
//!   overtakes the victim's own ack would be discarded at the source,
//!   stranding the parked probe).
//! * Remote victim selection picks the first eligible lane in dimension
//!   order (the paper does not specify a remote policy; the Replace field
//!   only exists at the source).

use std::collections::HashMap;

use wavesim_network::message::DeliveryMode;
use wavesim_network::{Delivery, Message, WormholeFabric};
use wavesim_sim::{Cycle, EventQueue};
use wavesim_topology::{NodeId, PortDir, Topology};

use crate::cache::{CacheEntry, CircuitCache, EntryState};
use crate::circuit::{plan_transfer, CircuitState, CircuitStatus};
use crate::config::{ProtocolKind, WaveConfig};
use crate::ids::{CircuitId, LaneId, ProbeId};
use crate::lanes::{LaneState, LaneTable};
use crate::pcs::PcsUnit;
use crate::probe::ProbeState;
use crate::replacement;
use crate::stats::WaveStats;

/// Control-plane and transfer events.
#[derive(Debug, Clone)]
enum Ctrl {
    /// Probe arrives (or resumes) at its current node.
    ProbeAt(ProbeId),
    /// Parked probe woken by a lane release.
    RetryProbe(ProbeId),
    /// Path-setup acknowledgment reaches the source router of path lane
    /// `hop` on its way back (hop 0 is the circuit's source node, where
    /// the ack completes establishment).
    AckHopAt(CircuitId, u32),
    /// Teardown flit reaches `node`.
    TeardownAt(CircuitId, NodeId),
    /// Release-request flit reaches the circuit's source.
    ReleaseReqAt(CircuitId),
    /// Last flit of a circuit transfer reaches the destination.
    TransferDelivered(CircuitId, Message),
    /// Last-fragment acknowledgment reaches the source (In-use clears).
    TransferAcked(CircuitId),
}

/// The complete wave-switched network (Fig. 2 routers at every node).
pub struct WaveNetwork {
    topo: Topology,
    cfg: WaveConfig,
    fabric: WormholeFabric,
    lanes: LaneTable,
    pcs: Vec<PcsUnit>,
    caches: Vec<CircuitCache>,
    circuits: HashMap<CircuitId, CircuitState>,
    probes: HashMap<ProbeId, ProbeState>,
    ctrl: EventQueue<Ctrl>,
    deliveries: Vec<Delivery>,
    stats: WaveStats,
    next_circuit: u64,
    next_probe: u64,
    fifo_seq: u64,
    outstanding_msgs: u64,
    max_probe_steps: u64,
}

impl WaveNetwork {
    /// Builds the network for `topo` under `cfg`.
    #[must_use]
    pub fn new(topo: Topology, cfg: WaveConfig) -> Self {
        cfg.validate();
        let fabric = WormholeFabric::new(topo.clone(), cfg.wormhole);
        let n = topo.num_nodes() as usize;
        Self {
            lanes: LaneTable::new(&topo, cfg.k),
            pcs: vec![PcsUnit::new(); n],
            caches: (0..n)
                .map(|_| CircuitCache::new(cfg.cache_capacity.max(1)))
                .collect(),
            circuits: HashMap::new(),
            probes: HashMap::new(),
            ctrl: EventQueue::new(),
            deliveries: Vec::new(),
            stats: WaveStats::default(),
            next_circuit: 0,
            next_probe: 0,
            fifo_seq: 0,
            outstanding_msgs: 0,
            max_probe_steps: 0,
            fabric,
            topo,
            cfg,
        }
    }

    /// The topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &WaveConfig {
        &self.cfg
    }

    /// Protocol statistics.
    #[must_use]
    pub fn stats(&self) -> WaveStats {
        self.stats
    }

    /// The underlying wormhole fabric (read access for instrumentation).
    #[must_use]
    pub fn fabric(&self) -> &WormholeFabric {
        &self.fabric
    }

    /// The wave-lane table (read access for instrumentation).
    #[must_use]
    pub fn lanes(&self) -> &LaneTable {
        &self.lanes
    }

    /// Live circuits (read access for instrumentation).
    #[must_use]
    pub fn circuits(&self) -> &HashMap<CircuitId, CircuitState> {
        &self.circuits
    }

    /// Live probes (read access for instrumentation).
    #[must_use]
    pub fn probes(&self) -> &HashMap<ProbeId, ProbeState> {
        &self.probes
    }

    /// The Circuit Cache of `node`.
    #[must_use]
    pub fn cache(&self, node: NodeId) -> &CircuitCache {
        &self.caches[node.0 as usize]
    }

    /// The Ack Returned bit of `circuit` at `node`'s PCS unit, if the
    /// circuit has a mapping there (Fig. 3 register observation).
    #[must_use]
    pub fn pcs_ack_returned(&self, node: NodeId, circuit: CircuitId) -> Option<bool> {
        self.pcs[node.0 as usize]
            .hop(circuit)
            .map(|h| h.ack_returned)
    }

    /// Largest number of control steps any single probe has taken — the
    /// quantity Theorems 3/4 bound (livelock freedom).
    #[must_use]
    pub fn max_probe_steps(&self) -> u64 {
        self.max_probe_steps
    }

    /// Messages accepted but not yet delivered.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        self.outstanding_msgs
    }

    /// Pending control-plane events (probes, acks, teardowns, transfers).
    #[must_use]
    pub fn control_backlog(&self) -> usize {
        self.ctrl.len()
    }

    /// Marks the `switch`-lane of `link` faulty (static fault injection,
    /// E8). Only the wave plane faults; see DESIGN.md.
    pub fn inject_lane_fault(&mut self, lane: LaneId) {
        self.lanes.set_faulty(lane);
    }

    /// Drains deliveries completed since the last call (both transports).
    pub fn drain_deliveries(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// True while any message, probe, or control flit is outstanding.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.fabric.busy()
            || self.outstanding_msgs > 0
            || !self.probes.is_empty()
            || !self.ctrl.is_empty()
    }

    /// Advances the whole network by one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.fabric.tick(now);
        for d in self.fabric.drain_deliveries() {
            debug_assert_eq!(d.mode, DeliveryMode::Wormhole);
            self.outstanding_msgs -= 1;
            self.stats.msgs_wormhole += 1;
            self.deliveries.push(d);
        }
        while let Some(ev) = self.ctrl.pop_due(now) {
            self.handle(now, ev.event);
        }
    }

    // ------------------------------------------------------------------
    // Message submission
    // ------------------------------------------------------------------

    /// Submits a message; the configured protocol decides its transport.
    pub fn send(&mut self, now: Cycle, msg: Message) {
        self.stats.msgs_sent += 1;
        self.outstanding_msgs += 1;
        match self.cfg.protocol {
            ProtocolKind::WormholeOnly => self.fabric.inject(msg),
            ProtocolKind::Clrp => self.clrp_send(now, msg),
            ProtocolKind::Carp => self.carp_send(now, msg),
        }
    }

    fn send_wormhole_fallback(&mut self, msg: Message) {
        self.stats.wormhole_fallbacks += 1;
        self.fabric.inject(msg);
    }

    fn clrp_send(&mut self, now: Cycle, msg: Message) {
        let src = msg.src.0 as usize;
        if let Some(entry) = self.caches[src].get_mut(msg.dest) {
            match entry.state {
                EntryState::Ready => {
                    self.stats.cache_hits += 1;
                    replacement::on_use(entry, self.cfg.replacement, now);
                    entry.queue.push_back(msg);
                    self.pump_circuit(now, msg.src, msg.dest);
                }
                EntryState::Establishing => {
                    entry.queue.push_back(msg);
                }
                EntryState::Releasing | EntryState::Failed => {
                    self.send_wormhole_fallback(msg);
                }
            }
            return;
        }
        // Miss: establish a circuit, evicting if the register file is full.
        self.stats.cache_misses += 1;
        if self.caches[src].is_full() {
            match self.caches[src].pick_victim(self.cfg.replacement, self.cfg.seed) {
                Some(victim) => {
                    self.stats.cache_evictions += 1;
                    self.release_entry_now(now, msg.src, victim);
                }
                None => {
                    // Every cached circuit is busy: this message cannot
                    // get a circuit; use wormhole switching.
                    self.send_wormhole_fallback(msg);
                    return;
                }
            }
        }
        let force = self.cfg.clrp.skip_phase1;
        let dest = msg.dest;
        self.start_establish(now, msg.src, dest, force)
            .queue
            .push_back(msg);
    }

    fn carp_send(&mut self, now: Cycle, msg: Message) {
        let src = msg.src.0 as usize;
        if let Some(entry) = self.caches[src].get_mut(msg.dest) {
            match entry.state {
                EntryState::Ready => {
                    self.stats.cache_hits += 1;
                    replacement::on_use(entry, self.cfg.replacement, now);
                    entry.queue.push_back(msg);
                    self.pump_circuit(now, msg.src, msg.dest);
                    return;
                }
                EntryState::Establishing => {
                    entry.queue.push_back(msg);
                    return;
                }
                EntryState::Releasing | EntryState::Failed => {}
            }
        }
        // No usable circuit: CARP sends such messages by wormhole (§3.2).
        self.fabric.inject(msg);
    }

    /// CARP: explicitly requests a circuit to `dest` from `src` ("when a
    /// physical circuit is requested, a switch S_i is selected and a probe
    /// is sent to establish it").
    pub fn carp_establish(&mut self, now: Cycle, src: NodeId, dest: NodeId) {
        assert_eq!(
            self.cfg.protocol,
            ProtocolKind::Carp,
            "carp_establish requires the CARP protocol"
        );
        assert_ne!(src, dest, "circuits to self are meaningless");
        let s = src.0 as usize;
        if self.caches[s].get(dest).is_some() {
            return; // already cached (any state): idempotent
        }
        if self.caches[s].is_full() {
            match self.caches[s].pick_victim(self.cfg.replacement, self.cfg.seed) {
                Some(victim) => {
                    self.stats.cache_evictions += 1;
                    self.release_entry_now(now, src, victim);
                }
                None => return, // nothing evictable: establishment impossible
            }
        }
        self.stats.cache_misses += 1;
        let _ = self.start_establish(now, src, dest, false);
    }

    /// CARP: explicitly tears down the circuit from `src` to `dest` once
    /// queued traffic drains ("when the circuit is no longer required, it
    /// is explicitly torn down").
    pub fn carp_teardown(&mut self, now: Cycle, src: NodeId, dest: NodeId) {
        assert_eq!(
            self.cfg.protocol,
            ProtocolKind::Carp,
            "carp_teardown requires the CARP protocol"
        );
        let s = src.0 as usize;
        let Some(entry) = self.caches[s].get_mut(dest) else {
            return; // nothing to tear down: idempotent
        };
        match entry.state {
            EntryState::Failed => {
                self.caches[s].remove(dest);
            }
            EntryState::Releasing => {}
            EntryState::Ready | EntryState::Establishing => {
                if entry.evictable() {
                    self.release_entry_now(now, src, dest);
                } else {
                    entry.release_pending = true;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Establishment
    // ------------------------------------------------------------------

    /// Paper §3.1: "in a 2D-mesh, node (x, y) can first try switch
    /// 1 + (x+y) mod k" — generalised to any dimension count.
    fn initial_switch(&self, src: NodeId) -> u8 {
        if self.cfg.stagger_initial_switch {
            1 + (self.topo.coords(src).coord_sum() % u64::from(self.cfg.k)) as u8
        } else {
            1
        }
    }

    fn start_establish(
        &mut self,
        now: Cycle,
        src: NodeId,
        dest: NodeId,
        force: bool,
    ) -> &mut CacheEntry {
        let cid = CircuitId(self.next_circuit);
        self.next_circuit += 1;
        let switch = self.initial_switch(src);
        let mut entry = CacheEntry::new(dest, cid, switch, switch);
        entry.force_phase = force;
        // End-point buffer sizing (§2): CLRP allocates blind and may
        // re-allocate; CARP knows the message set and sizes it exactly.
        entry.alloc_flits = match self.cfg.protocol {
            ProtocolKind::Clrp => Some(self.cfg.initial_buffer_flits),
            _ => None,
        };
        self.fifo_seq += 1;
        replacement::on_create(&mut entry, self.cfg.replacement, now, self.fifo_seq);
        self.caches[src.0 as usize].insert(entry);
        self.circuits
            .insert(cid, CircuitState::new(cid, src, dest, switch));
        self.launch_probe(now, cid, src, dest, switch, force);
        self.caches[src.0 as usize]
            .get_mut(dest)
            .expect("entry just inserted")
    }

    fn launch_probe(
        &mut self,
        now: Cycle,
        circuit: CircuitId,
        src: NodeId,
        dest: NodeId,
        switch: u8,
        force: bool,
    ) {
        let pid = ProbeId(self.next_probe);
        self.next_probe += 1;
        let probe = ProbeState::new(pid, circuit, &self.topo, src, dest, switch, force);
        self.probes.insert(pid, probe);
        self.stats.probes_sent += 1;
        if let Some(c) = self.circuits.get_mut(&circuit) {
            c.switch = switch;
            c.status = CircuitStatus::Establishing;
        }
        // PCS processing before the probe leaves the source.
        self.ctrl.schedule(
            now + u64::from(self.cfg.pcs_delay).max(1),
            Ctrl::ProbeAt(pid),
        );
    }

    // ------------------------------------------------------------------
    // Event dispatch
    // ------------------------------------------------------------------

    fn handle(&mut self, now: Cycle, ev: Ctrl) {
        match ev {
            Ctrl::ProbeAt(pid) | Ctrl::RetryProbe(pid) => self.process_probe(now, pid),
            Ctrl::AckHopAt(cid, hop) => self.on_ack_hop(now, cid, hop),
            Ctrl::TeardownAt(cid, node) => self.on_teardown(now, cid, node),
            Ctrl::ReleaseReqAt(cid) => self.on_release_request(now, cid),
            Ctrl::TransferDelivered(cid, msg) => self.on_transfer_delivered(now, cid, msg),
            Ctrl::TransferAcked(cid) => self.on_transfer_acked(now, cid),
        }
    }

    // ------------------------------------------------------------------
    // Probe engine (MB-m, §2 + Fig. 4, with the §3.1 Force extension)
    // ------------------------------------------------------------------

    fn process_probe(&mut self, now: Cycle, pid: ProbeId) {
        let Some(mut p) = self.probes.remove(&pid) else {
            return; // probe already terminated (stale wake-up)
        };
        p.parked_on = None;

        // If the owning circuit was cancelled while the probe was walking
        // (defensive path — a teardown raced the search), unwind: release
        // every reserved lane and die quietly.
        let cancelled = match self.circuits.get(&p.circuit) {
            None => true,
            Some(c) => c.status == CircuitStatus::TearingDown,
        };
        if cancelled {
            self.unwind_probe(now, p);
            return;
        }

        // Destination reached?
        if p.at == p.dest {
            self.complete_probe(now, p);
            return;
        }

        let node = p.at;
        let reverse_in: Option<PortDir> = p.path.last().map(|lane| {
            let (_, port) = self.topo.link_endpoints(lane.link);
            port.opposite()
        });

        // Nodes already on the reserved path (including the source): the
        // probe must not loop back through them — its path stays simple,
        // which both keeps the PCS mappings well-defined (one hop per
        // circuit per router) and makes the Theorem 3/4 step bound hold.
        let mut on_path: Vec<NodeId> = Vec::with_capacity(p.path.len() + 1);
        on_path.push(p.src);
        for lane in &p.path {
            on_path.push(self.topo.link_dest(lane.link));
        }
        let loops_back = |topo: &Topology, port: PortDir| -> bool {
            topo.neighbor(node, port)
                .is_some_and(|n| on_path.contains(&n))
        };

        // Candidate ports: profitable (minimal) first, in dimension order,
        // then the rest as misroute candidates.
        let profitable = self.topo.min_ports(node, p.dest);
        let all_ports = self.topo.ports_of(node);

        // 1) Free profitable channel not yet searched.
        for &port in &profitable {
            if p.searched(node, port.index()) || loops_back(&self.topo, port) {
                continue;
            }
            let lane = LaneId::new(self.topo.link_id(node, port), p.switch);
            match self.lanes.state(lane) {
                LaneState::Free => {
                    self.advance_probe(now, p, port, lane, false);
                    return;
                }
                LaneState::Faulty => {
                    self.stats.probe_fault_encounters += 1;
                }
                LaneState::Reserved(_) => {}
            }
        }

        // 2) Misroute if budget remains (MB-m).
        if p.flit.misroute < self.cfg.misroutes {
            for &port in &all_ports {
                if profitable.contains(&port)
                    || Some(port) == reverse_in
                    || p.searched(node, port.index())
                    || loops_back(&self.topo, port)
                {
                    continue;
                }
                let lane = LaneId::new(self.topo.link_id(node, port), p.switch);
                match self.lanes.state(lane) {
                    LaneState::Free => {
                        self.advance_probe(now, p, port, lane, true);
                        return;
                    }
                    LaneState::Faulty => {
                        self.stats.probe_fault_encounters += 1;
                    }
                    LaneState::Reserved(_) => {}
                }
            }
        }

        // 3) Force mode: pick a victim circuit holding a requested lane
        //    whose acknowledgment has returned (§3.1 phase two).
        if p.flit.force {
            let mut requested: Vec<PortDir> = profitable.clone();
            if p.flit.misroute < self.cfg.misroutes {
                for &port in &all_ports {
                    if !profitable.contains(&port) && Some(port) != reverse_in {
                        requested.push(port);
                    }
                }
            }
            for &port in &requested {
                if p.searched(node, port.index()) || loops_back(&self.topo, port) {
                    continue;
                }
                let lane = LaneId::new(self.topo.link_id(node, port), p.switch);
                let Some(victim) = self.lanes.holder(lane) else {
                    continue; // free or faulty, handled above
                };
                let Some(vstate) = self.circuits.get(&victim) else {
                    continue;
                };
                if vstate.status != CircuitStatus::Ready {
                    continue; // being established or already tearing down
                }
                // Park the probe on the lane; it resumes when freed.
                self.lanes.park(lane, p.id);
                p.parked_on = Some(lane);
                let vsrc = vstate.src;
                if vsrc == node {
                    // Victim starts here: release it locally.
                    self.stats.forced_local_releases += 1;
                    self.request_local_release(now, vsrc, victim);
                } else {
                    // Victim crosses here: ask its source to release it.
                    self.stats.forced_remote_releases += 1;
                    let hops_back = self.hops_from_source(victim, node);
                    let delay = hops_back * u64::from(self.cfg.ctrl_hop_delay);
                    self.ctrl
                        .schedule(now + delay.max(1), Ctrl::ReleaseReqAt(victim));
                }
                self.probes.insert(p.id, p);
                return;
            }
            // All requested lanes belong to circuits being established (or
            // nothing is requestable): backtrack even with Force set (§4).
        }

        // 4) Backtrack.
        self.backtrack_probe(now, p);
    }

    /// Path position of `node` on `circuit` (hops from the source),
    /// counting reserved lanes. Used to time release-request flights.
    fn hops_from_source(&self, circuit: CircuitId, node: NodeId) -> u64 {
        let Some(c) = self.circuits.get(&circuit) else {
            return 1;
        };
        for (i, lane) in c.path.iter().enumerate() {
            if self.topo.link_dest(lane.link) == node {
                return (i + 1) as u64;
            }
        }
        1
    }

    fn advance_probe(
        &mut self,
        now: Cycle,
        mut p: ProbeState,
        port: PortDir,
        lane: LaneId,
        misroute: bool,
    ) {
        p.mark_searched(p.at, port.index());
        self.lanes.reserve(lane, p.circuit);
        if misroute {
            p.flit.misroute += 1;
            self.stats.probe_misroutes += 1;
        }
        // PCS bookkeeping at the current node: out mapping.
        let unit = &mut self.pcs[p.at.0 as usize];
        if unit.hop(p.circuit).is_none() {
            // Source node (no in-lane).
            debug_assert_eq!(p.at, p.src);
            unit.record(p.circuit, p.switch, None, Some(lane));
        } else {
            unit.set_out_lane(p.circuit, Some(lane));
        }
        let next = self.topo.link_dest(lane.link);
        p.path.push(lane);
        p.at = next;
        p.hops += 1;
        self.stats.probe_hops += 1;
        p.flit.backtrack = false;
        let (dest, circuit, switch) = (p.dest, p.circuit, p.switch);
        p.flit.update_offsets(&self.topo, next, dest);
        // Record the in-mapping at the next node on arrival.
        let unit = &mut self.pcs[next.0 as usize];
        if unit.hop(circuit).is_none() {
            unit.record(circuit, switch, Some(lane), None);
        } else {
            // Revisited node after a backtrack elsewhere: refresh in-lane.
            unit.clear(circuit);
            unit.record(circuit, switch, Some(lane), None);
        }
        let pid = p.id;
        self.probes.insert(pid, p);
        // Forward moves pay the PCS routing decision plus the wire hop.
        let delay = u64::from(self.cfg.ctrl_hop_delay) + u64::from(self.cfg.pcs_delay);
        self.ctrl.schedule(now + delay, Ctrl::ProbeAt(pid));
    }

    fn backtrack_probe(&mut self, now: Cycle, mut p: ProbeState) {
        if p.at == p.src {
            // Search space for this switch exhausted.
            self.pcs[p.src.0 as usize].clear(p.circuit);
            self.stats.probes_exhausted += 1;
            self.max_probe_steps = self.max_probe_steps.max(p.hops);
            let (circuit, switch, force) = (p.circuit, p.switch, p.flit.force);
            self.on_probe_failed(now, circuit, switch, force);
            return;
        }
        p.flit.backtrack = true;
        let lane = p.path.pop().expect("non-source probe has a path");
        let (prev, _) = self.topo.link_endpoints(lane.link);
        // Clear this node's mapping; the previous node's out-lane resets.
        self.pcs[p.at.0 as usize].clear(p.circuit);
        self.pcs[prev.0 as usize].set_out_lane(p.circuit, None);
        let woken = self.lanes.release(lane, p.circuit);
        p.at = prev;
        p.hops += 1;
        p.backtracks += 1;
        self.stats.probe_hops += 1;
        self.stats.probe_backtracks += 1;
        let (dest, pid) = (p.dest, p.id);
        p.flit.update_offsets(&self.topo, prev, dest);
        self.probes.insert(pid, p);
        self.ctrl
            .schedule(now + u64::from(self.cfg.ctrl_hop_delay), Ctrl::ProbeAt(pid));
        self.wake(now, woken);
    }

    /// Releases everything a cancelled probe reserved (reverse path order)
    /// and clears the PCS mappings it created.
    fn unwind_probe(&mut self, now: Cycle, p: ProbeState) {
        self.pcs[p.at.0 as usize].clear(p.circuit);
        for lane in p.path.iter().rev() {
            let (from, _) = self.topo.link_endpoints(lane.link);
            self.pcs[from.0 as usize].clear(p.circuit);
            let woken = self.lanes.release(*lane, p.circuit);
            self.wake(now, woken);
        }
        self.circuits.remove(&p.circuit);
        self.stats.teardowns += 1;
        self.max_probe_steps = self.max_probe_steps.max(p.hops);
    }

    fn complete_probe(&mut self, now: Cycle, p: ProbeState) {
        debug_assert_eq!(p.at, p.dest);
        debug_assert!(!p.path.is_empty(), "src != dest implies a real path");
        self.stats.probes_reached += 1;
        self.max_probe_steps = self.max_probe_steps.max(p.hops);
        let c = self
            .circuits
            .get_mut(&p.circuit)
            .expect("live probe has a live circuit");
        c.path = p.path.clone();
        // The acknowledgment returns hop by hop over the reverse control
        // channels (Fig. 3's Reverse Channel Mappings), setting each
        // router's Ack Returned bit as it passes.
        let last_hop = (p.path.len() - 1) as u32;
        let delay = u64::from(self.cfg.ctrl_hop_delay);
        self.ctrl
            .schedule(now + delay.max(1), Ctrl::AckHopAt(p.circuit, last_hop));
        // Probe terminates; its History Store entries die with it.
    }

    fn wake(&mut self, now: Cycle, probes: Vec<ProbeId>) {
        for pid in probes {
            if self.probes.contains_key(&pid) {
                self.ctrl.schedule(now + 1, Ctrl::RetryProbe(pid));
            }
        }
    }

    // ------------------------------------------------------------------
    // Protocol reactions
    // ------------------------------------------------------------------

    fn on_probe_failed(&mut self, now: Cycle, circuit: CircuitId, switch: u8, force: bool) {
        let Some(c) = self.circuits.get(&circuit) else {
            return;
        };
        let (src, dest) = (c.src, c.dest);
        let k = self.cfg.k;
        let entry = self.caches[src.0 as usize]
            .find_by_circuit_mut(circuit)
            .expect("establishing circuit has a cache entry");
        let initial = entry.initial_switch;
        let next_switch = (switch % k) + 1;

        match self.cfg.protocol {
            ProtocolKind::Clrp => {
                if !force {
                    if next_switch != initial {
                        // Phase one continues on the next switch.
                        entry.switch = next_switch;
                        self.launch_probe(now, circuit, src, dest, next_switch, false);
                    } else if self.cfg.clrp.enable_force {
                        // Phase two: Force bit set, back to Initial Switch.
                        entry.force_phase = true;
                        entry.switch = initial;
                        self.launch_probe(now, circuit, src, dest, initial, true);
                    } else {
                        self.fail_establishment(now, src, dest, circuit);
                    }
                } else if !self.cfg.clrp.single_switch_force && next_switch != initial {
                    entry.switch = next_switch;
                    self.launch_probe(now, circuit, src, dest, next_switch, true);
                } else {
                    // Phase three: wormhole switching.
                    self.fail_establishment(now, src, dest, circuit);
                }
            }
            ProtocolKind::Carp => {
                if next_switch != initial {
                    entry.switch = next_switch;
                    self.launch_probe(now, circuit, src, dest, next_switch, false);
                } else {
                    self.fail_establishment(now, src, dest, circuit);
                }
            }
            ProtocolKind::WormholeOnly => unreachable!("no probes in wormhole-only mode"),
        }
    }

    fn fail_establishment(&mut self, now: Cycle, src: NodeId, dest: NodeId, circuit: CircuitId) {
        let _ = now;
        self.stats.setups_failed += 1;
        self.circuits.remove(&circuit);
        let s = src.0 as usize;
        let entry = self.caches[s]
            .get_mut(dest)
            .expect("failed circuit has a cache entry");
        let queued: Vec<Message> = entry.queue.drain(..).collect();
        match self.cfg.protocol {
            ProtocolKind::Carp if !entry.release_pending => {
                // §3.2: "messages requesting that circuit will have to use
                // wormhole switching" — keep a Failed marker.
                entry.state = EntryState::Failed;
            }
            _ => {
                // CLRP always forgets failed attempts; a CARP entry with a
                // teardown already pending is dropped outright.
                self.caches[s].remove(dest);
            }
        }
        for m in queued {
            self.send_wormhole_fallback(m);
        }
    }

    /// The ack flit passes the router at the upstream end of path lane
    /// `hop`, setting that router's Ack Returned bit; at hop 0 it has
    /// reached the source and establishment completes.
    fn on_ack_hop(&mut self, now: Cycle, circuit: CircuitId, hop: u32) {
        let Some(c) = self.circuits.get(&circuit) else {
            return; // torn down while the ack was in flight
        };
        if c.status != CircuitStatus::Establishing {
            return;
        }
        let Some(lane) = c.path.get(hop as usize) else {
            return;
        };
        let (node, _) = self.topo.link_endpoints(lane.link);
        self.pcs[node.0 as usize].mark_ack(circuit);
        if hop > 0 {
            self.ctrl.schedule(
                now + u64::from(self.cfg.ctrl_hop_delay),
                Ctrl::AckHopAt(circuit, hop - 1),
            );
            return;
        }
        self.on_ack_complete(now, circuit);
    }

    fn on_ack_complete(&mut self, now: Cycle, circuit: CircuitId) {
        let c = self.circuits.get_mut(&circuit).expect("checked by caller");
        c.status = CircuitStatus::Ready;
        let (src, dest) = (c.src, c.dest);
        let first_lane = c.path.first().copied();
        self.stats.setups_ok += 1;
        let entry = self.caches[src.0 as usize]
            .get_mut(dest)
            .expect("acked circuit has a cache entry");
        entry.state = EntryState::Ready;
        entry.ack_returned = true;
        entry.established_at = Some(now);
        entry.channel = first_lane;
        if entry.release_pending && entry.queue.is_empty() && !entry.in_use {
            // A CARP teardown (or forced release) raced the ack.
            self.release_entry_now(now, src, dest);
            return;
        }
        self.pump_circuit(now, src, dest);
    }

    /// Starts the next queued transfer on the (Ready, idle) circuit.
    fn pump_circuit(&mut self, now: Cycle, src: NodeId, dest: NodeId) {
        let Some(entry) = self.caches[src.0 as usize].get_mut(dest) else {
            return;
        };
        if entry.state != EntryState::Ready || entry.in_use {
            return;
        }
        let Some(msg) = entry.queue.pop_front() else {
            return;
        };
        entry.in_use = true;
        entry.uses += 1;
        // Blind-sized end-point buffers (CLRP) must grow before a longer
        // message can stream — a software re-allocation cost (§2).
        let mut penalty = 0u64;
        if let Some(alloc) = entry.alloc_flits {
            if msg.len_flits > alloc {
                entry.alloc_flits = Some(msg.len_flits);
                penalty = u64::from(self.cfg.realloc_penalty);
                self.stats.buffer_reallocs += 1;
            }
        }
        let circuit = entry.circuit;
        let hops = self.circuits[&circuit].hops();
        let plan = plan_transfer(msg.len_flits, hops, &self.cfg);
        self.ctrl.schedule(
            now + penalty + plan.delivery_delay,
            Ctrl::TransferDelivered(circuit, msg),
        );
        self.ctrl
            .schedule(now + penalty + plan.ack_delay, Ctrl::TransferAcked(circuit));
    }

    fn on_transfer_delivered(&mut self, now: Cycle, _circuit: CircuitId, msg: Message) {
        self.outstanding_msgs -= 1;
        self.stats.msgs_circuit += 1;
        self.deliveries.push(Delivery {
            msg,
            delivered_at: now,
            mode: DeliveryMode::Circuit,
        });
    }

    fn on_transfer_acked(&mut self, now: Cycle, circuit: CircuitId) {
        let Some(c) = self.circuits.get(&circuit) else {
            return;
        };
        let (src, dest) = (c.src, c.dest);
        let entry = self.caches[src.0 as usize]
            .get_mut(dest)
            .expect("in-use circuit has a cache entry");
        debug_assert!(entry.in_use, "ack for a transfer that never started");
        entry.in_use = false;
        if entry.release_pending && entry.queue.is_empty() {
            self.release_entry_now(now, src, dest);
        } else {
            self.pump_circuit(now, src, dest);
        }
    }

    // ------------------------------------------------------------------
    // Release / teardown
    // ------------------------------------------------------------------

    /// A forced release of a circuit that *starts at* `src` (local victim
    /// in CLRP phase two): honour it as soon as the in-flight message (if
    /// any) completes; queued messages fall back to wormhole.
    fn request_local_release(&mut self, now: Cycle, src: NodeId, circuit: CircuitId) {
        let s = src.0 as usize;
        let Some(entry) = self.caches[s].find_by_circuit_mut(circuit) else {
            self.stats.release_requests_discarded += 1;
            return;
        };
        let dest = entry.dest;
        let queued: Vec<Message> = entry.queue.drain(..).collect();
        if entry.in_use {
            entry.release_pending = true;
        }
        for m in queued {
            self.send_wormhole_fallback(m);
        }
        let entry = self.caches[s].get_mut(dest).expect("entry still present");
        if !entry.in_use {
            self.release_entry_now(now, src, dest);
        }
    }

    fn on_release_request(&mut self, now: Cycle, circuit: CircuitId) {
        let Some(c) = self.circuits.get(&circuit) else {
            // Circuit released while the request was in flight: "the
            // control flit is discarded at some intermediate node" (§4).
            self.stats.release_requests_discarded += 1;
            return;
        };
        if c.status != CircuitStatus::Ready {
            self.stats.release_requests_discarded += 1;
            return;
        }
        let src = c.src;
        self.request_local_release(now, src, circuit);
    }

    /// Immediately removes the cache entry for `dest` and starts the
    /// teardown flit down the path.
    ///
    /// # Panics
    /// Panics if the entry is in use (callers must wait for the ack).
    fn release_entry_now(&mut self, now: Cycle, src: NodeId, dest: NodeId) {
        let s = src.0 as usize;
        let entry = self.caches[s]
            .remove(dest)
            .expect("release of missing entry");
        assert!(!entry.in_use, "cannot release an in-use circuit");
        for m in entry.queue {
            self.send_wormhole_fallback(m);
        }
        let circuit = entry.circuit;
        let Some(c) = self.circuits.get_mut(&circuit) else {
            return; // establishment already failed and cleaned up
        };
        match c.status {
            CircuitStatus::Establishing => {
                // A probe is still out. Mark the circuit as tearing down;
                // the probe's failure/success handlers deal with it —
                // simplest correct policy: let the probe finish its search
                // and tear down on ack (handled by release_pending, which
                // we cannot keep since the entry is gone). Instead, kill
                // the probe in place: backtracking it synchronously would
                // duplicate the engine, so we mark the circuit TearingDown
                // and the probe unwinds on its next step.
                c.status = CircuitStatus::TearingDown;
            }
            CircuitStatus::Ready => {
                c.status = CircuitStatus::TearingDown;
                self.ctrl.schedule(now + 1, Ctrl::TeardownAt(circuit, src));
            }
            CircuitStatus::TearingDown => {}
        }
    }

    fn on_teardown(&mut self, now: Cycle, circuit: CircuitId, node: NodeId) {
        let Some(hop) = self.pcs[node.0 as usize].clear(circuit) else {
            return; // already unwound (e.g. backtrack raced)
        };
        match hop.out_lane {
            Some(lane) => {
                let woken = self.lanes.release(lane, circuit);
                let next = self.topo.link_dest(lane.link);
                self.ctrl.schedule(
                    now + u64::from(self.cfg.ctrl_hop_delay),
                    Ctrl::TeardownAt(circuit, next),
                );
                self.wake(now, woken);
            }
            None => {
                // Destination reached: the circuit is fully released.
                self.circuits.remove(&circuit);
                self.stats.teardowns += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariant audit (used by wavesim-verify and tests)
    // ------------------------------------------------------------------

    /// Cross-checks lane reservations against circuit paths and probe
    /// paths; returns human-readable violations (empty = consistent).
    #[must_use]
    pub fn audit(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // Every Ready circuit's path must be reserved by it.
        for (cid, c) in &self.circuits {
            if c.status == CircuitStatus::Ready {
                for lane in &c.path {
                    if self.lanes.holder(*lane) != Some(*cid) {
                        problems.push(format!("{cid}: path lane {lane} not held"));
                    }
                }
            }
        }
        // Every live probe's reserved prefix must be held by its circuit.
        for (pid, p) in &self.probes {
            for lane in &p.path {
                if self.lanes.holder(*lane) != Some(p.circuit) {
                    problems.push(format!("{pid}: reserved lane {lane} not held"));
                }
            }
        }
        // Cache entries and circuit registry must agree.
        for (n, cache) in self.caches.iter().enumerate() {
            for e in cache.iter() {
                match e.state {
                    EntryState::Establishing | EntryState::Ready
                        if !self.circuits.contains_key(&e.circuit) =>
                    {
                        problems.push(format!(
                            "node {n}: cache entry for {} has no circuit {}",
                            e.dest, e.circuit
                        ));
                    }
                    _ => {}
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_network::WormholeConfig;
    use wavesim_topology::{Coords, RoutingKind};

    fn cfg(protocol: ProtocolKind) -> WaveConfig {
        WaveConfig {
            protocol,
            ..WaveConfig::default()
        }
    }

    fn mesh(dims: &[u16], c: WaveConfig) -> WaveNetwork {
        WaveNetwork::new(Topology::mesh(dims), c)
    }

    fn run(net: &mut WaveNetwork, from: Cycle, max: Cycle) -> Cycle {
        let mut now = from;
        while net.busy() && now < max {
            net.tick(now);
            now += 1;
        }
        now
    }

    fn node(net: &WaveNetwork, c: &[u16]) -> NodeId {
        net.topology().node(Coords::new(c))
    }

    #[test]
    fn clrp_establishes_circuit_and_delivers() {
        let mut net = mesh(&[8, 8], cfg(ProtocolKind::Clrp));
        let src = node(&net, &[0, 0]);
        let dest = node(&net, &[5, 3]);
        net.send(0, Message::new(1, src, dest, 128, 0));
        run(&mut net, 0, 50_000);
        assert!(!net.busy());
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].mode, DeliveryMode::Circuit);
        let s = net.stats();
        assert_eq!(s.setups_ok, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.msgs_circuit, 1);
        // Circuit persists after the transfer (it is cached).
        assert_eq!(net.circuits().len(), 1);
        assert!(net.cache(src).get(dest).unwrap().ack_returned);
        assert!(net.audit().is_empty(), "{:?}", net.audit());
    }

    #[test]
    fn clrp_second_send_hits_the_cache() {
        let mut net = mesh(&[8, 8], cfg(ProtocolKind::Clrp));
        let src = node(&net, &[1, 1]);
        let dest = node(&net, &[6, 6]);
        net.send(0, Message::new(1, src, dest, 32, 0));
        let t = run(&mut net, 0, 50_000);
        net.send(t, Message::new(2, src, dest, 32, t));
        run(&mut net, t, t + 50_000);
        let s = net.stats();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.probes_sent, 1, "second send must not probe");
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 2);
        // The cache hit skips establishment: strictly lower latency.
        assert!(ds[1].latency() < ds[0].latency());
    }

    #[test]
    fn circuit_reuse_preserves_fifo_order() {
        let mut net = mesh(&[8, 8], cfg(ProtocolKind::Clrp));
        let src = node(&net, &[0, 0]);
        let dest = node(&net, &[7, 7]);
        for i in 0..10 {
            net.send(0, Message::new(i, src, dest, 64, 0));
        }
        run(&mut net, 0, 100_000);
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 10);
        // In-order delivery is guaranteed on a circuit (§2).
        let ids: Vec<u64> = ds.iter().map(|d| d.msg.id.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
        assert!(ds.iter().all(|d| d.mode == DeliveryMode::Circuit));
        assert_eq!(net.cache(src).get(dest).unwrap().uses, 10);
    }

    #[test]
    fn wormhole_only_baseline_uses_s0() {
        let mut net = mesh(&[4, 4], cfg(ProtocolKind::WormholeOnly));
        let src = node(&net, &[0, 0]);
        let dest = node(&net, &[3, 3]);
        net.send(0, Message::new(1, src, dest, 16, 0));
        run(&mut net, 0, 10_000);
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].mode, DeliveryMode::Wormhole);
        assert_eq!(net.stats().probes_sent, 0);
    }

    #[test]
    fn carp_establish_send_teardown_lifecycle() {
        let mut net = mesh(&[6, 6], cfg(ProtocolKind::Carp));
        let src = node(&net, &[0, 0]);
        let dest = node(&net, &[4, 4]);
        let free0 = net.lanes().census().0;
        net.carp_establish(0, src, dest);
        let t = run(&mut net, 0, 50_000);
        assert_eq!(net.stats().setups_ok, 1);
        assert!(net.cache(src).get(dest).unwrap().ack_returned);
        // Lanes along the path are reserved.
        assert!(net.lanes().census().1 > 0);

        net.send(t, Message::new(1, src, dest, 200, t));
        let t = run(&mut net, t, t + 50_000);
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].mode, DeliveryMode::Circuit);

        net.carp_teardown(t, src, dest);
        run(&mut net, t, t + 50_000);
        assert!(net.cache(src).get(dest).is_none());
        assert_eq!(net.circuits().len(), 0);
        assert_eq!(net.lanes().census().0, free0, "all lanes free again");
        assert_eq!(net.stats().teardowns, 1);
        assert!(net.audit().is_empty());
    }

    #[test]
    fn carp_send_without_circuit_uses_wormhole() {
        let mut net = mesh(&[4, 4], cfg(ProtocolKind::Carp));
        let src = node(&net, &[0, 0]);
        let dest = node(&net, &[3, 0]);
        net.send(0, Message::new(1, src, dest, 8, 0));
        run(&mut net, 0, 10_000);
        let ds = net.drain_deliveries();
        assert_eq!(ds[0].mode, DeliveryMode::Wormhole);
        assert_eq!(net.stats().probes_sent, 0);
    }

    #[test]
    fn carp_failed_establishment_marks_entry_and_falls_back() {
        let mut net = mesh(&[4], cfg(ProtocolKind::Carp));
        // Fault every lane of every link: no circuit can ever form.
        let topo = net.topology().clone();
        for link in topo.links() {
            for s in 1..=net.config().k {
                net.inject_lane_fault(LaneId::new(link, s));
            }
        }
        let src = NodeId(0);
        let dest = NodeId(3);
        net.carp_establish(0, src, dest);
        net.send(1, Message::new(1, src, dest, 8, 1));
        run(&mut net, 0, 20_000);
        assert_eq!(net.stats().setups_failed, 1);
        assert_eq!(
            net.cache(src).get(dest).map(|e| e.state),
            Some(EntryState::Failed)
        );
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].mode, DeliveryMode::Wormhole);
        // Teardown of a Failed entry just forgets it.
        net.carp_teardown(1_000_000, src, dest);
        assert!(net.cache(src).get(dest).is_none());
    }

    #[test]
    fn clrp_falls_back_to_wormhole_when_wave_plane_dead() {
        let mut net = mesh(&[4, 4], cfg(ProtocolKind::Clrp));
        let topo = net.topology().clone();
        for link in topo.links() {
            for s in 1..=net.config().k {
                net.inject_lane_fault(LaneId::new(link, s));
            }
        }
        let src = node(&net, &[0, 0]);
        let dest = node(&net, &[3, 3]);
        net.send(0, Message::new(1, src, dest, 64, 0));
        run(&mut net, 0, 50_000);
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].mode, DeliveryMode::Wormhole, "phase 3 fallback");
        let s = net.stats();
        assert_eq!(s.setups_failed, 1);
        assert!(s.wormhole_fallbacks >= 1);
        assert!(s.probe_fault_encounters > 0);
        // CLRP forgets failed attempts.
        assert!(net.cache(src).get(dest).is_none());
        assert!(net.audit().is_empty());
    }

    #[test]
    fn clrp_force_mode_tears_down_remote_victim() {
        // 1D mesh, k=1: circuit A (0 -> 3) monopolises the +X lanes; a
        // later circuit B (1 -> 2) must force A's release through a remote
        // release request (A crosses node 1 but starts at node 0).
        let c = WaveConfig {
            k: 1,
            misroutes: 0,
            ..cfg(ProtocolKind::Clrp)
        };
        let mut net = mesh(&[4], c);
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        let n2 = NodeId(2);
        let n3 = NodeId(3);
        net.send(0, Message::new(1, n0, n3, 16, 0));
        let t = run(&mut net, 0, 20_000);
        assert_eq!(net.circuits().len(), 1, "A is up and cached");

        net.send(t, Message::new(2, n1, n2, 16, t));
        run(&mut net, t, t + 50_000);
        let ds = net.drain_deliveries();
        assert_eq!(ds.len(), 2);
        let s = net.stats();
        assert!(s.forced_remote_releases >= 1, "{s:?}");
        assert!(s.teardowns >= 1);
        assert_eq!(s.setups_ok, 2);
        // A's entry is gone from node 0's cache; B's circuit lives.
        assert!(net.cache(n0).get(n3).is_none());
        assert!(net.cache(n1).get(n2).is_some());
        assert!(net.audit().is_empty(), "{:?}", net.audit());
    }

    #[test]
    fn clrp_force_mode_releases_local_victim() {
        // Same geometry, but the blocking circuit *starts at* the stuck
        // node: B (0 -> 2) finds A (0 -> 3) holding its first lane, and A
        // starts at node 0 = B's source, so the release is local.
        let c = WaveConfig {
            k: 1,
            misroutes: 0,
            cache_capacity: 4,
            ..cfg(ProtocolKind::Clrp)
        };
        let mut net = mesh(&[4], c);
        let n0 = NodeId(0);
        let n2 = NodeId(2);
        let n3 = NodeId(3);
        net.send(0, Message::new(1, n0, n3, 16, 0));
        let t = run(&mut net, 0, 20_000);
        net.send(t, Message::new(2, n0, n2, 16, t));
        run(&mut net, t, t + 50_000);
        assert_eq!(net.drain_deliveries().len(), 2);
        let s = net.stats();
        assert!(s.forced_local_releases >= 1, "{s:?}");
        assert!(net.cache(n0).get(n3).is_none(), "victim evicted");
        assert!(net.cache(n0).get(n2).is_some());
        assert!(net.audit().is_empty());
    }

    #[test]
    fn probe_misroutes_around_reserved_lane() {
        // 3x3 mesh, k=1: A = (0,0)->(1,0) takes the +X lane out of the
        // corner; B = (0,0)->(2,0) must leave through +Y (a misroute) and
        // still reach its destination in phase one.
        let c = WaveConfig {
            k: 1,
            misroutes: 2,
            cache_capacity: 8,
            ..cfg(ProtocolKind::Clrp)
        };
        let mut net = mesh(&[3, 3], c);
        let a = node(&net, &[0, 0]);
        let d1 = node(&net, &[1, 0]);
        let d2 = node(&net, &[2, 0]);
        net.send(0, Message::new(1, a, d1, 8, 0));
        let t = run(&mut net, 0, 20_000);
        net.send(t, Message::new(2, a, d2, 8, t));
        run(&mut net, t, t + 50_000);
        assert_eq!(net.drain_deliveries().len(), 2);
        let s = net.stats();
        assert!(s.probe_misroutes >= 1, "{s:?}");
        assert_eq!(s.forced_local_releases + s.forced_remote_releases, 0);
        assert_eq!(net.circuits().len(), 2, "both circuits coexist");
        assert!(net.audit().is_empty());
    }

    #[test]
    fn cache_replacement_evicts_lru_victim() {
        let c = WaveConfig {
            cache_capacity: 1,
            ..cfg(ProtocolKind::Clrp)
        };
        let mut net = mesh(&[4, 4], c);
        let src = node(&net, &[0, 0]);
        let d1 = node(&net, &[3, 0]);
        let d2 = node(&net, &[0, 3]);
        net.send(0, Message::new(1, src, d1, 16, 0));
        let t = run(&mut net, 0, 20_000);
        net.send(t, Message::new(2, src, d2, 16, t));
        run(&mut net, t, t + 50_000);
        assert_eq!(net.drain_deliveries().len(), 2);
        let s = net.stats();
        assert_eq!(s.cache_evictions, 1);
        assert!(net.cache(src).get(d1).is_none(), "d1 evicted");
        assert!(net.cache(src).get(d2).is_some());
        assert_eq!(net.circuits().len(), 1);
        assert!(net.audit().is_empty());
    }

    #[test]
    fn skip_phase1_variant_starts_with_force() {
        let c = WaveConfig {
            k: 1,
            misroutes: 0,
            clrp: crate::config::ClrpVariant {
                skip_phase1: true,
                ..Default::default()
            },
            ..cfg(ProtocolKind::Clrp)
        };
        let mut net = mesh(&[4], c);
        net.send(0, Message::new(1, NodeId(0), NodeId(3), 8, 0));
        let t = run(&mut net, 0, 20_000);
        // Second circuit immediately forces the victim without a phase-1
        // round: exactly one probe for the second establishment.
        let probes_before = net.stats().probes_sent;
        net.send(t, Message::new(2, NodeId(1), NodeId(2), 8, t));
        run(&mut net, t, t + 50_000);
        assert_eq!(net.stats().probes_sent, probes_before + 1);
        assert!(net.stats().forced_remote_releases >= 1);
        assert_eq!(net.drain_deliveries().len(), 2);
    }

    #[test]
    fn deterministic_replay() {
        let build = || {
            let mut net = mesh(&[4, 4], cfg(ProtocolKind::Clrp));
            let mut id = 0;
            let topo = net.topology().clone();
            for a in topo.nodes() {
                for b in topo.nodes() {
                    if a != b && (a.0 * 7 + b.0) % 5 == 0 {
                        net.send(0, Message::new(id, a, b, 24, 0));
                        id += 1;
                    }
                }
            }
            run(&mut net, 0, 300_000);
            let mut ds: Vec<(u64, u64)> = net
                .drain_deliveries()
                .iter()
                .map(|d| (d.msg.id.0, d.delivered_at))
                .collect();
            ds.sort_unstable();
            ds
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn saturating_clrp_traffic_drains_and_audits_clean() {
        // Every node talks to several destinations; circuit contention
        // forces replacements and phase transitions all over the fabric.
        let c = WaveConfig {
            cache_capacity: 2,
            ..cfg(ProtocolKind::Clrp)
        };
        let mut net = mesh(&[4, 4], c);
        let topo = net.topology().clone();
        let mut id = 0;
        for a in topo.nodes() {
            for off in [1u32, 5, 9, 13] {
                let b = NodeId((a.0 + off) % 16);
                if a != b {
                    net.send(0, Message::new(id, a, b, 32, 0));
                    id += 1;
                }
            }
        }
        let end = run(&mut net, 0, 2_000_000);
        assert!(!net.busy(), "all traffic must drain (no deadlock) by {end}");
        let ds = net.drain_deliveries();
        assert_eq!(ds.len() as u64, id);
        assert!(net.audit().is_empty(), "{:?}", net.audit());
        // The livelock bound of Theorems 3/4 holds.
        let bound = crate::probe::ProbeState::step_bound(&topo);
        assert!(net.max_probe_steps() <= bound);
    }

    #[test]
    fn wormhole_config_is_respected() {
        let c = WaveConfig {
            wormhole: WormholeConfig {
                w: 4,
                buffer_depth: 8,
                routing: RoutingKind::Adaptive,
                routing_delay: 2,
            },
            ..cfg(ProtocolKind::WormholeOnly)
        };
        let net = mesh(&[4, 4], c);
        assert_eq!(net.fabric().config().w, 4);
        assert_eq!(net.fabric().routing().name(), "duato-adaptive");
    }
}

#[cfg(test)]
mod buffer_tests {
    use super::*;
    use wavesim_topology::Coords;

    fn run(net: &mut WaveNetwork, from: Cycle, max: Cycle) -> Cycle {
        let mut now = from;
        while net.busy() && now < max {
            net.tick(now);
            now += 1;
        }
        now
    }

    #[test]
    fn clrp_pays_realloc_for_longer_messages() {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Clrp,
            initial_buffer_flits: 32,
            realloc_penalty: 40,
            ..WaveConfig::default()
        };
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), cfg);
        let topo = net.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 3]));
        // Fits the initial buffer: no penalty.
        net.send(0, Message::new(1, src, dest, 32, 0));
        let t = run(&mut net, 0, 50_000);
        assert_eq!(net.stats().buffer_reallocs, 0);
        // Longer: one re-allocation, buffer grows to 128.
        net.send(t, Message::new(2, src, dest, 128, t));
        let t = run(&mut net, t, t + 50_000);
        assert_eq!(net.stats().buffer_reallocs, 1);
        assert_eq!(net.cache(src).get(dest).unwrap().alloc_flits, Some(128));
        // Same length again: grown buffer suffices.
        net.send(t, Message::new(3, src, dest, 128, t));
        run(&mut net, t, t + 50_000);
        assert_eq!(net.stats().buffer_reallocs, 1);
        assert_eq!(net.drain_deliveries().len(), 3);
    }

    #[test]
    fn realloc_penalty_delays_the_transfer() {
        let mk = |penalty: u32| {
            let cfg = WaveConfig {
                protocol: ProtocolKind::Clrp,
                initial_buffer_flits: 8,
                realloc_penalty: penalty,
                ..WaveConfig::default()
            };
            let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), cfg);
            let topo = net.topology().clone();
            let src = topo.node(Coords::new(&[0, 0]));
            let dest = topo.node(Coords::new(&[3, 3]));
            net.send(0, Message::new(1, src, dest, 200, 0));
            run(&mut net, 0, 50_000);
            net.drain_deliveries()[0].latency()
        };
        let cheap = mk(0);
        let costly = mk(100);
        assert_eq!(costly, cheap + 100, "penalty shifts delivery 1:1");
    }

    #[test]
    fn carp_never_reallocates() {
        let cfg = WaveConfig {
            protocol: ProtocolKind::Carp,
            initial_buffer_flits: 8,
            realloc_penalty: 100,
            ..WaveConfig::default()
        };
        let mut net = WaveNetwork::new(Topology::mesh(&[4, 4]), cfg);
        let topo = net.topology().clone();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 3]));
        net.carp_establish(0, src, dest);
        let t = run(&mut net, 0, 50_000);
        // CARP sized the buffers from the message set: huge message, no
        // penalty ever.
        net.send(t, Message::new(1, src, dest, 4096, t));
        run(&mut net, t, t + 100_000);
        assert_eq!(net.stats().buffer_reallocs, 0);
        assert_eq!(net.cache(src).get(dest).unwrap().alloc_flits, None);
        assert_eq!(net.drain_deliveries().len(), 1);
    }
}

#[cfg(test)]
mod ack_tests {
    use super::*;
    use wavesim_topology::Coords;

    /// With a slow control plane, the ack's per-hop progression is
    /// observable: routers near the destination see Ack Returned set
    /// before the source's Circuit Cache entry becomes Ready.
    #[test]
    fn ack_propagates_hop_by_hop() {
        let cfg = WaveConfig {
            ctrl_hop_delay: 4,
            pcs_delay: 1,
            ..WaveConfig::default()
        };
        let mut net = WaveNetwork::new(Topology::mesh(&[6]), cfg);
        let topo = net.topology().clone();
        let src = topo.node(Coords::new(&[0]));
        let dest = topo.node(Coords::new(&[5]));
        net.send(0, Message::new(1, src, dest, 8, 0));
        // Tick until the probe reaches the destination (5 forward hops at
        // 5 cycles each + source processing) but before the ack crosses
        // the whole path back (5 hops at 4 cycles each).
        let mut now = 0;
        let cid = loop {
            net.tick(now);
            now += 1;
            if let Some((id, c)) = net.circuits().iter().next() {
                if c.hops() == 5 && net.probes().is_empty() {
                    break *id;
                }
            }
            assert!(now < 1_000, "probe should have completed by now");
        };
        // Let the ack cross two hops only.
        for _ in 0..9 {
            net.tick(now);
            now += 1;
        }
        let near_dest = topo.node(Coords::new(&[4]));
        assert_eq!(
            net.pcs_ack_returned(near_dest, cid),
            Some(true),
            "router next to the destination has seen the ack"
        );
        assert_eq!(
            net.pcs_ack_returned(src, cid),
            Some(false),
            "the source has not"
        );
        assert_eq!(
            net.cache(src).get(dest).unwrap().state,
            EntryState::Establishing,
            "entry not Ready until the ack arrives home"
        );
        // Finish: the message is delivered over the circuit.
        while net.busy() && now < 50_000 {
            net.tick(now);
            now += 1;
        }
        assert_eq!(net.pcs_ack_returned(src, cid), Some(true));
        assert_eq!(net.drain_deliveries().len(), 1);
    }
}
