//! Inter-plane events and the bus that carries them.
//!
//! The wave router decomposes into three engines — the wormhole
//! **dataplane** ([`crate::dataplane`]), the probe/ack/teardown
//! **controlplane** ([`crate::controlplane`]) and the cache/transfer
//! **circuitplane** ([`crate::circuitplane`]) — that never touch each
//! other's state. Everything one plane needs another to know travels as a
//! [`PlaneEvent`] over the [`EventBus`]; the composition root
//! ([`crate::network::WaveNetwork`]) routes events to their consumer
//! within the same cycle, in FIFO order, until the bus drains.
//!
//! All *time-delayed* work goes through each plane's own
//! [`wavesim_sim::EventQueue`] with a delay of at least one cycle, so the
//! same-cycle routing loop always terminates: every event chain either
//! ends in a plane-local schedule or in a finite amount of immediate
//! bookkeeping.

use std::collections::VecDeque;

use wavesim_network::{Delivery, Message};
use wavesim_topology::NodeId;

use crate::ids::{CircuitId, LaneId};

/// A message between planes (or from a plane to the composition root).
#[derive(Debug, Clone)]
pub enum PlaneEvent {
    /// Dataplane → root: a wormhole message reached its destination.
    WormholeDelivered(Delivery),
    /// Circuitplane → root: a circuit transfer reached its destination.
    CircuitDelivered(Delivery),
    /// Any plane → dataplane: inject this message into the wormhole
    /// fabric (protocol fallback or wormhole-only traffic).
    InjectWormhole(Message),
    /// Circuitplane → controlplane: start (or restart, on the next
    /// switch) the probe search for `circuit`.
    LaunchProbe {
        /// Circuit the probe works for.
        circuit: CircuitId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dest: NodeId,
        /// Wave switch to search (1-based).
        switch: u8,
        /// Whether the probe runs with the Force bit set (CLRP phase 2).
        force: bool,
    },
    /// Controlplane → circuitplane: the probe backtracked to its source
    /// with switch `switch` exhausted; the protocol decides what's next.
    ProbeExhausted {
        /// Circuit whose establishment attempt failed on this switch.
        circuit: CircuitId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dest: NodeId,
        /// Switch whose search space is exhausted.
        switch: u8,
        /// Whether the exhausted probe had the Force bit set.
        force: bool,
    },
    /// Controlplane → circuitplane: the path-setup acknowledgment
    /// reached the source; the circuit is ready to carry messages.
    CircuitEstablished {
        /// The established circuit.
        circuit: CircuitId,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dest: NodeId,
        /// Path length in hops.
        hops: u32,
        /// First lane of the path (the Fig. 5 `Channel` register).
        first_lane: LaneId,
    },
    /// Controlplane → circuitplane: a force-mode probe (or a release
    /// request that reached the source) wants `circuit` released.
    VictimRelease {
        /// Circuit to release.
        circuit: CircuitId,
        /// The circuit's source node (owner of the cache entry).
        src: NodeId,
    },
    /// Circuitplane → controlplane: the cache entry is gone; release the
    /// circuit's path (teardown walk, or unwind the live probe).
    ReleaseCircuit {
        /// Circuit to release.
        circuit: CircuitId,
        /// The circuit's source node (where the teardown starts).
        src: NodeId,
    },
    /// Circuitplane → controlplane: establishment failed on every switch;
    /// drop the circuit from the registry (no path to tear down).
    AbandonCircuit {
        /// The abandoned circuit.
        circuit: CircuitId,
    },
    /// Controlplane → observers: the teardown (or probe unwind) finished
    /// and every lane of `circuit` is free again.
    CircuitReleased {
        /// The fully released circuit.
        circuit: CircuitId,
    },
    /// Controlplane → circuitplane: a dynamic fault hit a lane reserved by
    /// `circuit`; its teardown has started. The owning cache entry must be
    /// invalidated, and CLRP may schedule a bounded re-establishment.
    CircuitBroken {
        /// The circuit the fault destroyed.
        circuit: CircuitId,
        /// The circuit's source node (owner of the cache entry).
        src: NodeId,
        /// The circuit's destination node.
        dest: NodeId,
    },
}

/// FIFO bus carrying [`PlaneEvent`]s between planes within one cycle.
///
/// An optional *tap* records a copy of every pushed event, which is how
/// external detectors (`wavesim-verify`) observe the network without
/// reaching into plane internals.
#[derive(Debug, Default)]
pub struct EventBus {
    queue: VecDeque<PlaneEvent>,
    tap: Option<Vec<PlaneEvent>>,
}

impl EventBus {
    /// Empty bus with no tap.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an event (recording a copy if the tap is armed).
    pub fn push(&mut self, ev: PlaneEvent) {
        if let Some(tap) = &mut self.tap {
            tap.push(ev.clone());
        }
        self.queue.push_back(ev);
    }

    /// Moves every event out of `staging` onto the bus, preserving order.
    pub fn absorb(&mut self, staging: &mut Vec<PlaneEvent>) {
        for ev in staging.drain(..) {
            self.push(ev);
        }
    }

    /// Dequeues the oldest event.
    pub fn pop(&mut self) -> Option<PlaneEvent> {
        self.queue.pop_front()
    }

    /// True when no events are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Arms the observation tap: from now on every pushed event is also
    /// recorded for [`EventBus::take_tap`].
    pub fn enable_tap(&mut self) {
        self.tap.get_or_insert_with(Vec::new);
    }

    /// Drains the recorded events (empty when the tap is not armed).
    pub fn take_tap(&mut self) -> Vec<PlaneEvent> {
        self.tap.as_mut().map(std::mem::take).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut bus = EventBus::new();
        bus.push(PlaneEvent::AbandonCircuit {
            circuit: CircuitId(1),
        });
        bus.push(PlaneEvent::CircuitReleased {
            circuit: CircuitId(2),
        });
        assert_eq!(bus.len(), 2);
        assert!(matches!(
            bus.pop(),
            Some(PlaneEvent::AbandonCircuit { circuit }) if circuit == CircuitId(1)
        ));
        assert!(matches!(
            bus.pop(),
            Some(PlaneEvent::CircuitReleased { circuit }) if circuit == CircuitId(2)
        ));
        assert!(bus.pop().is_none());
    }

    #[test]
    fn tap_records_pushes() {
        let mut bus = EventBus::new();
        bus.push(PlaneEvent::AbandonCircuit {
            circuit: CircuitId(1),
        });
        assert!(bus.take_tap().is_empty(), "tap off by default");
        bus.enable_tap();
        bus.push(PlaneEvent::CircuitReleased {
            circuit: CircuitId(9),
        });
        let tapped = bus.take_tap();
        assert_eq!(tapped.len(), 1);
        assert!(matches!(
            tapped[0],
            PlaneEvent::CircuitReleased { circuit } if circuit == CircuitId(9)
        ));
        // Tap stays armed after draining.
        bus.push(PlaneEvent::AbandonCircuit {
            circuit: CircuitId(3),
        });
        assert_eq!(bus.take_tap().len(), 1);
    }

    #[test]
    fn absorb_preserves_order() {
        let mut bus = EventBus::new();
        let mut staging = vec![
            PlaneEvent::AbandonCircuit {
                circuit: CircuitId(1),
            },
            PlaneEvent::AbandonCircuit {
                circuit: CircuitId(2),
            },
        ];
        bus.absorb(&mut staging);
        assert!(staging.is_empty());
        assert!(matches!(
            bus.pop(),
            Some(PlaneEvent::AbandonCircuit { circuit }) if circuit == CircuitId(1)
        ));
    }
}
