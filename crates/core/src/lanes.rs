//! Wave-lane bookkeeping: the physical channels of switches `S1..Sk`.
//!
//! Each unidirectional physical link is split into `k` lanes, one per wave
//! switch, each paired with its dedicated one-flit control channel
//! (paper §2). A lane is the unit of reservation: the probe reserves
//! "a bidirectional control channel and the associated physical channel in
//! switch `S_i` … both of them … at the same time", so one state machine
//! per lane suffices.
//!
//! The table is **struct-of-arrays**: occupancy lives in one flat `u64`
//! word per lane (free/faulty sentinels or the holding circuit id), and
//! the rarely-populated waiter lists live in a parallel vector, so the
//! control plane's hot lane-scan loops read a dense array instead of
//! chasing per-lane structs. State-change counters are maintained
//! incrementally, making [`LaneTable::census`] O(1) — it is sampled every
//! cycle by instrumentation.
//!
//! Lanes can also be marked **faulty** — the fault-injection hook for the
//! E8 (static) and E14 (dynamic) experiments (the paper notes MB-m "is
//! very resilient to static faults in the network"). Static injection
//! ([`LaneTable::set_faulty`]) refuses to fault a reserved lane and
//! reports the holder; dynamic injection ([`LaneTable::force_faulty`])
//! evicts the holder so the control plane can tear the victim circuit
//! down, and [`LaneTable::repair`] returns a faulty lane to service.

use wavesim_topology::{LinkId, Topology};

use crate::ids::{CircuitId, LaneId, ProbeId};

/// Occupancy state of one wave lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneState {
    /// Available for reservation.
    Free,
    /// Reserved by (or part of) the given circuit.
    Reserved(CircuitId),
    /// Statically faulty: never reservable (E8 fault injection).
    Faulty,
}

/// Packed-word sentinel for [`LaneState::Free`].
const FREE: u64 = u64::MAX;
/// Packed-word sentinel for [`LaneState::Faulty`].
const FAULTY: u64 = u64::MAX - 1;

/// Packs a lane state into its occupancy word.
fn pack(s: LaneState) -> u64 {
    match s {
        LaneState::Free => FREE,
        LaneState::Faulty => FAULTY,
        LaneState::Reserved(c) => {
            debug_assert!(c.0 < FAULTY, "circuit id collides with lane sentinels");
            c.0
        }
    }
}

/// Unpacks a lane occupancy word.
fn unpack(w: u64) -> LaneState {
    match w {
        FREE => LaneState::Free,
        FAULTY => LaneState::Faulty,
        c => LaneState::Reserved(CircuitId(c)),
    }
}

/// All wave lanes of the network, indexed densely by `(link, switch)`.
/// Occupancy is one packed `u64` per lane; waiter lists (probes parked for
/// a CLRP phase-two forced release) are a parallel array.
#[derive(Debug, Clone)]
pub struct LaneTable {
    k: u8,
    /// Packed occupancy per lane: [`FREE`], [`FAULTY`], or the holder id.
    states: Vec<u64>,
    /// Probes parked on each lane.
    waiters: Vec<Vec<ProbeId>>,
    /// Incremental census: lanes currently reserved.
    reserved: usize,
    /// Incremental census: lanes currently faulty.
    faulty: usize,
}

impl LaneTable {
    /// Builds the table for `topo` with `k` wave switches.
    #[must_use]
    pub fn new(topo: &Topology, k: u8) -> Self {
        let n = topo.num_link_slots() * k as usize;
        Self {
            k,
            states: vec![FREE; n],
            waiters: vec![Vec::new(); n],
            reserved: 0,
            faulty: 0,
        }
    }

    /// Number of wave switches.
    #[must_use]
    pub fn k(&self) -> u8 {
        self.k
    }

    fn idx(&self, lane: LaneId) -> usize {
        assert!(
            lane.switch >= 1 && lane.switch <= self.k,
            "switch {} out of range 1..={}",
            lane.switch,
            self.k
        );
        lane.link.0 as usize * self.k as usize + (lane.switch as usize - 1)
    }

    /// Writes lane `i`'s occupancy word, keeping the census counters in
    /// sync.
    fn transition(&mut self, i: usize, to: u64) {
        let from = self.states[i];
        if from == to {
            return;
        }
        match from {
            FREE => {}
            FAULTY => self.faulty -= 1,
            _ => self.reserved -= 1,
        }
        match to {
            FREE => {}
            FAULTY => self.faulty += 1,
            _ => self.reserved += 1,
        }
        self.states[i] = to;
    }

    /// Current state of `lane`.
    #[must_use]
    pub fn state(&self, lane: LaneId) -> LaneState {
        unpack(self.states[self.idx(lane)])
    }

    /// True when `lane` can be reserved right now.
    #[must_use]
    pub fn is_free(&self, lane: LaneId) -> bool {
        self.states[self.idx(lane)] == FREE
    }

    /// Circuit currently holding `lane`, if any.
    #[must_use]
    pub fn holder(&self, lane: LaneId) -> Option<CircuitId> {
        match unpack(self.states[self.idx(lane)]) {
            LaneState::Reserved(c) => Some(c),
            _ => None,
        }
    }

    /// Reserves `lane` for `circuit`.
    ///
    /// # Panics
    /// Panics if the lane is not free — callers must check first; the
    /// hardware performs the check-and-set atomically in the PCS unit.
    pub fn reserve(&mut self, lane: LaneId, circuit: CircuitId) {
        let i = self.idx(lane);
        assert_eq!(self.states[i], FREE, "lane {lane} reserved while not free");
        self.transition(i, pack(LaneState::Reserved(circuit)));
    }

    /// Releases `lane` (backtrack or teardown) and returns the probes that
    /// were parked waiting for it, so the caller can retry them.
    ///
    /// # Panics
    /// Panics if the lane was not reserved by `circuit` (protocol
    /// invariant: only the holder releases).
    pub fn release(&mut self, lane: LaneId, circuit: CircuitId) -> Vec<ProbeId> {
        let i = self.idx(lane);
        assert_eq!(
            unpack(self.states[i]),
            LaneState::Reserved(circuit),
            "lane {lane} released by non-holder {circuit}"
        );
        self.transition(i, FREE);
        std::mem::take(&mut self.waiters[i])
    }

    /// Parks `probe` on `lane` until the holder tears down.
    ///
    /// # Panics
    /// Panics if the lane is free (nothing to wait for).
    pub fn park(&mut self, lane: LaneId, probe: ProbeId) {
        let i = self.idx(lane);
        assert!(
            matches!(unpack(self.states[i]), LaneState::Reserved(_)),
            "parking on a lane that is not reserved"
        );
        if !self.waiters[i].contains(&probe) {
            self.waiters[i].push(probe);
        }
    }

    /// Removes `probe` from `lane`'s waiter list (probe gave up or died).
    pub fn unpark(&mut self, lane: LaneId, probe: ProbeId) {
        let i = self.idx(lane);
        self.waiters[i].retain(|&p| p != probe);
    }

    /// Marks `lane` faulty (static fault model: legal only before the lane
    /// is reserved). Faulting an already-faulty lane is an idempotent
    /// no-op. Returns the holding circuit as the error when the lane is
    /// reserved — the dynamic model must use [`LaneTable::force_faulty`]
    /// (teardown-then-fault) instead.
    pub fn set_faulty(&mut self, lane: LaneId) -> Result<(), CircuitId> {
        let i = self.idx(lane);
        match unpack(self.states[i]) {
            LaneState::Reserved(holder) => Err(holder),
            LaneState::Free | LaneState::Faulty => {
                self.transition(i, FAULTY);
                Ok(())
            }
        }
    }

    /// Marks `lane` faulty regardless of occupancy (dynamic fault model).
    /// Returns the evicted holder (if the lane was reserved) and the
    /// probes that were parked waiting for it, so the caller can tear the
    /// victim circuit down and retry the waiters (which will re-scan, see
    /// the lane `Faulty`, and route around it).
    ///
    /// Force-faulting an **already-faulty** lane is a documented no-op
    /// returning `(None, vec![])`: the lane has no holder to evict, and
    /// its waiters (if any raced in between fault and retry) were already
    /// drained by the fault that got there first. Fault schedules may
    /// legitimately hit the same lane twice (overlapping link- and
    /// lane-granularity events), and a second eviction pass must not
    /// re-tear circuits that were already torn down.
    pub fn force_faulty(&mut self, lane: LaneId) -> (Option<CircuitId>, Vec<ProbeId>) {
        let i = self.idx(lane);
        let holder = match unpack(self.states[i]) {
            LaneState::Reserved(c) => Some(c),
            LaneState::Faulty => return (None, Vec::new()),
            LaneState::Free => None,
        };
        self.transition(i, FAULTY);
        (holder, std::mem::take(&mut self.waiters[i]))
    }

    /// Returns a faulty `lane` to service (dynamic fault model). Returns
    /// `true` when the lane was actually faulty; repairing a free or
    /// reserved lane is a tolerant no-op (a repair event may race a fault
    /// that never happened, e.g. an invalidated schedule entry).
    pub fn repair(&mut self, lane: LaneId) -> bool {
        let i = self.idx(lane);
        if self.states[i] == FAULTY {
            self.transition(i, FREE);
            true
        } else {
            false
        }
    }

    /// Releases `lane` if — and only if — it is still reserved by
    /// `circuit`, returning the probes parked on it. A no-op returning no
    /// waiters otherwise. Teardown and unwind walks use this instead of
    /// [`LaneTable::release`]: a dynamic fault may have force-faulted one
    /// of the path's lanes (evicting the reservation and draining the
    /// waiters) before the walk reaches it.
    pub fn release_if_held(&mut self, lane: LaneId, circuit: CircuitId) -> Vec<ProbeId> {
        let i = self.idx(lane);
        if self.states[i] == pack(LaneState::Reserved(circuit)) {
            self.transition(i, FREE);
            std::mem::take(&mut self.waiters[i])
        } else {
            Vec::new()
        }
    }

    /// Marks every lane of `link` (all switches) faulty — a whole-link
    /// fault. Fails on the first reserved lane (static fault model),
    /// returning its holder; lanes before it stay faulted.
    pub fn set_link_faulty(&mut self, link: LinkId) -> Result<(), CircuitId> {
        for s in 1..=self.k {
            self.set_faulty(LaneId::new(link, s))?;
        }
        Ok(())
    }

    /// Number of lanes in each state: `(free, reserved, faulty)`.
    /// O(1): counters are maintained on every transition.
    #[must_use]
    pub fn census(&self) -> (usize, usize, usize) {
        (
            self.states.len() - self.reserved - self.faulty,
            self.reserved,
            self.faulty,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (Topology, LaneTable) {
        let t = Topology::mesh(&[4, 4]);
        let lt = LaneTable::new(&t, 2);
        (t, lt)
    }

    #[test]
    fn reserve_release_cycle() {
        let (t, mut lt) = table();
        let link = t.links().next().unwrap();
        let lane = LaneId::new(link, 1);
        assert!(lt.is_free(lane));
        lt.reserve(lane, CircuitId(7));
        assert!(!lt.is_free(lane));
        assert_eq!(lt.holder(lane), Some(CircuitId(7)));
        let woken = lt.release(lane, CircuitId(7));
        assert!(woken.is_empty());
        assert!(lt.is_free(lane));
    }

    #[test]
    fn lanes_are_independent_per_switch() {
        let (t, mut lt) = table();
        let link = t.links().next().unwrap();
        lt.reserve(LaneId::new(link, 1), CircuitId(1));
        assert!(lt.is_free(LaneId::new(link, 2)), "S2 lane unaffected");
    }

    #[test]
    fn park_wakes_on_release() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(1));
        lt.park(lane, ProbeId(10));
        lt.park(lane, ProbeId(11));
        lt.park(lane, ProbeId(10)); // duplicate ignored
        let woken = lt.release(lane, CircuitId(1));
        assert_eq!(woken, vec![ProbeId(10), ProbeId(11)]);
    }

    #[test]
    fn unpark_removes_waiter() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(1));
        lt.park(lane, ProbeId(10));
        lt.unpark(lane, ProbeId(10));
        assert!(lt.release(lane, CircuitId(1)).is_empty());
    }

    #[test]
    fn faulty_lane_is_never_free() {
        let (t, mut lt) = table();
        let link = t.links().next().unwrap();
        let lane = LaneId::new(link, 2);
        lt.set_faulty(lane).unwrap();
        assert!(!lt.is_free(lane));
        assert_eq!(lt.state(lane), LaneState::Faulty);
        let (_, _, faulty) = lt.census();
        assert_eq!(faulty, 1);
        // Idempotent.
        lt.set_faulty(lane).unwrap();
        assert_eq!(lt.census().2, 1);
    }

    #[test]
    fn whole_link_fault_covers_all_switches() {
        let (t, mut lt) = table();
        let link = t.links().next().unwrap();
        lt.set_link_faulty(link).unwrap();
        assert!(!lt.is_free(LaneId::new(link, 1)));
        assert!(!lt.is_free(LaneId::new(link, 2)));
    }

    #[test]
    fn static_fault_on_reserved_lane_names_holder() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(7));
        assert_eq!(lt.set_faulty(lane), Err(CircuitId(7)));
        // The reservation survives the rejected fault.
        assert_eq!(lt.holder(lane), Some(CircuitId(7)));
        assert_eq!(lt.set_link_faulty(lane.link), Err(CircuitId(7)));
    }

    #[test]
    fn force_fault_evicts_holder_and_drains_waiters() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(3));
        lt.park(lane, ProbeId(10));
        let (holder, waiters) = lt.force_faulty(lane);
        assert_eq!(holder, Some(CircuitId(3)));
        assert_eq!(waiters, vec![ProbeId(10)]);
        assert_eq!(lt.state(lane), LaneState::Faulty);
        // A later teardown walk skips the already-faulted lane.
        assert!(lt.release_if_held(lane, CircuitId(3)).is_empty());
        assert_eq!(lt.state(lane), LaneState::Faulty);
    }

    #[test]
    fn force_fault_on_free_lane_has_no_victim() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 2);
        let (holder, waiters) = lt.force_faulty(lane);
        assert_eq!(holder, None);
        assert!(waiters.is_empty());
        assert_eq!(lt.state(lane), LaneState::Faulty);
    }

    #[test]
    fn force_fault_on_faulty_lane_is_a_noop() {
        // Regression: a double fault (overlapping schedule entries) must
        // not report a phantom victim or disturb the census.
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(3));
        let (holder, _) = lt.force_faulty(lane);
        assert_eq!(holder, Some(CircuitId(3)));
        let census = lt.census();
        let (holder2, waiters2) = lt.force_faulty(lane);
        assert_eq!(holder2, None, "second fault must not re-evict");
        assert!(waiters2.is_empty());
        assert_eq!(lt.state(lane), LaneState::Faulty);
        assert_eq!(lt.census(), census, "no-op must not disturb the census");
        // And the lane still repairs normally afterwards.
        assert!(lt.repair(lane));
        assert!(lt.is_free(lane));
    }

    #[test]
    fn repair_restores_only_faulty_lanes() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.set_faulty(lane).unwrap();
        assert!(lt.repair(lane));
        assert!(lt.is_free(lane));
        // Free and reserved lanes are untouched by repair.
        assert!(!lt.repair(lane));
        lt.reserve(lane, CircuitId(1));
        assert!(!lt.repair(lane));
        assert_eq!(lt.holder(lane), Some(CircuitId(1)));
    }

    #[test]
    fn release_if_held_only_releases_the_holder() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(1));
        lt.park(lane, ProbeId(9));
        assert!(lt.release_if_held(lane, CircuitId(2)).is_empty());
        assert_eq!(lt.holder(lane), Some(CircuitId(1)));
        let woken = lt.release_if_held(lane, CircuitId(1));
        assert_eq!(woken, vec![ProbeId(9)]);
        assert!(lt.is_free(lane));
    }

    #[test]
    #[should_panic(expected = "not free")]
    fn double_reserve_panics() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(1));
        lt.reserve(lane, CircuitId(2));
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let (t, mut lt) = table();
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(1));
        let _ = lt.release(lane, CircuitId(2));
    }

    #[test]
    fn census_counts() {
        let (t, mut lt) = table();
        let total = t.num_link_slots() * 2;
        assert_eq!(lt.census(), (total, 0, 0));
        let lane = LaneId::new(t.links().next().unwrap(), 1);
        lt.reserve(lane, CircuitId(1));
        assert_eq!(lt.census(), (total - 1, 1, 0));
        // The incremental counters track every kind of transition.
        let lane2 = LaneId::new(t.links().next().unwrap(), 2);
        lt.set_faulty(lane2).unwrap();
        assert_eq!(lt.census(), (total - 2, 1, 1));
        let _ = lt.release(lane, CircuitId(1));
        assert!(lt.repair(lane2));
        assert_eq!(lt.census(), (total, 0, 0));
    }
}
