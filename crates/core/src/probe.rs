//! Routing probes and the MB-m search state.
//!
//! [`ProbeFlit`] reproduces the probe format of the paper's Fig. 4 field
//! for field (Header, Backtrack, Misroute, Force, per-dimension offsets);
//! [`ProbeState`] is the bookkeeping a probe accumulates while walking the
//! control network — the path of reserved lanes (mirrored in the PCS
//! direct/reverse mapping registers) and the per-node History Store
//! entries that guarantee livelock freedom ("the probe is kept small" by
//! storing search history in the routers, §2; the simulator centralises
//! that distributed state per probe, which is observationally equivalent).

use wavesim_topology::{NodeId, Topology};

use crate::ids::{CircuitId, LaneId, ProbeId};

/// The wire format of a routing probe — Fig. 4 of the paper.
///
/// | Header | Backtrack | Misroute | Force | X1-offset … Xn-offset |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeFlit {
    /// Identifies the flit as a probe (always set for probes).
    pub header: bool,
    /// Whether the probe is progressing (`false`) or backtracking (`true`).
    pub backtrack: bool,
    /// Number of misrouting operations performed so far.
    pub misroute: u8,
    /// Forces channel release of established circuits (CLRP phase two).
    pub force: bool,
    /// Signed offsets from the destination node, one per dimension,
    /// updated at every hop.
    pub offsets: Vec<i32>,
}

impl ProbeFlit {
    /// Builds the probe flit a source emits toward `dest`.
    #[must_use]
    pub fn new(topo: &Topology, src: NodeId, dest: NodeId, force: bool) -> Self {
        Self {
            header: true,
            backtrack: false,
            misroute: 0,
            force,
            offsets: topo.offsets(src, dest),
        }
    }

    /// Recomputes the offset fields for the probe sitting at `node`.
    pub fn update_offsets(&mut self, topo: &Topology, node: NodeId, dest: NodeId) {
        self.offsets = topo.offsets(node, dest);
    }

    /// True when every offset is zero — the probe has reached its
    /// destination.
    #[must_use]
    pub fn at_destination(&self) -> bool {
        self.offsets.iter().all(|&o| o == 0)
    }
}

/// Why a probe terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The full path was reserved and the destination reached.
    Reached,
    /// The probe backtracked all the way to the source with nothing left
    /// to search on its switch.
    Exhausted,
}

/// Live state of a probe walking the control network.
#[derive(Debug, Clone)]
pub struct ProbeState {
    /// This probe's id.
    pub id: ProbeId,
    /// The circuit attempt this probe works for.
    pub circuit: CircuitId,
    /// Source node (where backtracking ends).
    pub src: NodeId,
    /// Destination node.
    pub dest: NodeId,
    /// Wave switch being searched (1-based).
    pub switch: u8,
    /// The Fig. 4 flit contents.
    pub flit: ProbeFlit,
    /// Node the probe currently occupies.
    pub at: NodeId,
    /// Lanes reserved so far, in path order (source first). The PCS
    /// direct/reverse channel mappings hold the same information
    /// distributed across the routers.
    pub path: Vec<LaneId>,
    /// History Store: per node, bitmask of output ports already searched
    /// by this probe. Dense (indexed by node id): the probe engine reads
    /// and writes it on every step, and a torus has few enough nodes that
    /// one `Vec<u32>` beats hashing even though most entries stay zero.
    pub history: Vec<u32>,
    /// Lane this probe is parked on, waiting for a forced teardown
    /// (CLRP phase two).
    pub parked_on: Option<LaneId>,
    /// Total hops walked (forward + backward), for livelock accounting.
    pub hops: u64,
    /// Total backtrack operations, for statistics.
    pub backtracks: u64,
}

impl ProbeState {
    /// Creates a fresh probe at its source.
    #[must_use]
    pub fn new(
        id: ProbeId,
        circuit: CircuitId,
        topo: &Topology,
        src: NodeId,
        dest: NodeId,
        switch: u8,
        force: bool,
    ) -> Self {
        assert!(switch >= 1, "probes search wave switches S1..Sk");
        Self {
            id,
            circuit,
            src,
            dest,
            switch,
            flit: ProbeFlit::new(topo, src, dest, force),
            at: src,
            path: Vec::new(),
            history: vec![0; topo.num_nodes() as usize],
            parked_on: None,
            hops: 0,
            backtracks: 0,
        }
    }

    /// Marks output port `port_index` of `node` as searched.
    pub fn mark_searched(&mut self, node: NodeId, port_index: usize) {
        self.history[node.0 as usize] |= 1 << port_index;
    }

    /// True when output port `port_index` of `node` was already searched.
    #[must_use]
    pub fn searched(&self, node: NodeId, port_index: usize) -> bool {
        self.history[node.0 as usize] & (1 << port_index) != 0
    }

    /// An upper bound on the steps this probe may take, used by the
    /// livelock monitor: each (node, port) pair is searched at most once
    /// per direction, so hops ≤ 2 · links · (something small). We use
    /// `2 · (ports searched bound) + 2` with ports ≤ 2·ndims per node.
    #[must_use]
    pub fn step_bound(topo: &Topology) -> u64 {
        // Every forward step burns one History Store bit somewhere; every
        // backtrack unwinds one forward step. +2 covers source/destination
        // processing slack.
        2 * (topo.num_nodes() as u64) * (2 * topo.ndims() as u64) + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::{Coords, LinkId, Topology};

    fn t() -> Topology {
        Topology::mesh(&[4, 4])
    }

    #[test]
    fn probe_flit_matches_fig4() {
        let topo = t();
        let src = topo.node(Coords::new(&[0, 0]));
        let dest = topo.node(Coords::new(&[3, 1]));
        let f = ProbeFlit::new(&topo, src, dest, false);
        assert!(f.header);
        assert!(!f.backtrack);
        assert_eq!(f.misroute, 0);
        assert!(!f.force);
        assert_eq!(f.offsets, vec![3, 1]);
        assert!(!f.at_destination());
    }

    #[test]
    fn offsets_reach_zero_at_destination() {
        let topo = t();
        let dest = topo.node(Coords::new(&[2, 2]));
        let mut f = ProbeFlit::new(&topo, topo.node(Coords::new(&[0, 0])), dest, true);
        f.update_offsets(&topo, dest, dest);
        assert!(f.at_destination());
        assert!(f.force, "force bit survives offset updates");
    }

    #[test]
    fn history_store_marks_ports() {
        let topo = t();
        let mut p = ProbeState::new(
            ProbeId(1),
            CircuitId(1),
            &topo,
            NodeId(0),
            NodeId(5),
            1,
            false,
        );
        let n = NodeId(3);
        assert!(!p.searched(n, 0));
        p.mark_searched(n, 0);
        p.mark_searched(n, 3);
        assert!(p.searched(n, 0));
        assert!(!p.searched(n, 1));
        assert!(p.searched(n, 3));
        // Other nodes unaffected.
        assert!(!p.searched(NodeId(4), 0));
    }

    #[test]
    fn step_bound_is_finite_and_scales() {
        let small = ProbeState::step_bound(&Topology::mesh(&[4, 4]));
        let big = ProbeState::step_bound(&Topology::mesh(&[8, 8]));
        assert!(small > 0);
        assert!(big > small);
    }

    #[test]
    fn fresh_probe_holds_nothing() {
        let topo = t();
        let p = ProbeState::new(
            ProbeId(9),
            CircuitId(2),
            &topo,
            NodeId(1),
            NodeId(9),
            2,
            true,
        );
        assert!(p.path.is_empty());
        assert!(p.parked_on.is_none());
        assert_eq!(p.at, NodeId(1));
        assert!(p.flit.force);
        assert_eq!(p.switch, 2);
        let _ = LaneId::new(LinkId(0), 1); // silence unused import in cfg(test)
    }
}
