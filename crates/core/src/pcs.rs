//! The PCS routing control unit's status registers — Fig. 3 of the paper.
//!
//! Every router keeps, for its control channels:
//!
//! * **Channel Status** — free/busy(/faulty) per output control channel;
//!   held by [`crate::lanes::LaneTable`], since the paper reserves the
//!   control channel and the wave-switch channel "at the same time";
//! * **Direct Channel Mappings** and **Reverse Channel Mappings** — which
//!   input lane maps to which output lane for each circuit crossing the
//!   router (needed to forward acks backwards and teardowns forwards);
//! * **History Store** — per-probe set of already-searched output links;
//!   kept inside [`crate::probe::ProbeState`] (observationally equivalent
//!   centralisation, documented there);
//! * **Ack Returned** — one bit per output control channel: the path-setup
//!   acknowledgment has passed through here, so the circuit fragment is
//!   established (force-mode victim selection may only pick such
//!   circuits).
//!
//! This module holds the mapping registers ([`PcsUnit`]), one per node.

use crate::ids::{CircuitId, LaneId};

/// The direct/reverse channel mapping of one circuit at one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitHop {
    /// Wave switch the circuit uses (same at every hop, §2).
    pub switch: u8,
    /// Lane the circuit arrives on (`None` at the circuit's source).
    pub in_lane: Option<LaneId>,
    /// Lane the circuit leaves on (`None` at the destination).
    pub out_lane: Option<LaneId>,
    /// Ack Returned bit for the output control channel.
    pub ack_returned: bool,
}

/// The PCS routing control unit registers of one router.
///
/// A router hosts at most a handful of circuits at once (bounded by
/// `k × ports`), so the mappings live in a linear-scanned vector: the
/// whole register file fits in one or two cache lines, which beats a
/// `HashMap`'s hash-and-probe at these sizes on every control-flit step.
#[derive(Debug, Clone, Default)]
pub struct PcsUnit {
    hops: Vec<(CircuitId, CircuitHop)>,
}

impl PcsUnit {
    /// Fresh unit with no circuits.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the probe's reservation at this router: arriving over
    /// `in_lane` (None at the source), leaving over `out_lane` (None when
    /// the probe just reached the destination).
    pub fn record(
        &mut self,
        circuit: CircuitId,
        switch: u8,
        in_lane: Option<LaneId>,
        out_lane: Option<LaneId>,
    ) {
        let hop = CircuitHop {
            switch,
            in_lane,
            out_lane,
            ack_returned: false,
        };
        match self.hops.iter_mut().find(|(c, _)| *c == circuit) {
            Some((_, h)) => *h = hop,
            None => self.hops.push((circuit, hop)),
        }
    }

    /// Replaces the outgoing lane after a backtrack re-route (the probe
    /// came back and left through a different port).
    ///
    /// # Panics
    /// Panics if the circuit has no mapping here.
    pub fn set_out_lane(&mut self, circuit: CircuitId, out_lane: Option<LaneId>) {
        self.hops
            .iter_mut()
            .find(|(c, _)| *c == circuit)
            .expect("set_out_lane on unmapped circuit")
            .1
            .out_lane = out_lane;
    }

    /// Marks the acknowledgment as having passed through this router.
    ///
    /// # Panics
    /// Panics if the circuit has no mapping here.
    pub fn mark_ack(&mut self, circuit: CircuitId) {
        self.hops
            .iter_mut()
            .find(|(c, _)| *c == circuit)
            .expect("ack for unmapped circuit")
            .1
            .ack_returned = true;
    }

    /// The mapping for `circuit`, if it crosses (or starts/ends at) this
    /// router.
    #[must_use]
    pub fn hop(&self, circuit: CircuitId) -> Option<&CircuitHop> {
        self.hops
            .iter()
            .find(|(c, _)| *c == circuit)
            .map(|(_, h)| h)
    }

    /// Removes the mapping (teardown passed, or probe backtracked away).
    pub fn clear(&mut self, circuit: CircuitId) -> Option<CircuitHop> {
        let i = self.hops.iter().position(|(c, _)| *c == circuit)?;
        Some(self.hops.swap_remove(i).1)
    }

    /// Number of circuits with state at this router.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True when no circuit crosses this router.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Iterates over `(circuit, hop)` pairs (unordered — `clear` compacts
    /// the register file by swapping the last mapping into the hole).
    pub fn iter(&self) -> impl Iterator<Item = (&CircuitId, &CircuitHop)> {
        self.hops.iter().map(|(c, h)| (c, h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_topology::LinkId;

    fn lane(l: u32) -> LaneId {
        LaneId::new(LinkId(l), 1)
    }

    #[test]
    fn record_and_lookup() {
        let mut u = PcsUnit::new();
        u.record(CircuitId(1), 1, None, Some(lane(4)));
        let h = u.hop(CircuitId(1)).unwrap();
        assert_eq!(h.in_lane, None, "source hop has no input lane");
        assert_eq!(h.out_lane, Some(lane(4)));
        assert!(!h.ack_returned);
        assert_eq!(u.len(), 1);
    }

    #[test]
    fn ack_marks_fragment_established() {
        let mut u = PcsUnit::new();
        u.record(CircuitId(2), 1, Some(lane(1)), Some(lane(2)));
        u.mark_ack(CircuitId(2));
        assert!(u.hop(CircuitId(2)).unwrap().ack_returned);
    }

    #[test]
    fn clear_removes_mapping() {
        let mut u = PcsUnit::new();
        u.record(CircuitId(3), 2, Some(lane(1)), None);
        let h = u.clear(CircuitId(3)).unwrap();
        assert_eq!(h.switch, 2);
        assert!(u.is_empty());
        assert!(u.clear(CircuitId(3)).is_none());
    }

    #[test]
    fn out_lane_can_be_rerouted_after_backtrack() {
        let mut u = PcsUnit::new();
        u.record(CircuitId(4), 1, Some(lane(1)), Some(lane(2)));
        u.set_out_lane(CircuitId(4), Some(lane(3)));
        assert_eq!(u.hop(CircuitId(4)).unwrap().out_lane, Some(lane(3)));
        u.set_out_lane(CircuitId(4), None);
        assert_eq!(u.hop(CircuitId(4)).unwrap().out_lane, None);
    }

    #[test]
    #[should_panic(expected = "unmapped circuit")]
    fn ack_for_unknown_circuit_panics() {
        let mut u = PcsUnit::new();
        u.mark_ack(CircuitId(9));
    }
}
