//! Identifiers for circuits, probes, and wave lanes.

use wavesim_topology::LinkId;

use crate::arena::ArenaId;

/// Identifier of one circuit-establishment attempt and, if it succeeds, of
/// the established physical circuit. Unique for the lifetime of a
/// simulation: the raw value packs an arena slot and a generation
/// ([`ArenaId`]), so recycled slots mint distinct ids and a stale id can
/// never alias a later circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CircuitId(pub u64);

impl ArenaId for CircuitId {
    fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
    fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for CircuitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a routing probe. One probe exists per establishment
/// attempt per switch tried, so a circuit attempt may own several probe
/// ids over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProbeId(pub u64);

impl ArenaId for ProbeId {
    fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
    fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for ProbeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A wave lane: the slice of one unidirectional physical link that belongs
/// to wave switch `S_{switch}` (`switch` is 1-based, `1..=k`), paired with
/// its dedicated control channel. A circuit through switch `S_i` occupies
/// the `S_i` lane of every link on its path — the paper's rule that a
/// circuit uses *the same switch at every intermediate node*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LaneId {
    /// The physical link.
    pub link: LinkId,
    /// Wave switch index, 1-based (`1..=k`).
    pub switch: u8,
}

impl LaneId {
    /// Convenience constructor.
    ///
    /// # Panics
    /// Panics if `switch == 0` (switch 0 is the wormhole switch, which has
    /// no lanes).
    #[must_use]
    pub fn new(link: LinkId, switch: u8) -> Self {
        assert!(switch >= 1, "lanes belong to wave switches S1..Sk");
        Self { link, switch }
    }
}

impl std::fmt::Display for LaneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}@S{}", self.link.0, self.switch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(CircuitId(3).to_string(), "c3");
        assert_eq!(ProbeId(9).to_string(), "p9");
        assert_eq!(LaneId::new(LinkId(7), 2).to_string(), "l7@S2");
    }

    #[test]
    #[should_panic(expected = "S1..Sk")]
    fn lane_on_switch_zero_rejected() {
        let _ = LaneId::new(LinkId(0), 0);
    }
}
