//! The circuitplane: per-node Circuit Caches, the CLRP / CARP protocol
//! engines, and windowed bulk transfers over established circuits.
//!
//! This plane owns the Fig. 5 register files and every protocol policy
//! decision — cache lookup, eviction, phase transitions, wormhole
//! fallback — but holds no lanes, probes, or circuit paths. It asks the
//! controlplane to do physical work by emitting [`PlaneEvent`]s
//! ([`PlaneEvent::LaunchProbe`], [`PlaneEvent::ReleaseCircuit`], …) and
//! learns outcomes the same way ([`PlaneEvent::CircuitEstablished`],
//! [`PlaneEvent::ProbeExhausted`], [`PlaneEvent::VictimRelease`]).
//!
//! In-flight circuit transfers are timed on an external
//! [`EventQueue<TransferEvent>`] (owned by the composition root); every
//! scheduled delay is at least the transfer plan's delivery delay, which
//! is always positive.

use wavesim_network::message::DeliveryMode;
use wavesim_network::{Delivery, Message};
use wavesim_sim::{BitSet, Cycle, EventQueue, Model};
use wavesim_topology::{NodeId, Topology};
use wavesim_trace::{TraceBuf, TraceEvent};

use crate::arena::IdAlloc;
use crate::cache::{CacheEntry, CircuitCache, EntryState};
use crate::circuit::plan_transfer;
use crate::config::{ProtocolKind, WaveConfig};
use crate::events::{EventBus, PlaneEvent};
use crate::ids::{CircuitId, LaneId};
use crate::replacement;
use crate::stats::WaveStats;

/// Windowed-transfer events over established circuits.
#[derive(Debug, Clone)]
pub enum TransferEvent {
    /// Last flit of a circuit transfer reaches the destination.
    Delivered(CircuitId, Message),
    /// Last-fragment acknowledgment reaches the source (In-use clears).
    Acked {
        /// Circuit whose transfer completed.
        circuit: CircuitId,
        /// Source node (owner of the cache entry).
        src: NodeId,
        /// Destination the entry is keyed by.
        dest: NodeId,
    },
    /// Post-fault re-establishment backoff expired: relaunch the probe
    /// search for the cache entry that `circuit` (the *broken* id) last
    /// occupied. Stale if the entry was released or replaced meanwhile.
    RetryEstablish {
        /// The broken circuit the entry is still keyed under.
        circuit: CircuitId,
        /// Source node (owner of the cache entry).
        src: NodeId,
        /// Destination the entry is keyed by.
        dest: NodeId,
    },
}

/// The circuit-management plane of the wave router.
#[derive(Debug)]
pub struct CircuitPlane {
    topo: Topology,
    cfg: WaveConfig,
    caches: Vec<CircuitCache>,
    circuit_ids: IdAlloc<CircuitId>,
    fifo_seq: u64,
    stats: WaveStats,
    outbox: Vec<PlaneEvent>,
    /// Intra-plane trace staging; the composition root arms and absorbs it.
    pub(crate) trace: TraceBuf,
    /// Nodes with a cache entry that is streaming or queueing — kept
    /// incrementally (via [`CircuitPlane::recount`] after every mutating
    /// entry point) so `busy()` and the per-cycle `active_sources()` gauge
    /// are O(1) instead of an all-nodes × all-entries sweep.
    active: BitSet,
    /// Set bits in `active`.
    active_count: usize,
}

impl CircuitPlane {
    /// Builds the plane for `topo` under `cfg`.
    #[must_use]
    pub fn new(topo: Topology, cfg: WaveConfig) -> Self {
        let n = topo.num_nodes() as usize;
        Self {
            caches: (0..n)
                .map(|_| CircuitCache::new(cfg.cache_capacity.max(1)))
                .collect(),
            circuit_ids: IdAlloc::new(),
            fifo_seq: 0,
            stats: WaveStats::default(),
            outbox: Vec::new(),
            trace: TraceBuf::new(),
            active: BitSet::new(n),
            active_count: 0,
            topo,
            cfg,
        }
    }

    /// Re-derives `node`'s membership in the active-source set from its
    /// cache. O(cache capacity); called after every entry point that can
    /// change an entry's `in_use` flag or queue.
    fn recount(&mut self, node: NodeId) {
        let n = node.0 as usize;
        let now_active = self.caches[n]
            .iter()
            .any(|e| e.in_use || !e.queue.is_empty());
        if now_active != self.active.get(n) {
            if now_active {
                self.active.set(n);
                self.active_count += 1;
            } else {
                self.active.clear(n);
                self.active_count -= 1;
            }
        }
    }

    /// Traces a cache eviction (victim lookup only happens while armed).
    fn trace_evict(&mut self, now: Cycle, src: NodeId, victim: NodeId) {
        if self.trace.armed() {
            let circuit = self.caches[src.0 as usize]
                .get(victim)
                .map_or(0, |e| e.circuit.0);
            self.trace.emit(
                now,
                TraceEvent::CacheEvict {
                    node: src.0,
                    victim_dest: victim.0,
                    circuit,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// The Circuit Cache of `node`.
    #[must_use]
    pub fn cache(&self, node: NodeId) -> &CircuitCache {
        &self.caches[node.0 as usize]
    }

    /// All per-node Circuit Caches, indexed by node id.
    #[must_use]
    pub fn caches(&self) -> &[CircuitCache] {
        &self.caches
    }

    /// This plane's statistics contribution.
    #[must_use]
    pub fn stats(&self) -> &WaveStats {
        &self.stats
    }

    /// True while any entry is carrying or queueing traffic. O(1): reads
    /// the incrementally-maintained active-source counter.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.active_count > 0
    }

    /// Number of nodes with a cache entry that is streaming or queueing —
    /// the circuit plane's contribution to the per-cycle active-router
    /// gauge. O(1).
    #[must_use]
    pub fn active_sources(&self) -> u64 {
        self.active_count as u64
    }

    /// Moves staged outbound events into `bus`.
    pub fn drain_outbox_into(&mut self, bus: &mut EventBus) {
        bus.absorb(&mut self.outbox);
    }

    // ------------------------------------------------------------------
    // Message submission
    // ------------------------------------------------------------------

    /// Submits a message; the configured protocol decides its transport.
    pub fn send(&mut self, now: Cycle, msg: Message, q: &mut EventQueue<TransferEvent>) {
        match self.cfg.protocol {
            ProtocolKind::WormholeOnly => self.outbox.push(PlaneEvent::InjectWormhole(msg)),
            ProtocolKind::Clrp => self.clrp_send(now, msg, q),
            ProtocolKind::Carp => self.carp_send(now, msg, q),
        }
        self.recount(msg.src);
    }

    fn send_wormhole_fallback(&mut self, msg: Message) {
        self.stats.wormhole_fallbacks += 1;
        self.outbox.push(PlaneEvent::InjectWormhole(msg));
    }

    fn clrp_send(&mut self, now: Cycle, msg: Message, q: &mut EventQueue<TransferEvent>) {
        let src = msg.src.0 as usize;
        if let Some(entry) = self.caches[src].get_mut(msg.dest) {
            match entry.state {
                EntryState::Ready => {
                    self.stats.cache_hits += 1;
                    let circuit = entry.circuit.0;
                    replacement::on_use(entry, self.cfg.replacement, now);
                    entry.queue.push_back(msg);
                    self.trace.emit(
                        now,
                        TraceEvent::CacheHit {
                            node: msg.src.0,
                            dest: msg.dest.0,
                            circuit,
                        },
                    );
                    self.pump_circuit(now, q, msg.src, msg.dest);
                }
                EntryState::Establishing | EntryState::RetryWait => {
                    entry.queue.push_back(msg);
                }
                EntryState::Releasing | EntryState::Failed => {
                    self.send_wormhole_fallback(msg);
                }
            }
            return;
        }
        // Miss: establish a circuit, evicting if the register file is full.
        self.stats.cache_misses += 1;
        self.trace.emit(
            now,
            TraceEvent::CacheMiss {
                node: msg.src.0,
                dest: msg.dest.0,
            },
        );
        if self.caches[src].is_full() {
            match self.caches[src].pick_victim(self.cfg.replacement, self.cfg.seed) {
                Some(victim) => {
                    self.stats.cache_evictions += 1;
                    self.trace_evict(now, msg.src, victim);
                    self.release_entry_now(msg.src, victim);
                }
                None => {
                    // Every cached circuit is busy: this message cannot
                    // get a circuit; use wormhole switching.
                    self.send_wormhole_fallback(msg);
                    return;
                }
            }
        }
        let force = self.cfg.clrp.skip_phase1;
        let dest = msg.dest;
        self.start_establish(now, msg.src, dest, force)
            .queue
            .push_back(msg);
    }

    fn carp_send(&mut self, now: Cycle, msg: Message, q: &mut EventQueue<TransferEvent>) {
        let src = msg.src.0 as usize;
        if let Some(entry) = self.caches[src].get_mut(msg.dest) {
            match entry.state {
                EntryState::Ready => {
                    self.stats.cache_hits += 1;
                    let circuit = entry.circuit.0;
                    replacement::on_use(entry, self.cfg.replacement, now);
                    entry.queue.push_back(msg);
                    self.trace.emit(
                        now,
                        TraceEvent::CacheHit {
                            node: msg.src.0,
                            dest: msg.dest.0,
                            circuit,
                        },
                    );
                    self.pump_circuit(now, q, msg.src, msg.dest);
                    return;
                }
                EntryState::Establishing => {
                    entry.queue.push_back(msg);
                    return;
                }
                // RetryWait is CLRP-only; a broken CARP circuit degrades
                // to Failed, but stay total over the state space.
                EntryState::Releasing | EntryState::Failed | EntryState::RetryWait => {}
            }
        }
        // No usable circuit: CARP sends such messages by wormhole (§3.2).
        self.outbox.push(PlaneEvent::InjectWormhole(msg));
    }

    /// CARP: explicitly requests a circuit to `dest` from `src` ("when a
    /// physical circuit is requested, a switch S_i is selected and a probe
    /// is sent to establish it").
    pub fn carp_establish(&mut self, now: Cycle, src: NodeId, dest: NodeId) {
        assert_eq!(
            self.cfg.protocol,
            ProtocolKind::Carp,
            "carp_establish requires the CARP protocol"
        );
        assert_ne!(src, dest, "circuits to self are meaningless");
        let s = src.0 as usize;
        if self.caches[s].get(dest).is_some() {
            return; // already cached (any state): idempotent
        }
        if self.caches[s].is_full() {
            match self.caches[s].pick_victim(self.cfg.replacement, self.cfg.seed) {
                Some(victim) => {
                    self.stats.cache_evictions += 1;
                    self.trace_evict(now, src, victim);
                    self.release_entry_now(src, victim);
                }
                None => return, // nothing evictable: establishment impossible
            }
        }
        self.stats.cache_misses += 1;
        self.trace.emit(
            now,
            TraceEvent::CacheMiss {
                node: src.0,
                dest: dest.0,
            },
        );
        let _ = self.start_establish(now, src, dest, false);
        self.recount(src);
    }

    /// CARP: explicitly tears down the circuit from `src` to `dest` once
    /// queued traffic drains ("when the circuit is no longer required, it
    /// is explicitly torn down").
    pub fn carp_teardown(&mut self, src: NodeId, dest: NodeId) {
        assert_eq!(
            self.cfg.protocol,
            ProtocolKind::Carp,
            "carp_teardown requires the CARP protocol"
        );
        let s = src.0 as usize;
        let Some(entry) = self.caches[s].get_mut(dest) else {
            return; // nothing to tear down: idempotent
        };
        match entry.state {
            EntryState::Failed => {
                self.caches[s].remove(dest);
            }
            EntryState::Releasing => {}
            EntryState::Ready | EntryState::Establishing | EntryState::RetryWait => {
                if entry.evictable() {
                    self.release_entry_now(src, dest);
                } else {
                    entry.release_pending = true;
                }
            }
        }
        self.recount(src);
    }

    // ------------------------------------------------------------------
    // Establishment
    // ------------------------------------------------------------------

    /// Paper §3.1: "in a 2D-mesh, node (x, y) can first try switch
    /// 1 + (x+y) mod k" — generalised to any dimension count.
    fn initial_switch(&self, src: NodeId) -> u8 {
        if self.cfg.stagger_initial_switch {
            1 + (self.topo.coords(src).coord_sum() % u64::from(self.cfg.k)) as u8
        } else {
            1
        }
    }

    fn start_establish(
        &mut self,
        now: Cycle,
        src: NodeId,
        dest: NodeId,
        force: bool,
    ) -> &mut CacheEntry {
        let cid = self.circuit_ids.alloc();
        let switch = self.initial_switch(src);
        let mut entry = CacheEntry::new(dest, cid, switch, switch);
        entry.force_phase = force;
        // End-point buffer sizing (§2): CLRP allocates blind and may
        // re-allocate; CARP knows the message set and sizes it exactly.
        entry.alloc_flits = match self.cfg.protocol {
            ProtocolKind::Clrp => Some(self.cfg.initial_buffer_flits),
            _ => None,
        };
        self.fifo_seq += 1;
        replacement::on_create(&mut entry, self.cfg.replacement, now, self.fifo_seq);
        self.caches[src.0 as usize].insert(entry);
        self.outbox.push(PlaneEvent::LaunchProbe {
            circuit: cid,
            src,
            dest,
            switch,
            force,
        });
        self.caches[src.0 as usize]
            .get_mut(dest)
            .expect("entry just inserted")
    }

    // ------------------------------------------------------------------
    // Inbound plane events (controlplane outcomes)
    // ------------------------------------------------------------------

    /// [`PlaneEvent::ProbeExhausted`]: the protocol decides whether to try
    /// the next switch, flip to the Force phase, or fall back to wormhole.
    pub fn on_probe_exhausted(
        &mut self,
        circuit: CircuitId,
        src: NodeId,
        dest: NodeId,
        switch: u8,
        force: bool,
    ) {
        let k = self.cfg.k;
        let Some(entry) = self.caches[src.0 as usize].find_by_circuit_mut(circuit) else {
            return; // entry released while the probe was out
        };
        if entry.state == EntryState::RetryWait {
            return; // a dynamic fault already broke this attempt; the
                    // scheduled RetryEstablish owns the entry now
        }
        let initial = entry.initial_switch;
        let next_switch = (switch % k) + 1;
        let relaunch = |entry: &mut CacheEntry, outbox: &mut Vec<PlaneEvent>, s: u8, f: bool| {
            entry.switch = s;
            entry.force_phase = f;
            outbox.push(PlaneEvent::LaunchProbe {
                circuit,
                src,
                dest,
                switch: s,
                force: f,
            });
        };

        match self.cfg.protocol {
            ProtocolKind::Clrp => {
                if !force {
                    if next_switch != initial {
                        // Phase one continues on the next switch.
                        relaunch(entry, &mut self.outbox, next_switch, false);
                    } else if self.cfg.clrp.enable_force {
                        // Phase two: Force bit set, back to Initial Switch.
                        relaunch(entry, &mut self.outbox, initial, true);
                    } else {
                        self.fail_establishment(src, dest, circuit);
                    }
                } else if !self.cfg.clrp.single_switch_force && next_switch != initial {
                    relaunch(entry, &mut self.outbox, next_switch, true);
                } else {
                    // Phase three: wormhole switching.
                    self.fail_establishment(src, dest, circuit);
                }
            }
            ProtocolKind::Carp => {
                if next_switch != initial {
                    relaunch(entry, &mut self.outbox, next_switch, false);
                } else {
                    self.fail_establishment(src, dest, circuit);
                }
            }
            ProtocolKind::WormholeOnly => unreachable!("no probes in wormhole-only mode"),
        }
        self.recount(src);
    }

    fn fail_establishment(&mut self, src: NodeId, dest: NodeId, circuit: CircuitId) {
        self.stats.setups_failed += 1;
        self.outbox.push(PlaneEvent::AbandonCircuit { circuit });
        let s = src.0 as usize;
        let entry = self.caches[s]
            .get_mut(dest)
            .expect("failed circuit has a cache entry");
        let queued: Vec<Message> = entry.queue.drain(..).collect();
        match self.cfg.protocol {
            ProtocolKind::Carp if !entry.release_pending => {
                // §3.2: "messages requesting that circuit will have to use
                // wormhole switching" — keep a Failed marker.
                entry.state = EntryState::Failed;
            }
            _ => {
                // CLRP always forgets failed attempts; a CARP entry with a
                // teardown already pending is dropped outright.
                self.caches[s].remove(dest);
            }
        }
        for m in queued {
            self.send_wormhole_fallback(m);
        }
    }

    /// [`PlaneEvent::CircuitEstablished`]: the ack reached the source; the
    /// Fig. 5 registers update and queued traffic starts flowing.
    #[expect(clippy::too_many_arguments, reason = "mirrors the event's fields")]
    pub fn on_established(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<TransferEvent>,
        circuit: CircuitId,
        src: NodeId,
        dest: NodeId,
        hops: u32,
        first_lane: LaneId,
    ) {
        self.stats.setups_ok += 1;
        let entry = self.caches[src.0 as usize]
            .get_mut(dest)
            .expect("acked circuit has a cache entry");
        debug_assert_eq!(entry.circuit, circuit);
        entry.state = EntryState::Ready;
        entry.ack_returned = true;
        entry.established_at = Some(now);
        entry.channel = Some(first_lane);
        entry.path_hops = hops;
        if entry.release_pending && entry.queue.is_empty() && !entry.in_use {
            // A CARP teardown (or forced release) raced the ack.
            self.release_entry_now(src, dest);
        } else {
            self.pump_circuit(now, q, src, dest);
        }
        self.recount(src);
    }

    /// [`PlaneEvent::VictimRelease`]: a forced release of a circuit that
    /// *starts at* `src` (local victim in CLRP phase two, or a release
    /// request that travelled to the source): honour it as soon as the
    /// in-flight message (if any) completes; queued messages fall back to
    /// wormhole.
    pub fn on_victim_release(&mut self, circuit: CircuitId, src: NodeId) {
        let s = src.0 as usize;
        let Some(entry) = self.caches[s].find_by_circuit_mut(circuit) else {
            self.stats.release_requests_discarded += 1;
            return;
        };
        let dest = entry.dest;
        let queued: Vec<Message> = entry.queue.drain(..).collect();
        if entry.in_use {
            entry.release_pending = true;
        }
        for m in queued {
            self.send_wormhole_fallback(m);
        }
        let entry = self.caches[s].get_mut(dest).expect("entry still present");
        if !entry.in_use {
            self.release_entry_now(src, dest);
        }
        self.recount(src);
    }

    // ------------------------------------------------------------------
    // Dynamic faults: break notification and bounded re-establishment
    // ------------------------------------------------------------------

    /// [`PlaneEvent::CircuitBroken`]: a dynamic fault destroyed `circuit`
    /// (its teardown has already started on the controlplane). CLRP
    /// invalidates the entry and — within the `fault_retries` budget —
    /// schedules a re-establishment after an exponential backoff; beyond
    /// the budget (or under CARP, which never retries automatically) the
    /// entry degrades to wormhole delivery, so no message is ever lost.
    pub fn on_circuit_broken(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<TransferEvent>,
        circuit: CircuitId,
        src: NodeId,
        dest: NodeId,
    ) {
        let s = src.0 as usize;
        let Some(entry) = self.caches[s].find_by_circuit_mut(circuit) else {
            return; // entry already evicted or replaced: nothing to fix
        };
        debug_assert_eq!(entry.dest, dest);
        let retry = self.cfg.protocol == ProtocolKind::Clrp
            && !entry.release_pending
            && entry.fault_retries_used < self.cfg.fault_retries;
        if retry {
            entry.fault_retries_used += 1;
            let attempt = entry.fault_retries_used;
            entry.state = EntryState::RetryWait;
            entry.ack_returned = false;
            entry.channel = None;
            entry.established_at = None;
            entry.path_hops = 0;
            // Keep entry.circuit (the broken id): an in-flight transfer
            // on the old circuit still drains, and its ack must match to
            // clear In-use. The retry allocates a fresh id when it fires.
            let delay = u64::from(self.cfg.fault_backoff) << (attempt - 1);
            q.schedule(
                now + delay.max(1),
                TransferEvent::RetryEstablish { circuit, src, dest },
            );
        } else {
            // Degrade to wormhole: queued messages re-inject immediately;
            // an in-flight transfer drains and removes the entry on ack.
            let queued: Vec<Message> = entry.queue.drain(..).collect();
            if entry.in_use {
                entry.state = EntryState::Failed;
                entry.release_pending = true;
            } else {
                self.caches[s].remove(dest);
            }
            for m in queued {
                self.send_wormhole_fallback(m);
            }
        }
        self.recount(src);
    }

    /// [`TransferEvent::RetryEstablish`]: the post-fault backoff expired.
    /// If the entry still exists, still waits under the broken `circuit`
    /// id, and is idle, allocate a fresh circuit id and relaunch the probe
    /// search; a still-draining transfer postpones the relaunch one
    /// backoff unit so its ack (keyed by the old id) can clear In-use.
    fn on_retry_establish(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<TransferEvent>,
        circuit: CircuitId,
        src: NodeId,
        dest: NodeId,
    ) {
        let s = src.0 as usize;
        let Some(entry) = self.caches[s].get_mut(dest) else {
            return; // entry released while waiting
        };
        if entry.circuit != circuit || entry.state != EntryState::RetryWait {
            return; // stale: the entry was replaced meanwhile
        }
        if entry.in_use {
            let delay = u64::from(self.cfg.fault_backoff).max(1);
            q.schedule(
                now + delay,
                TransferEvent::RetryEstablish { circuit, src, dest },
            );
            return;
        }
        let cid = self.circuit_ids.alloc();
        let force = self.cfg.clrp.skip_phase1;
        entry.circuit = cid;
        entry.state = EntryState::Establishing;
        entry.switch = entry.initial_switch;
        entry.force_phase = force;
        let (switch, attempt) = (entry.initial_switch, entry.fault_retries_used);
        self.stats.establish_retries += 1;
        self.trace.emit(
            now,
            TraceEvent::EstablishRetry {
                circuit: cid.0,
                src: src.0,
                dest: dest.0,
                attempt,
            },
        );
        self.outbox.push(PlaneEvent::LaunchProbe {
            circuit: cid,
            src,
            dest,
            switch,
            force,
        });
    }

    // ------------------------------------------------------------------
    // Transfers
    // ------------------------------------------------------------------

    /// Starts the next queued transfer on the (Ready, idle) circuit.
    fn pump_circuit(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<TransferEvent>,
        src: NodeId,
        dest: NodeId,
    ) {
        let Some(entry) = self.caches[src.0 as usize].get_mut(dest) else {
            return;
        };
        if entry.state != EntryState::Ready || entry.in_use {
            return;
        }
        let Some(msg) = entry.queue.pop_front() else {
            return;
        };
        entry.in_use = true;
        entry.uses += 1;
        // Blind-sized end-point buffers (CLRP) must grow before a longer
        // message can stream — a software re-allocation cost (§2).
        let mut penalty = 0u64;
        if let Some(alloc) = entry.alloc_flits {
            if msg.len_flits > alloc {
                entry.alloc_flits = Some(msg.len_flits);
                penalty = u64::from(self.cfg.realloc_penalty);
                self.stats.buffer_reallocs += 1;
            }
        }
        let circuit = entry.circuit;
        let plan = plan_transfer(msg.len_flits, entry.path_hops, &self.cfg);
        self.trace.emit(
            now,
            TraceEvent::TransferStart {
                circuit: circuit.0,
                msg: msg.id.0,
                src: src.0,
                dest: dest.0,
                len_flits: msg.len_flits,
            },
        );
        q.schedule(
            now + penalty + plan.delivery_delay,
            TransferEvent::Delivered(circuit, msg),
        );
        q.schedule(
            now + penalty + plan.ack_delay,
            TransferEvent::Acked { circuit, src, dest },
        );
    }

    fn on_transfer_delivered(&mut self, now: Cycle, msg: Message) {
        self.stats.msgs_circuit += 1;
        self.outbox.push(PlaneEvent::CircuitDelivered(Delivery {
            msg,
            delivered_at: now,
            mode: DeliveryMode::Circuit,
        }));
    }

    fn on_transfer_acked(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<TransferEvent>,
        circuit: CircuitId,
        src: NodeId,
        dest: NodeId,
    ) {
        let Some(entry) = self.caches[src.0 as usize].get_mut(dest) else {
            return; // entry released while the ack was in flight
        };
        if entry.circuit != circuit {
            return; // entry replaced by a newer circuit to the same dest
        }
        debug_assert!(entry.in_use, "ack for a transfer that never started");
        entry.in_use = false;
        if entry.release_pending && entry.queue.is_empty() {
            self.release_entry_now(src, dest);
        } else {
            self.pump_circuit(now, q, src, dest);
        }
    }

    // ------------------------------------------------------------------
    // Release
    // ------------------------------------------------------------------

    /// Immediately removes the cache entry for `dest` and asks the
    /// controlplane to release the path.
    ///
    /// # Panics
    /// Panics if the entry is in use (callers must wait for the ack).
    fn release_entry_now(&mut self, src: NodeId, dest: NodeId) {
        let s = src.0 as usize;
        let entry = self.caches[s]
            .remove(dest)
            .expect("release of missing entry");
        assert!(!entry.in_use, "cannot release an in-use circuit");
        for m in entry.queue {
            self.send_wormhole_fallback(m);
        }
        self.outbox.push(PlaneEvent::ReleaseCircuit {
            circuit: entry.circuit,
            src,
        });
    }

    /// The controlplane fully released (or abandoned) `circuit`: nothing
    /// in the network references it any more, so its id slot returns to
    /// the allocator. Idempotent — a raced unwind and teardown may both
    /// report the same circuit, and only the first recycles the slot.
    pub fn on_circuit_freed(&mut self, circuit: CircuitId) {
        self.circuit_ids.recycle(circuit);
    }
}

/// The circuitplane is event-driven: transfers complete in `handle`, and
/// it is "busy" while any cache entry is streaming or queueing.
impl Model for CircuitPlane {
    type Event = TransferEvent;

    fn tick(&mut self, _now: Cycle, _queue: &mut EventQueue<TransferEvent>) {}

    fn handle(&mut self, now: Cycle, event: TransferEvent, q: &mut EventQueue<TransferEvent>) {
        match event {
            TransferEvent::Delivered(_circuit, msg) => self.on_transfer_delivered(now, msg),
            TransferEvent::Acked { circuit, src, dest } => {
                self.on_transfer_acked(now, q, circuit, src, dest);
                self.recount(src);
            }
            TransferEvent::RetryEstablish { circuit, src, dest } => {
                self.on_retry_establish(now, q, circuit, src, dest);
            }
        }
    }

    fn busy(&self) -> bool {
        CircuitPlane::busy(self)
    }

    /// Purely event-driven: `tick` is empty, so only scheduled transfer
    /// completions (the calendar) ever need this plane to run.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A CLRP send with an empty cache starts an establishment: the entry
    /// appears in Establishing state and a LaunchProbe event leaves the
    /// plane.
    #[test]
    fn clrp_miss_emits_launch_probe() {
        let topo = Topology::mesh(&[4, 4]);
        let mut plane = CircuitPlane::new(topo, WaveConfig::default());
        let mut q = EventQueue::new();
        plane.send(0, Message::new(1, NodeId(0), NodeId(15), 16, 0), &mut q);
        assert_eq!(plane.stats().cache_misses, 1);
        let entry = plane.cache(NodeId(0)).get(NodeId(15)).expect("entry");
        assert_eq!(entry.state, EntryState::Establishing);
        assert_eq!(entry.queue.len(), 1);
        let mut bus = EventBus::new();
        plane.drain_outbox_into(&mut bus);
        assert!(matches!(
            bus.pop(),
            Some(PlaneEvent::LaunchProbe { src, dest, force: false, .. })
                if src == NodeId(0) && dest == NodeId(15)
        ));
    }

    /// Establishment completion pumps the queued message and schedules its
    /// delivery and ack on the transfer queue.
    #[test]
    fn established_circuit_pumps_queue() {
        let topo = Topology::mesh(&[4, 4]);
        let mut plane = CircuitPlane::new(topo, WaveConfig::default());
        let mut q = EventQueue::new();
        plane.send(0, Message::new(1, NodeId(0), NodeId(15), 16, 0), &mut q);
        let circuit = plane.cache(NodeId(0)).get(NodeId(15)).unwrap().circuit;
        let lane = LaneId::new(wavesim_topology::LinkId(0), 1);
        plane.on_established(10, &mut q, circuit, NodeId(0), NodeId(15), 6, lane);
        assert_eq!(plane.stats().setups_ok, 1);
        let entry = plane.cache(NodeId(0)).get(NodeId(15)).unwrap();
        assert_eq!(entry.state, EntryState::Ready);
        assert!(entry.in_use, "queued message starts streaming immediately");
        assert_eq!(entry.path_hops, 6);
        assert!(!q.is_empty(), "delivery + ack scheduled");
    }
}
