//! The controlplane: PCS units, MB-m probe stepping, and the ack /
//! teardown / release-request walks over the dedicated control channels.
//!
//! This plane owns everything the control flits touch — the wave-lane
//! reservation table, the per-router PCS mapping registers, the live
//! probes, and the global circuit registry. It knows nothing about
//! Circuit Caches or protocols: when a probe exhausts a switch, when an
//! acknowledgment completes, or when a victim circuit must be released,
//! it emits a [`PlaneEvent`] and lets the circuitplane decide.
//!
//! Time-delayed control-flit movement is scheduled on an external
//! [`EventQueue<CtrlEvent>`] (owned by the composition root, or by a
//! [`wavesim_sim::Engine`] when the plane runs standalone); every delay
//! is at least one cycle, so same-cycle event cascades cannot occur.

use wavesim_sim::{Cycle, EventQueue, Model};
use wavesim_topology::{NodeId, PortDir, Topology};
use wavesim_trace::{TraceBuf, TraceEvent};

use crate::arena::{GenSlab, SlotMap};
use crate::circuit::{CircuitState, CircuitStatus};
use crate::config::WaveConfig;
use crate::events::{EventBus, PlaneEvent};
use crate::ids::{CircuitId, LaneId, ProbeId};
use crate::lanes::{LaneState, LaneTable};
use crate::pcs::PcsUnit;
use crate::probe::ProbeState;
use crate::stats::WaveStats;

/// Control-flit events walking the control channels.
#[derive(Debug, Clone)]
pub enum CtrlEvent {
    /// Probe arrives (or resumes) at its current node.
    ProbeAt(ProbeId),
    /// Parked probe woken by a lane release.
    RetryProbe(ProbeId),
    /// Path-setup acknowledgment reaches the source router of path lane
    /// `hop` on its way back (hop 0 is the circuit's source node, where
    /// the ack completes establishment).
    AckHopAt(CircuitId, u32),
    /// Teardown flit reaches `node`.
    TeardownAt(CircuitId, NodeId),
    /// Release-request flit reaches the circuit's source.
    ReleaseReqAt(CircuitId),
}

/// The control plane of the wave router.
#[derive(Debug)]
pub struct ControlPlane {
    topo: Topology,
    cfg: WaveConfig,
    lanes: LaneTable,
    pcs: Vec<PcsUnit>,
    probes: GenSlab<ProbeId, ProbeState>,
    circuits: SlotMap<CircuitId, CircuitState>,
    max_probe_steps: u64,
    stats: WaveStats,
    outbox: Vec<PlaneEvent>,
    /// Intra-plane trace staging; the composition root arms and absorbs it.
    pub(crate) trace: TraceBuf,
}

impl ControlPlane {
    /// Builds the plane for `topo` under `cfg`.
    #[must_use]
    pub fn new(topo: Topology, cfg: WaveConfig) -> Self {
        let n = topo.num_nodes() as usize;
        Self {
            lanes: LaneTable::new(&topo, cfg.k),
            pcs: vec![PcsUnit::new(); n],
            probes: GenSlab::new(),
            circuits: SlotMap::new(),
            max_probe_steps: 0,
            stats: WaveStats::default(),
            outbox: Vec::new(),
            trace: TraceBuf::new(),
            topo,
            cfg,
        }
    }

    // ------------------------------------------------------------------
    // Observation
    // ------------------------------------------------------------------

    /// The wave-lane table (read access for instrumentation).
    #[must_use]
    pub fn lanes(&self) -> &LaneTable {
        &self.lanes
    }

    /// Live circuits (read access for instrumentation).
    #[must_use]
    pub fn circuits(&self) -> &SlotMap<CircuitId, CircuitState> {
        &self.circuits
    }

    /// Live probes (read access for instrumentation).
    #[must_use]
    pub fn probes(&self) -> &GenSlab<ProbeId, ProbeState> {
        &self.probes
    }

    /// The Ack Returned bit of `circuit` at `node`'s PCS unit, if the
    /// circuit has a mapping there (Fig. 3 register observation).
    #[must_use]
    pub fn pcs_ack_returned(&self, node: NodeId, circuit: CircuitId) -> Option<bool> {
        self.pcs[node.0 as usize]
            .hop(circuit)
            .map(|h| h.ack_returned)
    }

    /// Largest number of control steps any single probe has taken — the
    /// quantity Theorems 3/4 bound (livelock freedom).
    #[must_use]
    pub fn max_probe_steps(&self) -> u64 {
        self.max_probe_steps
    }

    /// This plane's statistics contribution.
    #[must_use]
    pub fn stats(&self) -> &WaveStats {
        &self.stats
    }

    /// True while probes are walking the control network.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.probes.is_empty()
    }

    /// Marks `lane` faulty (static fault injection, E8). Fails — naming
    /// the holding circuit — when the lane is reserved; static plans are
    /// applied before traffic, so a reservation means the caller's
    /// sequencing is wrong and the dynamic path ([`Self::on_lane_fault`])
    /// must be used instead.
    pub fn fault_lane(&mut self, lane: LaneId) -> Result<(), String> {
        match self.lanes.set_faulty(lane) {
            Ok(()) => {
                self.stats.lane_faults += 1;
                Ok(())
            }
            Err(holder) => Err(format!(
                "cannot statically fault lane {lane}: reserved by circuit {holder} \
                 (use a dynamic fault event for teardown-then-fault)"
            )),
        }
    }

    /// Dynamic fault event: marks `lane` faulty *now*, tearing down the
    /// victim circuit if the lane was reserved (teardown-then-fault).
    ///
    /// * Parked waiters are drained and retried; they re-scan, see the
    ///   lane `Faulty`, and route around it (counting a fault encounter).
    /// * A `Ready` victim starts the normal teardown walk from its source;
    ///   in-flight transfers already launched on it are wave fronts in
    ///   the pipeline and drain normally (the fault only blocks *new*
    ///   reservations of the lane).
    /// * An `Establishing` victim is marked `TearingDown`: its live probe
    ///   unwinds on its next step (a parked probe is unparked and woken so
    ///   that step happens); if the probe already completed and only the
    ///   ack walk remains, the ack dies against the status check and a
    ///   teardown walk reclaims the path.
    ///
    /// In both victim cases a [`PlaneEvent::CircuitBroken`] tells the
    /// circuitplane to invalidate the cache entry and (CLRP) retry.
    pub fn on_lane_fault(&mut self, now: Cycle, q: &mut EventQueue<CtrlEvent>, lane: LaneId) {
        if self.lanes.state(lane) == LaneState::Faulty {
            return; // already faulty: idempotent
        }
        let (victim, waiters) = self.lanes.force_faulty(lane);
        self.stats.lane_faults += 1;
        self.trace.emit(
            now,
            TraceEvent::LaneFault {
                link: lane.link.0,
                switch: lane.switch,
            },
        );
        self.wake(now, q, waiters);
        let Some(victim) = victim else {
            return; // lane was free: no circuit to tear down
        };
        let c = self
            .circuits
            .get_mut(victim)
            .expect("reserved lane names a live circuit");
        let (src, dest) = (c.src, c.dest);
        match c.status {
            CircuitStatus::TearingDown => {
                // A teardown (or probe unwind) is already reclaiming the
                // path; it skips the faulted lane via release_if_held.
            }
            CircuitStatus::Ready => {
                c.status = CircuitStatus::TearingDown;
                q.schedule(now + 1, CtrlEvent::TeardownAt(victim, src));
                self.stats.circuits_broken += 1;
                self.outbox.push(PlaneEvent::CircuitBroken {
                    circuit: victim,
                    src,
                    dest,
                });
            }
            CircuitStatus::Establishing => {
                c.status = CircuitStatus::TearingDown;
                let probe = self
                    .probes
                    .iter()
                    .find(|(_, p)| p.circuit == victim)
                    .map(|(pid, p)| (pid, p.parked_on));
                match probe {
                    Some((pid, parked_on)) => {
                        // The probe unwinds when it next runs; a parked
                        // probe has no event in flight, so unpark + wake.
                        if let Some(l) = parked_on {
                            self.lanes.unpark(l, pid);
                            q.schedule(now + 1, CtrlEvent::RetryProbe(pid));
                        }
                    }
                    None => {
                        // Probe completed; only the ack walk is out. It
                        // dies against the status check — reclaim the
                        // fully-reserved path with a teardown walk.
                        q.schedule(now + 1, CtrlEvent::TeardownAt(victim, src));
                    }
                }
                self.stats.circuits_broken += 1;
                self.outbox.push(PlaneEvent::CircuitBroken {
                    circuit: victim,
                    src,
                    dest,
                });
            }
        }
    }

    /// Dynamic repair event: returns a faulty lane to service. Repairing
    /// a lane that is not faulty is a tolerant no-op.
    pub fn on_lane_repair(&mut self, now: Cycle, lane: LaneId) {
        if self.lanes.repair(lane) {
            self.stats.lane_repairs += 1;
            self.trace.emit(
                now,
                TraceEvent::LaneRepair {
                    link: lane.link.0,
                    switch: lane.switch,
                },
            );
        }
    }

    /// Moves staged outbound events into `bus`.
    pub fn drain_outbox_into(&mut self, bus: &mut EventBus) {
        bus.absorb(&mut self.outbox);
    }

    // ------------------------------------------------------------------
    // Inbound plane events
    // ------------------------------------------------------------------

    /// [`PlaneEvent::LaunchProbe`]: registers the circuit (on its first
    /// switch attempt) and sends a probe out of the source.
    #[expect(clippy::too_many_arguments, reason = "mirrors the event's fields")]
    pub fn on_launch_probe(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<CtrlEvent>,
        circuit: CircuitId,
        src: NodeId,
        dest: NodeId,
        switch: u8,
        force: bool,
    ) {
        let topo = &self.topo;
        let pid = self
            .probes
            .insert_with(|pid| ProbeState::new(pid, circuit, topo, src, dest, switch, force));
        self.stats.probes_sent += 1;
        let c = self
            .circuits
            .get_or_insert_with(circuit, || CircuitState::new(circuit, src, dest, switch));
        c.switch = switch;
        c.status = CircuitStatus::Establishing;
        // PCS processing before the probe leaves the source.
        q.schedule(
            now + u64::from(self.cfg.pcs_delay).max(1),
            CtrlEvent::ProbeAt(pid),
        );
    }

    /// [`PlaneEvent::ReleaseCircuit`]: the cache entry is gone; tear the
    /// path down (or let the live probe unwind itself).
    pub fn on_release_circuit(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<CtrlEvent>,
        circuit: CircuitId,
        src: NodeId,
    ) {
        let Some(c) = self.circuits.get_mut(circuit) else {
            return; // establishment already failed and cleaned up
        };
        match c.status {
            CircuitStatus::Establishing => {
                // A probe is still out. Backtracking it synchronously
                // would duplicate the search engine, so mark the circuit
                // TearingDown and the probe unwinds on its next step.
                c.status = CircuitStatus::TearingDown;
            }
            CircuitStatus::Ready => {
                c.status = CircuitStatus::TearingDown;
                q.schedule(now + 1, CtrlEvent::TeardownAt(circuit, src));
            }
            CircuitStatus::TearingDown => {}
        }
    }

    /// [`PlaneEvent::AbandonCircuit`]: establishment failed on every
    /// switch; no lanes are held, so the registry entry just disappears.
    pub fn on_abandon_circuit(&mut self, circuit: CircuitId) {
        self.circuits.remove(&circuit);
    }

    // ------------------------------------------------------------------
    // Probe engine (MB-m, §2 + Fig. 4, with the §3.1 Force extension)
    // ------------------------------------------------------------------

    fn process_probe(&mut self, now: Cycle, q: &mut EventQueue<CtrlEvent>, pid: ProbeId) {
        let Some(mut p) = self.probes.take(&pid) else {
            return; // probe already terminated (stale wake-up)
        };
        p.parked_on = None;

        // If the owning circuit was cancelled while the probe was walking
        // (defensive path — a teardown raced the search), unwind: release
        // every reserved lane and die quietly.
        let cancelled = match self.circuits.get(p.circuit) {
            None => true,
            Some(c) => c.status == CircuitStatus::TearingDown,
        };
        if cancelled {
            self.unwind_probe(now, q, p);
            return;
        }

        // Destination reached?
        if p.at == p.dest {
            self.complete_probe(now, q, p);
            return;
        }

        let node = p.at;
        let reverse_in: Option<PortDir> = p.path.last().map(|lane| {
            let (_, port) = self.topo.link_endpoints(lane.link);
            port.opposite()
        });

        // Nodes already on the reserved path (including the source): the
        // probe must not loop back through them — its path stays simple,
        // which both keeps the PCS mappings well-defined (one hop per
        // circuit per router) and makes the Theorem 3/4 step bound hold.
        let mut on_path: Vec<NodeId> = Vec::with_capacity(p.path.len() + 1);
        on_path.push(p.src);
        for lane in &p.path {
            on_path.push(self.topo.link_dest(lane.link));
        }
        let loops_back = |topo: &Topology, port: PortDir| -> bool {
            topo.neighbor(node, port)
                .is_some_and(|n| on_path.contains(&n))
        };

        // Candidate ports: profitable (minimal) first, in dimension order,
        // then the rest as misroute candidates.
        let profitable = self.topo.min_ports(node, p.dest);
        let all_ports = self.topo.ports_of(node);

        // 1) Free profitable channel not yet searched.
        for &port in &profitable {
            if p.searched(node, port.index()) || loops_back(&self.topo, port) {
                continue;
            }
            let lane = LaneId::new(self.topo.link_id(node, port), p.switch);
            match self.lanes.state(lane) {
                LaneState::Free => {
                    self.advance_probe(now, q, p, port, lane, false);
                    return;
                }
                LaneState::Faulty => {
                    self.stats.probe_fault_encounters += 1;
                }
                LaneState::Reserved(_) => {}
            }
        }

        // 2) Misroute if budget remains (MB-m).
        if p.flit.misroute < self.cfg.misroutes {
            for &port in &all_ports {
                if profitable.contains(&port)
                    || Some(port) == reverse_in
                    || p.searched(node, port.index())
                    || loops_back(&self.topo, port)
                {
                    continue;
                }
                let lane = LaneId::new(self.topo.link_id(node, port), p.switch);
                match self.lanes.state(lane) {
                    LaneState::Free => {
                        self.advance_probe(now, q, p, port, lane, true);
                        return;
                    }
                    LaneState::Faulty => {
                        self.stats.probe_fault_encounters += 1;
                    }
                    LaneState::Reserved(_) => {}
                }
            }
        }

        // 3) Force mode: pick a victim circuit holding a requested lane
        //    whose acknowledgment has returned (§3.1 phase two).
        if p.flit.force {
            let mut requested: Vec<PortDir> = profitable.clone();
            if p.flit.misroute < self.cfg.misroutes {
                for &port in &all_ports {
                    if !profitable.contains(&port) && Some(port) != reverse_in {
                        requested.push(port);
                    }
                }
            }
            for &port in &requested {
                if p.searched(node, port.index()) || loops_back(&self.topo, port) {
                    continue;
                }
                let lane = LaneId::new(self.topo.link_id(node, port), p.switch);
                let Some(victim) = self.lanes.holder(lane) else {
                    continue; // free or faulty, handled above
                };
                let Some(vstate) = self.circuits.get(victim) else {
                    continue;
                };
                if vstate.status != CircuitStatus::Ready {
                    continue; // being established or already tearing down
                }
                // Park the probe on the lane; it resumes when freed.
                self.lanes.park(lane, p.id);
                p.parked_on = Some(lane);
                self.trace.emit(
                    now,
                    TraceEvent::ProbePark {
                        circuit: p.circuit.0,
                        probe: p.id.0,
                        node: node.0,
                        victim: victim.0,
                    },
                );
                let vsrc = vstate.src;
                if vsrc == node {
                    // Victim starts here: ask the local Circuit Cache to
                    // release it.
                    self.stats.forced_local_releases += 1;
                    self.outbox.push(PlaneEvent::VictimRelease {
                        circuit: victim,
                        src: vsrc,
                    });
                } else {
                    // Victim crosses here: ask its source to release it.
                    self.stats.forced_remote_releases += 1;
                    let hops_back = self.hops_from_source(victim, node);
                    let delay = hops_back * u64::from(self.cfg.ctrl_hop_delay);
                    q.schedule(now + delay.max(1), CtrlEvent::ReleaseReqAt(victim));
                }
                self.probes.restore(p.id, p);
                return;
            }
            // All requested lanes belong to circuits being established (or
            // nothing is requestable): backtrack even with Force set (§4).
        }

        // 4) Backtrack.
        self.backtrack_probe(now, q, p);
    }

    /// Path position of `node` on `circuit` (hops from the source),
    /// counting reserved lanes. Used to time release-request flights.
    fn hops_from_source(&self, circuit: CircuitId, node: NodeId) -> u64 {
        let Some(c) = self.circuits.get(circuit) else {
            return 1;
        };
        for (i, lane) in c.path.iter().enumerate() {
            if self.topo.link_dest(lane.link) == node {
                return (i + 1) as u64;
            }
        }
        1
    }

    fn advance_probe(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<CtrlEvent>,
        mut p: ProbeState,
        port: PortDir,
        lane: LaneId,
        misroute: bool,
    ) {
        p.mark_searched(p.at, port.index());
        self.lanes.reserve(lane, p.circuit);
        if misroute {
            p.flit.misroute += 1;
            self.stats.probe_misroutes += 1;
        }
        // PCS bookkeeping at the current node: out mapping.
        let unit = &mut self.pcs[p.at.0 as usize];
        if unit.hop(p.circuit).is_none() {
            // Source node (no in-lane).
            debug_assert_eq!(p.at, p.src);
            unit.record(p.circuit, p.switch, None, Some(lane));
        } else {
            unit.set_out_lane(p.circuit, Some(lane));
        }
        let next = self.topo.link_dest(lane.link);
        p.path.push(lane);
        p.at = next;
        p.hops += 1;
        self.stats.probe_hops += 1;
        self.trace.emit(
            now,
            TraceEvent::ProbeHop {
                circuit: p.circuit.0,
                probe: p.id.0,
                node: next.0,
                link: lane.link.0,
                misroute,
            },
        );
        p.flit.backtrack = false;
        let (dest, circuit, switch) = (p.dest, p.circuit, p.switch);
        p.flit.update_offsets(&self.topo, next, dest);
        // Record the in-mapping at the next node on arrival.
        let unit = &mut self.pcs[next.0 as usize];
        if unit.hop(circuit).is_none() {
            unit.record(circuit, switch, Some(lane), None);
        } else {
            // Revisited node after a backtrack elsewhere: refresh in-lane.
            unit.clear(circuit);
            unit.record(circuit, switch, Some(lane), None);
        }
        let pid = p.id;
        self.probes.restore(pid, p);
        // Forward moves pay the PCS routing decision plus the wire hop.
        let delay = u64::from(self.cfg.ctrl_hop_delay) + u64::from(self.cfg.pcs_delay);
        q.schedule(now + delay, CtrlEvent::ProbeAt(pid));
    }

    fn backtrack_probe(&mut self, now: Cycle, q: &mut EventQueue<CtrlEvent>, mut p: ProbeState) {
        if p.at == p.src {
            // Search space for this switch exhausted; the probe id retires.
            self.probes.free(p.id);
            self.pcs[p.src.0 as usize].clear(p.circuit);
            self.stats.probes_exhausted += 1;
            self.max_probe_steps = self.max_probe_steps.max(p.hops);
            self.outbox.push(PlaneEvent::ProbeExhausted {
                circuit: p.circuit,
                src: p.src,
                dest: p.dest,
                switch: p.switch,
                force: p.flit.force,
            });
            return;
        }
        p.flit.backtrack = true;
        let lane = p.path.pop().expect("non-source probe has a path");
        let (prev, _) = self.topo.link_endpoints(lane.link);
        // Clear this node's mapping; the previous node's out-lane resets.
        self.pcs[p.at.0 as usize].clear(p.circuit);
        self.pcs[prev.0 as usize].set_out_lane(p.circuit, None);
        let woken = self.lanes.release(lane, p.circuit);
        p.at = prev;
        p.hops += 1;
        p.backtracks += 1;
        self.stats.probe_hops += 1;
        self.stats.probe_backtracks += 1;
        self.trace.emit(
            now,
            TraceEvent::ProbeBacktrack {
                circuit: p.circuit.0,
                probe: p.id.0,
                node: prev.0,
            },
        );
        let (dest, pid) = (p.dest, p.id);
        p.flit.update_offsets(&self.topo, prev, dest);
        self.probes.restore(pid, p);
        q.schedule(
            now + u64::from(self.cfg.ctrl_hop_delay),
            CtrlEvent::ProbeAt(pid),
        );
        self.wake(now, q, woken);
    }

    /// Releases everything a cancelled probe reserved (reverse path order)
    /// and clears the PCS mappings it created.
    fn unwind_probe(&mut self, now: Cycle, q: &mut EventQueue<CtrlEvent>, p: ProbeState) {
        self.probes.free(p.id);
        self.pcs[p.at.0 as usize].clear(p.circuit);
        for lane in p.path.iter().rev() {
            let (from, _) = self.topo.link_endpoints(lane.link);
            self.pcs[from.0 as usize].clear(p.circuit);
            // A dynamic fault may have force-faulted a path lane already;
            // release_if_held skips it (and its waiters were drained then).
            let woken = self.lanes.release_if_held(*lane, p.circuit);
            self.wake(now, q, woken);
        }
        self.circuits.remove(&p.circuit);
        self.stats.teardowns += 1;
        self.max_probe_steps = self.max_probe_steps.max(p.hops);
        self.outbox
            .push(PlaneEvent::CircuitReleased { circuit: p.circuit });
    }

    fn complete_probe(&mut self, now: Cycle, q: &mut EventQueue<CtrlEvent>, p: ProbeState) {
        debug_assert_eq!(p.at, p.dest);
        debug_assert!(!p.path.is_empty(), "src != dest implies a real path");
        self.probes.free(p.id);
        self.stats.probes_reached += 1;
        self.max_probe_steps = self.max_probe_steps.max(p.hops);
        self.trace.emit(
            now,
            TraceEvent::ProbeReached {
                circuit: p.circuit.0,
                probe: p.id.0,
                dest: p.dest.0,
                steps: p.hops,
            },
        );
        let c = self
            .circuits
            .get_mut(p.circuit)
            .expect("live probe has a live circuit");
        c.path = p.path.clone();
        // The acknowledgment returns hop by hop over the reverse control
        // channels (Fig. 3's Reverse Channel Mappings), setting each
        // router's Ack Returned bit as it passes.
        let last_hop = (p.path.len() - 1) as u32;
        let delay = u64::from(self.cfg.ctrl_hop_delay);
        q.schedule(now + delay.max(1), CtrlEvent::AckHopAt(p.circuit, last_hop));
        // Probe terminates; its History Store entries die with it.
    }

    fn wake(&mut self, now: Cycle, q: &mut EventQueue<CtrlEvent>, probes: Vec<ProbeId>) {
        for pid in probes {
            if self.probes.contains_key(&pid) {
                q.schedule(now + 1, CtrlEvent::RetryProbe(pid));
            }
        }
    }

    // ------------------------------------------------------------------
    // Ack / teardown / release-request walks
    // ------------------------------------------------------------------

    /// The ack flit passes the router at the upstream end of path lane
    /// `hop`, setting that router's Ack Returned bit; at hop 0 it has
    /// reached the source and establishment completes.
    fn on_ack_hop(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<CtrlEvent>,
        circuit: CircuitId,
        hop: u32,
    ) {
        let Some(c) = self.circuits.get(circuit) else {
            return; // torn down while the ack was in flight
        };
        if c.status != CircuitStatus::Establishing {
            return;
        }
        let Some(lane) = c.path.get(hop as usize) else {
            return;
        };
        let (node, _) = self.topo.link_endpoints(lane.link);
        self.pcs[node.0 as usize].mark_ack(circuit);
        if hop > 0 {
            q.schedule(
                now + u64::from(self.cfg.ctrl_hop_delay),
                CtrlEvent::AckHopAt(circuit, hop - 1),
            );
            return;
        }
        let c = self.circuits.get_mut(circuit).expect("checked above");
        c.status = CircuitStatus::Ready;
        self.outbox.push(PlaneEvent::CircuitEstablished {
            circuit,
            src: c.src,
            dest: c.dest,
            hops: c.hops(),
            first_lane: *c.path.first().expect("established path is non-empty"),
        });
    }

    fn on_release_request(&mut self, circuit: CircuitId) {
        let Some(c) = self.circuits.get(circuit) else {
            // Circuit released while the request was in flight: "the
            // control flit is discarded at some intermediate node" (§4).
            self.stats.release_requests_discarded += 1;
            return;
        };
        if c.status != CircuitStatus::Ready {
            self.stats.release_requests_discarded += 1;
            return;
        }
        self.outbox.push(PlaneEvent::VictimRelease {
            circuit,
            src: c.src,
        });
    }

    fn on_teardown(
        &mut self,
        now: Cycle,
        q: &mut EventQueue<CtrlEvent>,
        circuit: CircuitId,
        node: NodeId,
    ) {
        let Some(hop) = self.pcs[node.0 as usize].clear(circuit) else {
            return; // already unwound (e.g. backtrack raced)
        };
        match hop.out_lane {
            Some(lane) => {
                // release_if_held: a dynamic fault may have force-faulted
                // this hop's lane after the walk started.
                let woken = self.lanes.release_if_held(lane, circuit);
                let next = self.topo.link_dest(lane.link);
                q.schedule(
                    now + u64::from(self.cfg.ctrl_hop_delay),
                    CtrlEvent::TeardownAt(circuit, next),
                );
                self.wake(now, q, woken);
            }
            None => {
                // Destination reached: the circuit is fully released.
                self.circuits.remove(&circuit);
                self.stats.teardowns += 1;
                self.outbox.push(PlaneEvent::CircuitReleased { circuit });
            }
        }
    }
}

/// The controlplane is event-driven: all work happens in `handle`, and it
/// is "busy" exactly while probes hold reservations that a quiescence
/// check must wait out.
impl Model for ControlPlane {
    type Event = CtrlEvent;

    fn tick(&mut self, _now: Cycle, _queue: &mut EventQueue<CtrlEvent>) {}

    fn handle(&mut self, now: Cycle, event: CtrlEvent, q: &mut EventQueue<CtrlEvent>) {
        match event {
            CtrlEvent::ProbeAt(pid) | CtrlEvent::RetryProbe(pid) => self.process_probe(now, q, pid),
            CtrlEvent::AckHopAt(cid, hop) => self.on_ack_hop(now, q, cid, hop),
            CtrlEvent::TeardownAt(cid, node) => self.on_teardown(now, q, cid, node),
            CtrlEvent::ReleaseReqAt(cid) => self.on_release_request(cid),
        }
    }

    fn busy(&self) -> bool {
        ControlPlane::busy(self)
    }

    /// Purely event-driven: `tick` is empty, so the calendar alone decides
    /// when this plane next runs. A probe parked with no event in flight
    /// is genuinely stuck — standalone engines may stop rather than spin.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wavesim_sim::Engine;

    /// The plane runs standalone under the generic engine: launch a probe
    /// and watch it reserve a path and complete the ack walk.
    #[test]
    fn establishes_a_circuit_standalone() {
        let topo = Topology::mesh(&[4, 4]);
        let plane = ControlPlane::new(topo, WaveConfig::default());
        let mut engine = Engine::new(plane);
        let cid = CircuitId(0);
        // Launch through the public inbound-event entry point.
        let (model, queue) = engine.model_and_queue_mut();
        model.on_launch_probe(0, queue, cid, NodeId(0), NodeId(15), 1, false);
        engine.run_until(10_000);
        let mut bus = EventBus::new();
        engine.model_mut().drain_outbox_into(&mut bus);
        let mut established = false;
        while let Some(ev) = bus.pop() {
            if let PlaneEvent::CircuitEstablished { circuit, hops, .. } = ev {
                assert_eq!(circuit, cid);
                assert_eq!(hops, 6, "minimal path in a 4x4 mesh corner to corner");
                established = true;
            }
        }
        assert!(established);
        assert!(!engine.model().busy());
        assert_eq!(engine.model().stats().probes_reached, 1);
    }
}
