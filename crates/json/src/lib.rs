//! # wavesim-json — a minimal, dependency-free JSON library
//!
//! The simulator persists CARP traces, message scripts, and experiment
//! tables as JSON so results are shareable, versionable artifacts. The
//! build environment is fully offline (no crates.io), so this crate
//! provides the small JSON surface wavesim needs from scratch:
//!
//! * [`Value`] — an order-preserving JSON document model;
//! * [`Value::parse`] — a recursive-descent parser with precise errors;
//! * [`Value::pretty`] / [`Value::compact`] — deterministic writers
//!   (object keys keep insertion order, so output is reproducible).
//!
//! Numbers are stored as `f64`; integers up to 2^53 round-trip exactly,
//! which covers every id/cycle value the simulator serializes.

#![warn(missing_docs)]

use std::fmt;

/// A parsed or constructed JSON value.
///
/// Objects preserve key insertion order (they are association lists, not
/// hash maps), so serialization is deterministic — a requirement for the
/// byte-identical experiment outputs the bench harness guarantees.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Value)>) -> Self {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// Parses a JSON document. Trailing non-whitespace is an error.
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Serializes compactly (no whitespace).
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_num(out, *x),
            Value::Str(s) => write_str(out, s),
            Value::Arr(xs) => write_seq(out, indent, depth, xs.is_empty(), ('[', ']'), |out| {
                for (i, x) in xs.iter().enumerate() {
                    sep(out, indent, depth + 1, i > 0);
                    x.write(out, indent, depth + 1);
                }
            }),
            Value::Obj(pairs) => {
                write_seq(out, indent, depth, pairs.is_empty(), ('{', '}'), |out| {
                    for (i, (k, v)) in pairs.iter().enumerate() {
                        sep(out, indent, depth + 1, i > 0);
                        write_str(out, k);
                        out.push(':');
                        if indent.is_some() {
                            out.push(' ');
                        }
                        v.write(out, indent, depth + 1);
                    }
                });
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Arr(xs) => xs.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(x: u64) -> Self {
        Value::Num(x as f64)
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Self {
        Value::Num(f64::from(x))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(xs: Vec<T>) -> Self {
        Value::Arr(xs.into_iter().map(Into::into).collect())
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN
    } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn sep(out: &mut String, indent: Option<usize>, depth: usize, comma: bool) {
    if comma {
        out.push(',');
    }
    if let Some(n) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(n * depth));
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    empty: bool,
    brackets: (char, char),
    body: impl FnOnce(&mut String),
) {
    out.push(brackets.0);
    if !empty {
        body(out);
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * depth));
        }
    }
    out.push(brackets.1);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(xs));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not produced by our writer;
                            // lone surrogates map to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = text.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.compact(), text);
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Value::obj(vec![
            ("id", "E4".into()),
            (
                "rows",
                Value::Arr(vec![vec!["1", "2"].into(), Value::Arr(vec![])]),
            ),
            ("n", 42u64.into()),
        ]);
        let compact = v.compact();
        assert_eq!(compact, r#"{"id":"E4","rows":[["1","2"],[]],"n":42}"#);
        assert_eq!(Value::parse(&compact).unwrap(), v);
        assert_eq!(Value::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn accessors_and_indexing() {
        let v = Value::parse(r#"{"id":"E4","rows":[[1,2]],"ok":true}"#).unwrap();
        assert_eq!(v["id"], "E4");
        assert_eq!(v["rows"].as_array().unwrap().len(), 1);
        assert_eq!(v["rows"][0][1].as_u64(), Some(2));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".into());
        let text = v.compact();
        assert_eq!(Value::parse(&text).unwrap(), v);
        assert_eq!(Value::parse(r#""A\/""#).unwrap(), Value::Str("A/".into()));
    }

    #[test]
    fn large_integers_roundtrip() {
        let v = Value::from(1u64 << 52);
        let text = v.compact();
        assert_eq!(text, "4503599627370496");
        assert_eq!(Value::parse(&text).unwrap().as_u64(), Some(1 << 52));
    }

    #[test]
    fn garbage_rejected() {
        assert!(Value::parse("not json").is_err());
        assert!(Value::parse("{\"a\":}").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{} trailing").is_err());
        assert!(Value::parse("\"open").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Value::Str("ñandú — ∞".into());
        assert_eq!(Value::parse(&v.compact()).unwrap(), v);
    }
}
