//! Measurement instruments.
//!
//! Interconnection-network papers of the wormhole era report two headline
//! metrics — **average message latency** (cycles, injection to last-flit
//! delivery) and **accepted throughput** (flits/node/cycle) — measured after
//! a warm-up period so the network is in steady state. This module provides
//! the instruments to collect them plus the distributional detail the
//! experiment harness prints:
//!
//! * [`Counter`] — saturating event counter;
//! * [`Accumulator`] — Welford running mean/variance/min/max;
//! * [`Histogram`] — power-of-two bucketed latency histogram with quantile
//!   estimates;
//! * [`Warmup`] — gate that discards samples before the warm-up horizon;
//! * [`ThroughputMeter`] — flits delivered per node per cycle over a window.

use crate::time::Cycle;

/// Cycle-kernel work counters: how much scanning a cycle-driven model
/// actually performed, independent of wall clock. An O(work) kernel shows
/// `routers_scanned / ticks` tracking the in-flight population instead of
/// the network size; these counters make that visible (and regressions
/// measurable) without a profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleKernelStats {
    /// `tick` invocations executed (idle fast-forwarded cycles excluded).
    pub ticks: u64,
    /// Router phase-loop visits summed over all ticks.
    pub routers_scanned: u64,
    /// Input-VC inspections summed over all ticks (VA + SA scans).
    pub vcs_touched: u64,
    /// Inter-plane events routed to a consuming plane.
    pub events_routed: u64,
}

impl CycleKernelStats {
    /// Field-wise sum, for composing per-plane contributions.
    pub fn merge(&mut self, other: CycleKernelStats) {
        self.ticks += other.ticks;
        self.routers_scanned += other.routers_scanned;
        self.vcs_touched += other.vcs_touched;
        self.events_routed += other.events_routed;
    }

    /// Mean routers scanned per executed tick.
    #[must_use]
    pub fn routers_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.routers_scanned as f64 / self.ticks as f64
        }
    }
}

/// A saturating event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self(0)
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Welford online mean/variance accumulator with min/max tracking.
#[derive(Debug, Clone, Default)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0.0 with <2 samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two bucketed histogram for cycle-valued samples.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`, with bucket 0 covering `{0, 1}`.
/// Coarse but allocation-free and adequate for latency-shape reporting.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    acc: Accumulator,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (64 log2 buckets, enough for any `u64`).
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 64],
            acc: Accumulator::new(),
        }
    }

    fn bucket_of(x: u64) -> usize {
        (64 - x.max(1).leading_zeros() as usize).saturating_sub(1)
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        self.buckets[Self::bucket_of(x)] += 1;
        self.acc.record(x as f64);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.acc.count()
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.acc.mean()
    }

    /// Largest sample seen.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.acc.max().unwrap_or(0.0) as u64
    }

    /// Upper bound of the bucket containing quantile `q` (e.g. 0.99).
    /// Returns 0 when empty.
    #[must_use]
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        u64::MAX
    }

    /// Bucket-interpolated percentile estimate (`p` in `0.0..=100.0`).
    ///
    /// Finds the bucket containing rank `p/100 × count` and interpolates
    /// linearly inside it, with the bucket bounds clamped to the observed
    /// min/max — so a histogram whose samples all share one value reports
    /// that value exactly, `percentile(0.0)` is the minimum, and
    /// `percentile(100.0)` is the maximum. Returns `None` when the
    /// histogram is empty: an empty distribution has no order statistics,
    /// and a 0.0 sentinel is indistinguishable from a real zero-latency
    /// sample (callers that want the old sentinel write
    /// `.unwrap_or(0.0)`).
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = p / 100.0 * n as f64;
        let (min, max) = (self.acc.min().unwrap_or(0.0), self.acc.max().unwrap_or(0.0));
        let mut seen = 0u64;
        for (lo, hi, c) in self.nonzero_buckets() {
            let prev = seen as f64;
            seen += c;
            if seen as f64 >= target {
                let lo = (lo as f64).max(min);
                let hi = (hi as f64).min(max);
                let frac = ((target - prev) / c as f64).clamp(0.0, 1.0);
                return Some(lo + frac * (hi - lo).max(0.0));
            }
        }
        Some(max)
    }

    /// Median estimate ([`Histogram::percentile`] at 50); `None` when
    /// empty.
    #[must_use]
    pub fn p50(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// 95th-percentile estimate ([`Histogram::percentile`] at 95); `None`
    /// when empty.
    #[must_use]
    pub fn p95(&self) -> Option<f64> {
        self.percentile(95.0)
    }

    /// 99th-percentile estimate ([`Histogram::percentile`] at 99); `None`
    /// when empty.
    #[must_use]
    pub fn p99(&self) -> Option<f64> {
        self.percentile(99.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.acc.merge(&other.acc);
    }

    /// Non-empty `(bucket_low, bucket_high, count)` triples, for printing.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let lo = if i == 0 { 0 } else { 1u64 << i };
                let hi = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                (lo, hi, c)
            })
            .collect()
    }
}

/// Warm-up gate: ignores samples until a configured cycle horizon so
/// steady-state statistics are not polluted by the cold start.
#[derive(Debug, Clone, Copy)]
pub struct Warmup {
    horizon: Cycle,
}

impl Warmup {
    /// Creates a gate that opens at `horizon`.
    #[must_use]
    pub fn new(horizon: Cycle) -> Self {
        Self { horizon }
    }

    /// True when samples at time `now` should be recorded.
    #[must_use]
    pub fn open(&self, now: Cycle) -> bool {
        now >= self.horizon
    }

    /// The warm-up horizon.
    #[must_use]
    pub fn horizon(&self) -> Cycle {
        self.horizon
    }
}

/// Accepted-throughput meter: flits delivered per node per cycle, measured
/// from the end of warm-up.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    warmup: Warmup,
    nodes: u64,
    flits: u64,
    first: Option<Cycle>,
    last: Cycle,
}

impl ThroughputMeter {
    /// Creates a meter for a `nodes`-node network with the given warm-up.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn new(nodes: u64, warmup: Warmup) -> Self {
        assert!(nodes > 0, "a network has at least one node");
        Self {
            warmup,
            nodes,
            flits: 0,
            first: None,
            last: 0,
        }
    }

    /// Records `flits` flits delivered at cycle `now`.
    pub fn record(&mut self, now: Cycle, flits: u64) {
        if !self.warmup.open(now) {
            return;
        }
        if self.first.is_none() {
            self.first = Some(self.warmup.horizon());
        }
        self.flits += flits;
        self.last = self.last.max(now);
    }

    /// Flits counted after warm-up.
    #[must_use]
    pub fn flits(&self) -> u64 {
        self.flits
    }

    /// Throughput in flits/node/cycle over the measured span, at observation
    /// time `now`.
    #[must_use]
    pub fn rate(&self, now: Cycle) -> f64 {
        let Some(first) = self.first else { return 0.0 };
        let span = now.max(self.last).saturating_sub(first).max(1);
        self.flits as f64 / (span as f64 * self.nodes as f64)
    }
}

/// Fixed-interval time series: records one `(cycle, value)` point every
/// `interval` cycles, for latency-over-time or occupancy-over-time plots.
/// Offerings between sample points are ignored, keeping memory bounded by
/// run length / interval.
#[derive(Debug, Clone)]
pub struct Series {
    interval: u64,
    next: Cycle,
    points: Vec<(Cycle, f64)>,
}

impl Series {
    /// Creates a series sampling every `interval` cycles (first sample at
    /// cycle 0).
    ///
    /// # Panics
    /// Panics if `interval == 0`.
    #[must_use]
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "sampling interval must be positive");
        Self {
            interval,
            next: 0,
            points: Vec::new(),
        }
    }

    /// Offers the current `value` at time `now`; records it iff a sample
    /// is due. Returns whether a point was recorded.
    pub fn offer(&mut self, now: Cycle, value: f64) -> bool {
        if now < self.next {
            return false;
        }
        self.points.push((now, value));
        // Re-anchor so late offers do not cause sample bursts.
        self.next = now + self.interval;
        true
    }

    /// The recorded `(cycle, value)` points, in time order.
    #[must_use]
    pub fn points(&self) -> &[(Cycle, f64)] {
        &self.points
    }

    /// Number of recorded points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn accumulator_matches_naive() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut a = Accumulator::new();
        for &x in &xs {
            a.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((a.mean() - mean).abs() < 1e-12);
        assert!((a.variance() - var).abs() < 1e-12);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(9.0));
    }

    #[test]
    fn accumulator_merge_equals_combined() {
        let mut all = Accumulator::new();
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for i in 0..100 {
            let x = (i * 37 % 11) as f64;
            all.record(x);
            if i % 2 == 0 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-9);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn accumulator_merge_with_empty() {
        let mut a = Accumulator::new();
        a.record(5.0);
        let before = a.clone();
        a.merge(&Accumulator::new());
        assert_eq!(a.count(), before.count());
        let mut empty = Accumulator::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 5.0);
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(1024), 10);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        let mut h = Histogram::new();
        for x in 0..1000u64 {
            h.record(x);
        }
        assert_eq!(h.count(), 1000);
        assert!(h.quantile_bound(0.5) >= 499);
        assert!(h.quantile_bound(1.0) >= 999);
        assert_eq!(h.quantile_bound(0.0), 1); // first nonempty bucket bound

        let mut h2 = Histogram::new();
        h2.record(5000);
        h.merge(&h2);
        assert_eq!(h.count(), 1001);
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn percentile_single_value_is_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7);
        }
        assert_eq!(h.percentile(0.0), Some(7.0));
        assert_eq!(h.p50(), Some(7.0));
        assert_eq!(h.p95(), Some(7.0));
        assert_eq!(h.p99(), Some(7.0));
        assert_eq!(h.percentile(100.0), Some(7.0));
    }

    #[test]
    fn percentile_two_point_distribution() {
        // 50 samples of 1 and 50 samples of 1000: the median sits on the low
        // value, the extremes are exact, and anything above p50 lands in the
        // high bucket between its clamped bounds.
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.record(1);
            h.record(1000);
        }
        assert_eq!(h.p50(), Some(1.0));
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(100.0), Some(1000.0));
        let p75 = h.percentile(75.0).unwrap();
        assert!((512.0..=1000.0).contains(&p75), "p75 = {p75}");
    }

    #[test]
    fn percentile_uniform_within_bucket_resolution() {
        // Uniform 0..=1023: every estimate must fall within one power-of-two
        // bucket of the exact order statistic, and estimates are monotone.
        let mut h = Histogram::new();
        for x in 0..=1023u64 {
            h.record(x);
        }
        let mut prev = -1.0f64;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let est = h.percentile(p).unwrap();
            let exact = (p / 100.0 * 1023.0).round();
            assert!(est >= prev, "non-monotone at p{p}: {est} < {prev}");
            // Bucket i spans [2^i, 2^(i+1)), so the estimate can be off by at
            // most a factor of two from the true order statistic.
            assert!(
                est <= exact.max(1.0) * 2.0 && est * 2.0 >= exact,
                "p{p}: est {est} vs exact {exact}"
            );
            prev = est;
        }
        assert_eq!(h.percentile(100.0), Some(1023.0));
        // Cumulative count hits 512 exactly at bucket 8's top.
        assert_eq!(h.p50(), Some(511.0));
    }

    #[test]
    fn percentile_empty_is_none() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        // One sample makes every percentile well-defined again.
        let mut h = h;
        h.record(42);
        assert_eq!(h.p99(), Some(42.0));
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_bound(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn warmup_gate() {
        let w = Warmup::new(100);
        assert!(!w.open(99));
        assert!(w.open(100));
        assert!(w.open(1000));
    }

    #[test]
    fn throughput_meter_ignores_warmup_and_computes_rate() {
        let mut m = ThroughputMeter::new(4, Warmup::new(100));
        m.record(50, 1000); // discarded
        assert_eq!(m.flits(), 0);
        m.record(100, 40);
        m.record(200, 40);
        assert_eq!(m.flits(), 80);
        // span = 200-100 = 100 cycles, 4 nodes -> 80/(100*4) = 0.2
        assert!((m.rate(200) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn throughput_meter_empty_rate_zero() {
        let m = ThroughputMeter::new(4, Warmup::new(0));
        assert_eq!(m.rate(1000), 0.0);
    }

    #[test]
    fn series_samples_at_interval() {
        let mut s = Series::new(10);
        let mut recorded = 0;
        for now in 0..100 {
            if s.offer(now, now as f64) {
                recorded += 1;
            }
        }
        assert_eq!(recorded, 10);
        assert_eq!(s.len(), 10);
        let pts = s.points();
        assert_eq!(pts[0], (0, 0.0));
        assert_eq!(pts[1].0, 10);
        assert!(pts.windows(2).all(|w| w[1].0 - w[0].0 == 10));
    }

    #[test]
    fn series_handles_sparse_offers() {
        let mut s = Series::new(10);
        assert!(s.offer(0, 1.0));
        // Nothing offered for a long gap; the next offer records once and
        // re-anchors (no burst of catch-up samples).
        assert!(s.offer(55, 2.0));
        assert!(!s.offer(56, 3.0));
        assert!(!s.offer(64, 4.0));
        assert!(s.offer(65, 5.0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn series_zero_interval_rejected() {
        let _ = Series::new(0);
    }
}
