//! Simulation time.
//!
//! All wavesim models advance in units of the *base clock* of the wormhole
//! core (switch `S0`). Wave-pipelined resources that run at a multiple of
//! the base clock are expressed through bandwidth multipliers rather than a
//! second clock domain, matching how the ICPP'96 paper reduces its Spice
//! results to a single clock-ratio parameter.

/// A point in simulated time, measured in base-clock cycles since reset.
pub type Cycle = u64;

/// A span of simulated time in base-clock cycles.
pub type Duration = u64;

/// Ceiling division helper used when converting flit counts moved at a
/// fractional per-cycle rate into whole cycles.
///
/// `cycles_for(flits, num, den)` returns the number of base cycles needed to
/// move `flits` flits at a rate of `num/den` flits per cycle.
///
/// # Panics
/// Panics if `num` is zero (a zero-bandwidth resource can never complete).
///
/// # Examples
/// ```
/// // 128 flits at 2 flits/cycle -> 64 cycles
/// assert_eq!(wavesim_sim::time::cycles_for(128, 2, 1), 64);
/// // 10 flits at 4/2 = 2 flits/cycle -> 5 cycles
/// assert_eq!(wavesim_sim::time::cycles_for(10, 4, 2), 5);
/// // 3 flits at 1/2 flit per cycle -> 6 cycles
/// assert_eq!(wavesim_sim::time::cycles_for(3, 1, 2), 6);
/// ```
#[must_use]
pub fn cycles_for(flits: u64, num: u64, den: u64) -> Duration {
    assert!(num > 0, "bandwidth numerator must be positive");
    // ceil(flits * den / num)
    let total = flits
        .checked_mul(den)
        .expect("flit count * clock denominator overflowed u64");
    total.div_ceil(num)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_rates() {
        assert_eq!(cycles_for(0, 1, 1), 0);
        assert_eq!(cycles_for(1, 1, 1), 1);
        assert_eq!(cycles_for(100, 1, 1), 100);
        assert_eq!(cycles_for(100, 4, 1), 25);
    }

    #[test]
    fn fractional_rates_round_up() {
        assert_eq!(cycles_for(1, 4, 1), 1);
        assert_eq!(cycles_for(5, 4, 1), 2);
        assert_eq!(cycles_for(5, 4, 2), 3);
        assert_eq!(cycles_for(7, 3, 2), 5); // ceil(14/3)
    }

    #[test]
    #[should_panic(expected = "bandwidth numerator")]
    fn zero_rate_panics() {
        let _ = cycles_for(1, 0, 1);
    }
}
