//! Hybrid cycle/event simulation driver.
//!
//! Flit-level wormhole models need to do work *every* cycle while traffic is
//! in flight, but pure circuit traffic and idle phases are naturally
//! event-driven. [`Engine`] supports both: each step it (1) delivers all
//! events due at the current cycle, (2) calls the model's `tick`, then
//! (3) advances time by one cycle if the model reports itself busy, or
//! fast-forwards straight to the next scheduled event otherwise.
//!
//! The engine never invents time: if the model is idle and no events are
//! pending, the simulation is quiescent and the run stops.

use crate::event::EventQueue;
use crate::time::Cycle;

/// A simulated system driven by the [`Engine`].
pub trait Model {
    /// The event payload type this model schedules for itself.
    type Event;

    /// Called once per simulated cycle after due events were delivered.
    fn tick(&mut self, now: Cycle, queue: &mut EventQueue<Self::Event>);

    /// Called for each event due at the current cycle, in FIFO order.
    fn handle(&mut self, now: Cycle, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// True while the model has cycle-by-cycle work (flits in flight,
    /// probes walking, arbitration pending). When false, the engine may
    /// fast-forward over idle cycles to the next scheduled event.
    fn busy(&self) -> bool;

    /// The earliest cycle ≥ `now` at which the model itself (independent
    /// of the event calendar) next needs a `tick`, or `None` when the
    /// calendar alone drives it. The default preserves the classic
    /// busy-bit contract: tick every cycle while busy, never otherwise.
    /// Purely event-driven models override this to return `None`
    /// unconditionally; models that can predict their next interesting
    /// cycle may return a later time to let the engine skip dead ticks.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if self.busy() {
            Some(now)
        } else {
            None
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The cycle limit was reached.
    Deadline,
    /// Model idle and no events pending — nothing can ever happen again.
    Quiescent,
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineReport {
    /// Cycle at which the run stopped.
    pub now: Cycle,
    /// Number of `tick` invocations performed during this run.
    pub ticks: u64,
    /// Number of events delivered during this run.
    pub events_delivered: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// The simulation driver: clock + event calendar + model.
#[derive(Debug)]
pub struct Engine<M: Model> {
    model: M,
    queue: EventQueue<M::Event>,
    now: Cycle,
}

impl<M: Model> Engine<M> {
    /// Wraps `model` with a fresh clock and empty calendar.
    pub fn new(model: M) -> Self {
        Self {
            model,
            queue: EventQueue::new(),
            now: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Shared access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Exclusive access to the model (e.g. to inject traffic between runs).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Exclusive access to the event calendar (e.g. to pre-seed arrivals).
    pub fn queue_mut(&mut self) -> &mut EventQueue<M::Event> {
        &mut self.queue
    }

    /// Exclusive access to model and calendar together, for model entry
    /// points that schedule their own follow-up events.
    pub fn model_and_queue_mut(&mut self) -> (&mut M, &mut EventQueue<M::Event>) {
        (&mut self.model, &mut self.queue)
    }

    /// Executes one simulation step at the current time: delivers due
    /// events, ticks the model, then advances the clock. Returns `false`
    /// when the system is quiescent (clock did not advance and never will).
    pub fn step(&mut self) -> bool {
        self.step_counting(&mut 0)
    }

    fn step_counting(&mut self, events_delivered: &mut u64) -> bool {
        while let Some(ev) = self.queue.pop_due(self.now) {
            self.model.handle(self.now, ev.event, &mut self.queue);
            *events_delivered += 1;
        }
        self.model.tick(self.now, &mut self.queue);
        // Next wake-up: the earlier of the model's own next interesting
        // cycle and the next calendar entry. A busy model's default hint
        // is `now + 1`, reproducing the classic cycle-by-cycle advance.
        let hint = self.model.next_activity(self.now + 1);
        let target = match (hint, self.queue.next_time()) {
            (Some(h), Some(q)) => Some(h.min(q)),
            (h, q) => h.or(q),
        };
        match target {
            // Never backwards: the model may have scheduled an event for
            // the current cycle, in which case we advance by one and
            // deliver it next step.
            Some(t) => {
                self.now = t.max(self.now + 1);
                true
            }
            None => false,
        }
    }

    /// Runs until the clock reaches `deadline` or the system quiesces.
    pub fn run_until(&mut self, deadline: Cycle) -> EngineReport {
        let mut ticks = 0u64;
        let mut events = 0u64;
        while self.now < deadline {
            ticks += 1;
            if !self.step_counting(&mut events) {
                return EngineReport {
                    now: self.now,
                    ticks,
                    events_delivered: events,
                    stop: StopReason::Quiescent,
                };
            }
        }
        EngineReport {
            now: self.now,
            ticks,
            events_delivered: events,
            stop: StopReason::Deadline,
        }
    }

    /// Runs until quiescent, with a hard safety deadline to bound runaway
    /// simulations (a livelocked protocol would otherwise spin forever —
    /// the verify crate turns a `Deadline` stop into a diagnosis).
    pub fn run_to_quiescence(&mut self, max: Cycle) -> EngineReport {
        self.run_until(max)
    }

    /// Consumes the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy model: a pipeline that holds `work` tokens; each tick retires
    /// one token; events add tokens.
    struct Toy {
        work: u64,
        ticked_at: Vec<Cycle>,
        handled: Vec<(Cycle, u64)>,
    }

    impl Model for Toy {
        type Event = u64;
        fn tick(&mut self, now: Cycle, _q: &mut EventQueue<u64>) {
            self.ticked_at.push(now);
            self.work = self.work.saturating_sub(1);
        }
        fn handle(&mut self, now: Cycle, ev: u64, _q: &mut EventQueue<u64>) {
            self.handled.push((now, ev));
            self.work += ev;
        }
        fn busy(&self) -> bool {
            self.work > 0
        }
    }

    fn toy(work: u64) -> Toy {
        Toy {
            work,
            ticked_at: Vec::new(),
            handled: Vec::new(),
        }
    }

    #[test]
    fn quiesces_when_done() {
        let mut e = Engine::new(toy(3));
        let rep = e.run_until(1000);
        assert_eq!(rep.stop, StopReason::Quiescent);
        assert!(rep.now <= 4);
        assert!(!e.model().busy());
    }

    #[test]
    fn deadline_stops_busy_model() {
        let mut e = Engine::new(toy(1_000_000));
        let rep = e.run_until(50);
        assert_eq!(rep.stop, StopReason::Deadline);
        assert_eq!(rep.now, 50);
        assert_eq!(rep.ticks, 50);
    }

    #[test]
    fn fast_forwards_over_idle_gaps() {
        let mut e = Engine::new(toy(0));
        e.queue_mut().schedule(1000, 5);
        let rep = e.run_until(10_000);
        assert_eq!(rep.stop, StopReason::Quiescent);
        // One idle tick at cycle 0, jump to 1000, then ~5 busy ticks.
        assert!(rep.now >= 1004 && rep.now <= 1007, "now={}", rep.now);
        assert_eq!(e.model().handled, vec![(1000, 5)]);
        // The engine must NOT have ticked cycles 1..999 one by one.
        assert!(rep.ticks < 20, "ticks={}", rep.ticks);
    }

    /// Model that predicts its next interesting cycle: work only lands on
    /// multiples of `period`, and `next_activity` says so.
    struct Strided {
        remaining: u64,
        period: u64,
        ticked_at: Vec<Cycle>,
    }

    impl Model for Strided {
        type Event = u64;
        fn tick(&mut self, now: Cycle, _q: &mut EventQueue<u64>) {
            self.ticked_at.push(now);
            self.remaining = self.remaining.saturating_sub(1);
        }
        fn handle(&mut self, _now: Cycle, _ev: u64, _q: &mut EventQueue<u64>) {}
        fn busy(&self) -> bool {
            self.remaining > 0
        }
        fn next_activity(&self, now: Cycle) -> Option<Cycle> {
            (self.remaining > 0).then(|| now.next_multiple_of(self.period))
        }
    }

    #[test]
    fn next_activity_hint_skips_dead_cycles() {
        let mut e = Engine::new(Strided {
            remaining: 4,
            period: 100,
            ticked_at: Vec::new(),
        });
        let rep = e.run_until(10_000);
        assert_eq!(rep.stop, StopReason::Quiescent);
        assert_eq!(e.model().ticked_at, vec![0, 100, 200, 300]);
        assert_eq!(rep.ticks, 4, "dead cycles between strides not ticked");
    }

    #[test]
    fn calendar_events_preempt_a_later_activity_hint() {
        let mut e = Engine::new(Strided {
            remaining: 4,
            period: 100,
            ticked_at: Vec::new(),
        });
        e.queue_mut().schedule(150, 9);
        let rep = e.run_until(10_000);
        assert_eq!(rep.stop, StopReason::Quiescent);
        // The event at 150 wakes the engine between strides.
        assert_eq!(e.model().ticked_at, vec![0, 100, 150, 200]);
    }

    #[test]
    fn events_delivered_in_order_with_ticks() {
        let mut e = Engine::new(toy(0));
        e.queue_mut().schedule(3, 1);
        e.queue_mut().schedule(3, 2);
        e.queue_mut().schedule(7, 3);
        let rep = e.run_until(100);
        assert_eq!(rep.events_delivered, 3);
        assert_eq!(
            e.model().handled,
            vec![(3, 1), (3, 2), (7, 3)],
            "same-cycle events keep FIFO order"
        );
    }

    #[test]
    fn step_returns_false_only_at_quiescence() {
        let mut e = Engine::new(toy(3));
        assert!(e.step()); // work 3 -> 2, still busy
        assert!(e.step()); // work 2 -> 1, still busy
                           // Third step drains the last token; model reports idle and the
                           // empty calendar makes the system quiescent.
        assert!(!e.step());
    }
}
