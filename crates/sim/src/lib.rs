//! # wavesim-sim — simulation kernel
//!
//! The foundation substrate for the wave-switching reproduction: a small,
//! deterministic discrete-event simulation kernel tailored to cycle-accurate
//! interconnection-network models.
//!
//! The IPPS'97 paper (and its companion ICPP'96 architecture paper) evaluate
//! everything by simulation, but no simulator survives from that era and no
//! open-source NoC simulator ecosystem exists in Rust, so this crate builds
//! one from scratch. It provides:
//!
//! * [`EventQueue`] — a time-ordered event calendar with FIFO tie-breaking,
//!   the core of any DES kernel;
//! * [`Engine`] — a hybrid cycle/event driver: models that are "hot" tick
//!   every cycle, idle models fast-forward to the next scheduled event;
//! * [`SimRng`] — a seedable, splittable deterministic random source so that
//!   every experiment is exactly reproducible from its seed;
//! * [`stats`] — counters, histograms, Welford mean/variance accumulators,
//!   warm-up-aware latency samplers and throughput meters.
//!
//! Everything upstream (topology, wormhole fabric, wave router, CLRP/CARP)
//! composes these pieces; nothing in this crate knows about networks.

#![warn(missing_docs)]

pub mod bitset;
pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use bitset::BitSet;
pub use engine::{Engine, EngineReport, Model, StopReason};
pub use event::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use stats::CycleKernelStats;
pub use time::Cycle;
