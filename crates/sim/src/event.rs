//! Time-ordered event calendar.
//!
//! [`EventQueue`] is a classic discrete-event calendar built on a binary
//! heap, with two properties the network models rely on:
//!
//! 1. **Stable ordering** — events scheduled for the same cycle are
//!    delivered in the order they were scheduled (FIFO tie-breaking via a
//!    monotonically increasing sequence number). Without this, two control
//!    flits released in the same cycle could race nondeterministically and
//!    break reproducibility.
//! 2. **No global time regression** — scheduling an event before the last
//!    popped timestamp is a logic error and panics in debug builds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// An event plus its delivery time and tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Cycle at which the event fires.
    pub at: Cycle,
    /// Monotonic sequence number assigned at scheduling time; orders
    /// same-cycle events FIFO.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, within a
        // cycle, the first-scheduled) event is at the top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event calendar.
///
/// # Examples
/// ```
/// use wavesim_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5, "b");
/// q.schedule(3, "a");
/// q.schedule(5, "c");
/// assert_eq!(q.pop().map(|e| (e.at, e.event)), Some((3, "a")));
/// assert_eq!(q.pop().map(|e| (e.at, e.event)), Some((5, "b")));
/// assert_eq!(q.pop().map(|e| (e.at, e.event)), Some((5, "c")));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    last_popped: Cycle,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            last_popped: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty calendar with room for `cap` events.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            last_popped: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `event` to fire at cycle `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` precedes the timestamp of the most
    /// recently popped event (time must not run backwards).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        debug_assert!(
            at >= self.last_popped,
            "event scheduled at {at} but time already advanced to {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.last_popped = ev.at;
        Some(ev)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`. Leaves later events untouched.
    pub fn pop_due(&mut self, now: Cycle) -> Option<ScheduledEvent<E>> {
        if self.next_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Timestamp of the earliest pending event.
    #[must_use]
    pub fn next_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (for engine reports).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drops all pending events, keeping sequence numbering intact.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for t in [9u64, 2, 7, 4, 0, 11] {
            q.schedule(t, t);
        }
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e.at);
        }
        assert_eq!(out, vec![0, 2, 4, 7, 9, 11]);
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(5, 'x');
        q.schedule(10, 'y');
        assert!(q.pop_due(4).is_none());
        assert_eq!(q.pop_due(5).unwrap().event, 'x');
        assert!(q.pop_due(9).is_none());
        assert_eq!(q.pop_due(100).unwrap().event, 'y');
        assert!(q.pop_due(u64::MAX).is_none());
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(1, "a");
        q.schedule(3, "c");
        assert_eq!(q.pop().unwrap().event, "a");
        q.schedule(2, "b");
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time already advanced")]
    fn time_regression_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn counts() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
    }
}
