//! Multi-word `u64` bitsets for active-set scheduling.
//!
//! The cycle kernels keep "which routers / VCs / sources might have work"
//! as dense bitsets and iterate only the set bits, so per-tick cost tracks
//! the in-flight population instead of the structure size. Arbitration in
//! the wormhole pipeline is round-robin, so besides the usual ascending
//! scan the set supports a *rotated* scan that starts at an arbitrary
//! index and wraps — visiting exactly the indices a modular
//! `for off in 0..n { i = (start + off) % n }` sweep would have accepted,
//! in the same order, but in O(set bits) instead of O(n).

/// A fixed-capacity bitset over indices `0..capacity`, backed by `u64`
/// words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set over the domain `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Domain size (largest index + 1 this set can hold).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`.
    ///
    /// # Panics
    /// Panics (in debug builds via the index check) when `i` is outside the
    /// domain.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.capacity, "bit {i} out of domain {}", self.capacity);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.capacity, "bit {i} out of domain {}", self.capacity);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// True when `i` is in the set.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.capacity, "bit {i} out of domain {}", self.capacity);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// The backing words (low index = low bits), for popcount-style
    /// instrumentation.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Visits every set bit in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                f(wi * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }

    /// Visits set bits in rotated order — `start..capacity` then
    /// `0..start` — stopping early when `f` returns `true`. This is the
    /// round-robin arbitration scan: identical visit order to the modular
    /// index sweep, restricted to set bits.
    pub fn for_each_wrapping(&self, start: usize, mut f: impl FnMut(usize) -> bool) {
        if self.words.is_empty() {
            return;
        }
        debug_assert!(start < self.capacity);
        let sw = start / 64;
        let sb = start % 64;
        // Upper segment: bits at indices >= start.
        let mut word = self.words[sw] & (u64::MAX << sb);
        let mut wi = sw;
        loop {
            while word != 0 {
                if f(wi * 64 + word.trailing_zeros() as usize) {
                    return;
                }
                word &= word - 1;
            }
            wi += 1;
            if wi >= self.words.len() {
                break;
            }
            word = self.words[wi];
        }
        // Lower segment: bits at indices < start.
        for wi in 0..=sw {
            let mut word = self.words[wi];
            if wi == sw {
                if sb == 0 {
                    break;
                }
                word &= !(u64::MAX << sb);
            }
            while word != 0 {
                if f(wi * 64 + word.trailing_zeros() as usize) {
                    return;
                }
                word &= word - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_wrapping(b: &BitSet, start: usize) -> Vec<usize> {
        let mut out = Vec::new();
        b.for_each_wrapping(start, |i| {
            out.push(i);
            false
        });
        out
    }

    /// Reference: the modular sweep the bitset scan replaces.
    fn naive_wrapping(b: &BitSet, start: usize) -> Vec<usize> {
        (0..b.capacity())
            .map(|off| (start + off) % b.capacity())
            .filter(|&i| b.get(i))
            .collect()
    }

    #[test]
    fn set_clear_get_count() {
        let mut b = BitSet::new(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert_eq!(b.count(), 4);
        assert!(b.get(63) && b.get(64));
        b.clear(63);
        assert!(!b.get(63));
        assert_eq!(b.count(), 3);
        b.clear_all();
        assert!(b.is_empty());
    }

    #[test]
    fn ascending_iteration_order() {
        let mut b = BitSet::new(200);
        for i in [5, 64, 65, 127, 128, 199] {
            b.set(i);
        }
        let mut seen = Vec::new();
        b.for_each(|i| seen.push(i));
        assert_eq!(seen, vec![5, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn wrapping_iteration_matches_modular_sweep_everywhere() {
        // Exhaustive over every start index for an irregular pattern that
        // crosses word boundaries.
        let mut b = BitSet::new(150);
        for i in [0, 1, 7, 63, 64, 70, 127, 128, 149] {
            b.set(i);
        }
        for start in 0..150 {
            assert_eq!(
                collect_wrapping(&b, start),
                naive_wrapping(&b, start),
                "start={start}"
            );
        }
    }

    #[test]
    fn wrapping_iteration_small_domain() {
        let mut b = BitSet::new(10);
        b.set(2);
        b.set(9);
        assert_eq!(collect_wrapping(&b, 3), vec![9, 2]);
        assert_eq!(collect_wrapping(&b, 0), vec![2, 9]);
        assert_eq!(collect_wrapping(&b, 9), vec![9, 2]);
    }

    #[test]
    fn wrapping_iteration_early_exit() {
        let mut b = BitSet::new(64);
        b.set(10);
        b.set(20);
        b.set(30);
        let mut seen = Vec::new();
        b.for_each_wrapping(15, |i| {
            seen.push(i);
            true // stop at the first hit
        });
        assert_eq!(seen, vec![20]);
    }

    #[test]
    fn empty_domain_is_inert() {
        let b = BitSet::new(0);
        assert_eq!(b.count(), 0);
        let mut hit = false;
        b.for_each(|_| hit = true);
        assert!(!hit);
    }
}
