//! Deterministic randomness.
//!
//! Every stochastic decision in a wavesim experiment (traffic arrivals,
//! destination draws, arbitration tie-breaks when configured random, fault
//! placement) flows from a single [`SimRng`] seeded by the experiment
//! configuration. Identical seed → identical simulation, bit for bit, which
//! is what lets EXPERIMENTS.md publish reproducible series.
//!
//! `SimRng` wraps ChaCha12: fast, high quality, and — unlike the `StdRng`
//! alias — guaranteed stable across `rand` releases. Sub-streams for
//! independent components (one per traffic source, one per router) are
//! derived with [`SimRng::split`] so adding a consumer never perturbs the
//! draws seen by existing consumers.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A deterministic, splittable random source.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit experiment seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-stream for component `index`.
    ///
    /// Uses ChaCha's stream mechanism: each split shares the key but uses a
    /// distinct stream id, so sub-streams never overlap regardless of how
    /// many values each consumes.
    #[must_use]
    pub fn split(&self, index: u64) -> Self {
        let mut child = self.inner.clone();
        child.set_stream(index.wrapping_add(1)); // stream 0 is the parent
        child.set_word_pos(0);
        Self { inner: child }
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `usize` draw in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Bernoulli draw with probability `p` (clamped to `\[0, 1\]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Geometric inter-arrival sample for a Bernoulli-per-cycle process with
    /// per-cycle probability `p`: number of cycles until (and including) the
    /// next success. Returns `u64::MAX` when `p` is ~0.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 1;
        }
        if p <= f64::MIN_POSITIVE {
            return u64::MAX;
        }
        // Inverse-CDF sampling: ceil(ln(1-u)/ln(1-p)).
        let u = self.unit();
        let val = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
        if val < 1.0 {
            1
        } else if val >= u64::MAX as f64 {
            u64::MAX
        } else {
            val as u64
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// A fast non-cryptographic generator seeded from this stream, for hot
    /// loops where ChaCha's throughput would dominate the profile.
    pub fn fast(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.inner.next_u64())
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams from different seeds should diverge");
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::new(99);
        let mut c0 = root.split(0);
        let mut c1 = root.split(1);
        let v0: Vec<u64> = (0..16).map(|_| c0.next_u64()).collect();
        let v1: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        assert_ne!(v0, v1);
        // Re-splitting yields the same stream regardless of parent usage.
        let mut root2 = SimRng::new(99);
        let _ = root2.next_u64();
        // split derives from the *initial* clone state of root2's inner rng,
        // which has advanced; so derive from a fresh root instead.
        let mut c0_again = SimRng::new(99).split(0);
        let v0_again: Vec<u64> = (0..16).map(|_| c0_again.next_u64()).collect();
        assert_eq!(v0, v0_again);
    }

    #[test]
    fn below_and_index_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn geometric_edge_cases() {
        let mut r = SimRng::new(5);
        assert_eq!(r.geometric(1.0), 1);
        assert_eq!(r.geometric(0.0), u64::MAX);
        for _ in 0..100 {
            assert!(r.geometric(0.5) >= 1);
        }
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut r = SimRng::new(6);
        let p = 0.1;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 1.0 / p).abs() < 0.5,
            "mean {mean} should approximate {}",
            1.0 / p
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::new(9);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
