//! Deterministic randomness.
//!
//! Every stochastic decision in a wavesim experiment (traffic arrivals,
//! destination draws, arbitration tie-breaks when configured random, fault
//! placement) flows from a single [`SimRng`] seeded by the experiment
//! configuration. Identical seed → identical simulation, bit for bit, which
//! is what lets EXPERIMENTS.md publish reproducible series.
//!
//! `SimRng` is a self-contained ChaCha12 generator (the build environment
//! is offline, so no external RNG crates): fast, high quality, and — being
//! implemented here — guaranteed stable across toolchain upgrades.
//! Sub-streams for independent components (one per traffic source, one per
//! router) are derived with [`SimRng::split`] via ChaCha's 64-bit stream
//! id, so adding a consumer never perturbs the draws seen by existing
//! consumers and sub-streams never overlap regardless of how many values
//! each consumes.

/// Number of ChaCha double-rounds (12 rounds total, as in ChaCha12).
const CHACHA_ROUNDS: usize = 12;

/// A deterministic, splittable random source.
#[derive(Debug, Clone)]
pub struct SimRng {
    /// 256-bit key derived from the seed (shared by all sub-streams).
    key: [u32; 8],
    /// 64-bit stream id (the ChaCha nonce words): selects the sub-stream.
    stream: u64,
    /// 64-bit block counter within the stream.
    counter: u64,
    /// Current output block (16 words) and read cursor.
    block: [u32; 16],
    cursor: usize,
}

/// SplitMix64 step — used only to expand the 64-bit seed into a key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// The ChaCha block function: key + counter + stream id → 16 output words.
fn chacha_block(key: &[u32; 8], counter: u64, stream: u64) -> [u32; 16] {
    let mut s: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let initial = s;
    for _ in 0..CHACHA_ROUNDS / 2 {
        // Column round.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (word, init) in s.iter_mut().zip(initial) {
        *word = word.wrapping_add(init);
    }
    s
}

impl SimRng {
    /// Creates a generator from a 64-bit experiment seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let x = splitmix64(&mut sm);
            pair[0] = x as u32;
            pair[1] = (x >> 32) as u32;
        }
        Self {
            key,
            stream: 0,
            counter: 0,
            block: [0; 16],
            cursor: 16, // force a refill on first draw
        }
    }

    /// Derives an independent sub-stream for component `index`.
    ///
    /// Uses ChaCha's stream mechanism: each split shares the key but uses a
    /// distinct stream id, so sub-streams never overlap regardless of how
    /// many values each consumes. Splitting depends only on the seed, not
    /// on how far the parent has advanced.
    #[must_use]
    pub fn split(&self, index: u64) -> Self {
        Self {
            key: self.key,
            stream: index.wrapping_add(1), // stream 0 is the parent
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    /// Next raw 32-bit draw.
    pub fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.block = chacha_block(&self.key, self.counter, self.stream);
            self.counter = self.counter.wrapping_add(1);
            self.cursor = 0;
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Unbiased rejection sampling: reject draws from the short final
        // partial range of the u64 space.
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform `usize` draw in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index(0) is meaningless");
        self.below(bound as u64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `\[0, 1\]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit() < p
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard u64 → f64 construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Geometric inter-arrival sample for a Bernoulli-per-cycle process with
    /// per-cycle probability `p`: number of cycles until (and including) the
    /// next success. Returns `u64::MAX` when `p` is ~0.
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 1;
        }
        if p <= f64::MIN_POSITIVE {
            return u64::MAX;
        }
        // Inverse-CDF sampling: ceil(ln(1-u)/ln(1-p)).
        let u = self.unit();
        let val = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
        if val < 1.0 {
            1
        } else if val >= u64::MAX as f64 {
            u64::MAX
        } else {
            val as u64
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// A fast non-cryptographic generator seeded from this stream, for hot
    /// loops where ChaCha's throughput would dominate the profile.
    pub fn fast(&mut self) -> FastRng {
        FastRng::new(self.next_u64())
    }
}

/// A small, fast xoshiro256++ generator for hot loops. Not splittable; seed
/// it from a [`SimRng`] stream via [`SimRng::fast`].
#[derive(Debug, Clone)]
pub struct FastRng {
    s: [u64; 4],
}

impl FastRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: std::array::from_fn(|_| splitmix64(&mut sm)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3, "streams from different seeds should diverge");
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::new(99);
        let mut c0 = root.split(0);
        let mut c1 = root.split(1);
        let v0: Vec<u64> = (0..16).map(|_| c0.next_u64()).collect();
        let v1: Vec<u64> = (0..16).map(|_| c1.next_u64()).collect();
        assert_ne!(v0, v1);
        // Splitting is insensitive to parent stream position.
        let mut root2 = SimRng::new(99);
        let _ = root2.next_u64();
        let mut c0_again = root2.split(0);
        let v0_again: Vec<u64> = (0..16).map(|_| c0_again.next_u64()).collect();
        assert_eq!(v0, v0_again);
    }

    #[test]
    fn split_differs_from_parent() {
        let root = SimRng::new(123);
        let mut parent = root.clone();
        let mut child = root.split(0);
        let vp: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(vp, vc);
    }

    #[test]
    fn below_and_index_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(12);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn geometric_edge_cases() {
        let mut r = SimRng::new(5);
        assert_eq!(r.geometric(1.0), 1);
        assert_eq!(r.geometric(0.0), u64::MAX);
        for _ in 0..100 {
            assert!(r.geometric(0.5) >= 1);
        }
    }

    #[test]
    fn geometric_mean_close_to_inverse_p() {
        let mut r = SimRng::new(6);
        let p = 0.1;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - 1.0 / p).abs() < 0.5,
            "mean {mean} should approximate {}",
            1.0 / p
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::new(9);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    fn fast_rng_is_deterministic() {
        let mut a = FastRng::new(77);
        let mut b = FastRng::new(77);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn chacha_reference_vector() {
        // ChaCha block function structural check: the all-zero key/counter
        // block must differ from counter 1 and from stream 1, and repeated
        // evaluation is stable.
        let key = [0u32; 8];
        let b0 = chacha_block(&key, 0, 0);
        let b1 = chacha_block(&key, 1, 0);
        let s1 = chacha_block(&key, 0, 1);
        assert_ne!(b0, b1);
        assert_ne!(b0, s1);
        assert_eq!(b0, chacha_block(&key, 0, 0));
    }
}
