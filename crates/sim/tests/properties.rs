//! Randomized-but-deterministic tests of the simulation kernel's
//! contracts. Each case sweeps many configurations drawn from a seeded
//! [`SimRng`], so the coverage is property-style while the run is exactly
//! reproducible (the offline build has no property-testing framework).

use wavesim_sim::stats::{Accumulator, Histogram};
use wavesim_sim::time::cycles_for;
use wavesim_sim::{EventQueue, SimRng};

/// Popping returns events sorted by time, FIFO within a timestamp,
/// regardless of the schedule order.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    let mut rng = SimRng::new(0xbeef);
    for case in 0..50 {
        let n = 1 + rng.index(200);
        let mut q = EventQueue::new();
        for i in 0..n {
            let t = rng.below(1_000);
            q.schedule(t, (t, i));
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e.event);
        }
        assert_eq!(popped.len(), n, "case {case}");
        for w in popped.windows(2) {
            let (t1, i1) = w[0];
            let (t2, i2) = w[1];
            assert!(
                t1 < t2 || (t1 == t2 && i1 < i2),
                "case {case}: order violated: ({t1},{i1}) before ({t2},{i2})"
            );
        }
    }
}

/// Interleaved scheduling and popping never reorders already-due work.
#[test]
fn event_queue_interleaved() {
    let mut rng = SimRng::new(0xcafe);
    for _ in 0..50 {
        let ops = 1 + rng.index(100);
        let mut q = EventQueue::new();
        let mut clock = 0u64;
        let mut last: Option<u64> = None;
        for _ in 0..ops {
            if rng.chance(0.5) {
                if let Some(e) = q.pop() {
                    if let Some(prev) = last {
                        assert!(e.at >= prev);
                    }
                    last = Some(e.at);
                    clock = clock.max(e.at);
                }
            } else {
                q.schedule(clock + rng.below(100), ());
            }
        }
    }
}

/// `cycles_for` is the exact ceiling of flits·den/num.
#[test]
fn cycles_for_is_exact_ceiling() {
    let mut rng = SimRng::new(0xf00d);
    for _ in 0..2_000 {
        let flits = rng.below(1_000_000);
        let num = 1 + rng.below(63);
        let den = 1 + rng.below(63);
        let c = cycles_for(flits, num, den);
        // c cycles at num/den flits per cycle move at least `flits` flits...
        assert!(c * num >= flits * den);
        // ...and c-1 cycles do not (when c > 0).
        if c > 0 {
            assert!((c - 1) * num < flits * den);
        }
    }
}

/// Merging accumulators in any split equals accumulating everything.
#[test]
fn accumulator_merge_invariant() {
    let mut rng = SimRng::new(0x5eed);
    for _ in 0..50 {
        let n = 1 + rng.index(200);
        let xs: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.5) * 2e6).collect();
        let split = rng.index(n);
        let mut all = Accumulator::new();
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i < split {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        assert!((a.variance() - all.variance()).abs() < 1e-3 * (1.0 + all.variance()));
    }
}

/// Histogram quantile bounds bracket the true quantiles and merging
/// preserves counts.
#[test]
fn histogram_quantiles_bracket() {
    let mut rng = SimRng::new(0xd1ce);
    for _ in 0..50 {
        let n = 1 + rng.index(300);
        let xs: Vec<u64> = (0..n).map(|_| rng.below(1_000_000)).collect();
        let mut h = Histogram::new();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for &x in &xs {
            h.record(x);
        }
        assert_eq!(h.count(), xs.len() as u64);
        for &q in &[0.5, 0.9, 0.99, 1.0] {
            let bound = h.quantile_bound(q);
            let idx = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
            assert!(
                bound >= sorted[idx],
                "q={q}: bound {bound} below true quantile {}",
                sorted[idx]
            );
        }
        // Merge with itself doubles the count, same max bucket.
        let mut h2 = h.clone();
        h2.merge(&h);
        assert_eq!(h2.count(), 2 * h.count());
        assert_eq!(h2.quantile_bound(1.0), h.quantile_bound(1.0));
    }
}
