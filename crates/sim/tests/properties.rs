//! Property-based tests of the simulation kernel's contracts.

use proptest::prelude::*;
use wavesim_sim::stats::{Accumulator, Histogram};
use wavesim_sim::time::cycles_for;
use wavesim_sim::EventQueue;

proptest! {
    /// Popping returns events sorted by time, FIFO within a timestamp,
    /// regardless of the schedule order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, (t, i));
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e.event);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let (t1, i1) = w[0];
            let (t2, i2) = w[1];
            prop_assert!(t1 < t2 || (t1 == t2 && i1 < i2),
                "order violated: ({t1},{i1}) before ({t2},{i2})");
        }
    }

    /// Interleaved scheduling and popping never reorders already-due work.
    #[test]
    fn event_queue_interleaved(ops in proptest::collection::vec((0u64..100, any::<bool>()), 1..100)) {
        let mut q = EventQueue::new();
        let mut clock = 0u64;
        let mut last: Option<u64> = None;
        for (dt, pop) in ops {
            if pop {
                if let Some(e) = q.pop() {
                    if let Some(prev) = last {
                        prop_assert!(e.at >= prev);
                    }
                    last = Some(e.at);
                    clock = clock.max(e.at);
                }
            } else {
                q.schedule(clock + dt, ());
            }
        }
    }

    /// `cycles_for` is the exact ceiling of flits·den/num.
    #[test]
    fn cycles_for_is_exact_ceiling(flits in 0u64..1_000_000, num in 1u64..64, den in 1u64..64) {
        let c = cycles_for(flits, num, den);
        // c cycles at num/den flits per cycle move at least `flits` flits...
        prop_assert!(c * num >= flits * den);
        // ...and c-1 cycles do not (when c > 0).
        if c > 0 {
            prop_assert!((c - 1) * num < flits * den);
        }
    }

    /// Merging accumulators in any split equals accumulating everything.
    #[test]
    fn accumulator_merge_invariant(xs in proptest::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
        let split = split % xs.len();
        let mut all = Accumulator::new();
        let mut a = Accumulator::new();
        let mut b = Accumulator::new();
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i < split { a.record(x) } else { b.record(x) };
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6 * (1.0 + all.mean().abs()));
        prop_assert!((a.variance() - all.variance()).abs() < 1e-3 * (1.0 + all.variance()));
    }

    /// Histogram quantile bounds bracket the true quantiles and merging
    /// preserves counts.
    #[test]
    fn histogram_quantiles_bracket(xs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        for &q in &[0.5, 0.9, 0.99, 1.0] {
            let bound = h.quantile_bound(q);
            let idx = ((q * xs.len() as f64).ceil() as usize).clamp(1, xs.len()) - 1;
            prop_assert!(bound >= sorted[idx],
                "q={q}: bound {bound} below true quantile {}", sorted[idx]);
        }
        // Merge with itself doubles the count, same max bucket.
        let mut h2 = h.clone();
        h2.merge(&h);
        prop_assert_eq!(h2.count(), 2 * h.count());
        prop_assert_eq!(h2.quantile_bound(1.0), h.quantile_bound(1.0));
    }
}
