//! # wavesim-model — machine-checking Theorems 1–4
//!
//! The paper *proves* that the wave-switching protocols are deadlock- and
//! livelock-free (Theorems 1–4); `wavesim-verify` *detects* violations at
//! runtime. This crate closes the gap with an exhaustive explicit-state
//! model checker over the protocol automata — probe/MB backtracking, the
//! CLRP three-phase handshake (Force victim chains, the §4 no-wait rule,
//! concurrent-release discards), CARP establish/teardown, and the
//! fault/RetryWait paths — plus an adversarial schedule fuzzer for
//! configurations too big to enumerate.
//!
//! The pieces:
//!
//! * [`spec`] — a scenario description ([`ModelSpec`]: topology, protocol,
//!   message set, optional lane fault) compiled to a dense lane index
//!   ([`ModelCtx`]), and the deliberate *mutations* that re-introduce
//!   known-unsafe behavior so the checker can prove it is not vacuous;
//! * [`state`] — the canonicalized, hashable [`ModelState`] abstracted
//!   from core's lane/circuit/probe state;
//! * [`step`] — the transition enumerator: every enabled protocol or
//!   fabric [`Action`] per state, and its deterministic application;
//! * [`explore`] — BFS with a seen-set and a resumable frontier
//!   (checkpointing), stuck-state deadlock detection cross-checked against
//!   [`wavesim_verify::deadlock::find_wait_cycle`], and lasso livelock
//!   search over the shared [`wavesim_verify::ProgressMeasure`];
//! * [`mod@fuzz`] — random interleavings + fault churn with delta-debugging
//!   shrinking on violation;
//! * [`replay`] — counterexample schedules replayed through the real
//!   [`wavesim_core::WaveNetwork`], emitted as JSONL / WSTRACE1 traces
//!   that `wavesim analyze`, `validate-trace`, and Perfetto accept.
//!
//! The abstraction is deliberately coarser than the simulator: one
//! atomic action per protocol step, no misrouting budget (MB-0), and the
//! wormhole fall-back plane modeled as a reliable delivery oracle — sound
//! for the safety/liveness properties here because the fall-back routing
//! function is certified deadlock-free separately (the explorer re-checks
//! that certificate before trusting the oracle).

#![warn(missing_docs)]

pub mod explore;
pub mod fuzz;
pub mod replay;
pub mod spec;
pub mod state;
pub mod step;

pub use explore::{check, CheckOutcome, Counterexample, Explorer, ViolationKind};
pub use fuzz::{fuzz, shrink, FuzzConfig, FuzzOutcome};
pub use replay::{replay_schedule, Replay};
pub use spec::{FaultSpec, ModelCtx, ModelProtocol, ModelSpec, Mutation};
pub use state::{CircSt, LaneSt, ModelState, Phase, ProbeSt};
pub use step::Action;
