//! Adversarial schedule fuzzing with shrinking.
//!
//! The exhaustive explorer caps out at a few messages on a 2x2/3x3
//! fabric; beyond that, [`fuzz`] drives long random interleavings (plus
//! random fault placement — fault churn) through the same transition
//! relation and checks the same properties per step:
//!
//! * **deadlock** — pending work with no enabled protocol action, or a
//!   circular wait among parked probes
//!   ([`wavesim_verify::deadlock::find_wait_cycle`]);
//! * **livelock** — an *exact state revisit* with pending work. Because
//!   [`crate::step::apply`] is deterministic, revisiting a state proves a
//!   reachable cycle, so this is a sound lasso certificate, not a
//!   heuristic;
//! * **structural consistency** — [`crate::state::ModelState::consistent`]
//!   must hold after every action (a failure is a model bug, reported as
//!   a panic, not a protocol violation).
//!
//! On violation the schedule is [`shrink`]-ed by greedy single-deletion
//! to a local minimum: drop one action, replay (skipping actions that are
//! no longer enabled), keep the deletion if the same kind of violation
//! still occurs.

use std::collections::HashMap;

use wavesim_sim::SimRng;
use wavesim_verify::deadlock::find_wait_cycle;

use crate::explore::{Counterexample, ViolationKind};
use crate::spec::{FaultSpec, ModelSpec};
use crate::state::ModelState;
use crate::step::{apply, enabled, Action};

/// Fuzzing parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; run `r` uses the deterministic split `seed ⊕ r`.
    pub seed: u64,
    /// Number of independent random runs.
    pub runs: u32,
    /// Step budget per run (runs usually quiesce much earlier).
    pub max_steps: u32,
    /// When the spec has no fault armed, arm a random lane fault per run
    /// (repairable half the time) — the fault-churn dimension.
    pub fault_churn: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 1,
            runs: 64,
            max_steps: 4_000,
            fault_churn: true,
        }
    }
}

/// What a fuzzing campaign found.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Runs completed (≤ `cfg.runs`; stops early on violation).
    pub runs: u32,
    /// Total actions applied across all runs.
    pub steps: u64,
    /// Runs that quiesced with every message delivered.
    pub clean_runs: u32,
    /// Runs that hit the step budget inconclusively.
    pub exhausted_runs: u32,
    /// The first violation, already shrunk, with the spec variant (fault
    /// placement) that produced it.
    pub violation: Option<(ModelSpec, Counterexample)>,
}

impl FuzzOutcome {
    /// The CLI verdict line.
    #[must_use]
    pub fn verdict(&self) -> String {
        match &self.violation {
            Some((_, cx)) => format!(
                "VIOLATION ({}): shrunk counterexample of {} steps (fingerprint {:#018x})",
                cx.kind.name(),
                cx.schedule.len(),
                cx.fingerprint
            ),
            None => format!(
                "OK: {} runs, {} steps, {} clean, {} budget-capped — no violation",
                self.runs, self.steps, self.clean_runs, self.exhausted_runs
            ),
        }
    }
}

/// One random walk. Returns `(steps, Ok(clean) | Err(counterexample))`
/// where `clean = true` means quiescent with all messages delivered.
fn run_once(
    spec: &ModelSpec,
    rng: &mut SimRng,
    max_steps: u32,
) -> (u64, Result<bool, Counterexample>) {
    let ctx = spec.compile();
    let mut s = ModelState::initial(&ctx);
    let mut schedule: Vec<Action> = Vec::new();
    let mut seen: HashMap<ModelState, usize> = HashMap::new();
    seen.insert(s.clone(), 0);
    for _ in 0..max_steps {
        if let Err(problem) = s.consistent(&ctx) {
            panic!("model inconsistency after {:?}: {problem}", schedule.last());
        }
        let acts = enabled(&ctx, &s);
        let stuck = s.has_pending_work() && !acts.iter().any(|a| a.is_protocol());
        let wait_cycle = find_wait_cycle(&s.wait_edges());
        if stuck || wait_cycle.is_some() {
            let cx = Counterexample {
                kind: ViolationKind::Deadlock { wait_cycle },
                schedule: schedule.clone(),
                loop_start: None,
                fingerprint: s.fingerprint(),
            };
            return (schedule.len() as u64, Err(cx));
        }
        if acts.is_empty() {
            return (schedule.len() as u64, Ok(s.all_delivered()));
        }
        let a = *rng.choose(&acts).expect("non-empty action set");
        s = apply(&ctx, &s, a);
        schedule.push(a);
        if s.has_pending_work() {
            if let Some(&first) = seen.get(&s) {
                // Deterministic transitions: an exact revisit proves the
                // segment [first..] is a repeatable loop.
                let cx = Counterexample {
                    kind: ViolationKind::Livelock,
                    schedule: schedule.clone(),
                    loop_start: Some(first),
                    fingerprint: s.fingerprint(),
                };
                return (schedule.len() as u64, Err(cx));
            }
        }
        seen.insert(s.clone(), schedule.len());
    }
    (u64::from(max_steps), Ok(false))
}

/// Replays `schedule` (skipping actions that are no longer enabled) and
/// reports whether a violation of `kind`'s coarse class still occurs.
fn violates(spec: &ModelSpec, schedule: &[Action], kind: &ViolationKind) -> bool {
    let ctx = spec.compile();
    let mut s = ModelState::initial(&ctx);
    let mut seen: HashMap<ModelState, usize> = HashMap::new();
    seen.insert(s.clone(), 0);
    let want_livelock = matches!(kind, ViolationKind::Livelock);
    for (i, a) in schedule.iter().enumerate() {
        if !enabled(&ctx, &s).contains(a) {
            continue;
        }
        s = apply(&ctx, &s, *a);
        if want_livelock && s.has_pending_work() && seen.contains_key(&s) {
            return true;
        }
        seen.insert(s.clone(), i + 1);
    }
    if want_livelock {
        return false;
    }
    let acts = enabled(&ctx, &s);
    let stuck = s.has_pending_work() && !acts.iter().any(|a| a.is_protocol());
    stuck || find_wait_cycle(&s.wait_edges()).is_some()
}

/// Greedy delta-debugging: removes one action at a time while the same
/// kind of violation persists; runs to a single-deletion fixpoint.
#[must_use]
pub fn shrink(spec: &ModelSpec, cx: &Counterexample) -> Counterexample {
    let mut best = cx.schedule.clone();
    debug_assert!(
        violates(spec, &best, &cx.kind),
        "counterexample must replay"
    );
    let mut improved = true;
    while improved {
        improved = false;
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if violates(spec, &candidate, &cx.kind) {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
    }
    // Recompute the landing state (and for livelocks the loop entry) by
    // replaying the shrunk schedule.
    let ctx = spec.compile();
    let mut s = ModelState::initial(&ctx);
    let mut seen: HashMap<ModelState, usize> = HashMap::new();
    let mut loop_start = None;
    let mut kept = Vec::with_capacity(best.len());
    seen.insert(s.clone(), 0);
    for a in &best {
        if !enabled(&ctx, &s).contains(a) {
            continue;
        }
        s = apply(&ctx, &s, *a);
        kept.push(*a);
        if loop_start.is_none() && s.has_pending_work() {
            if let Some(&first) = seen.get(&s) {
                loop_start = Some(first);
            }
        }
        seen.insert(s.clone(), kept.len());
    }
    Counterexample {
        kind: cx.kind.clone(),
        schedule: kept,
        loop_start,
        fingerprint: s.fingerprint(),
    }
}

/// Runs a fuzzing campaign against `spec`. Deterministic in
/// `cfg.seed` — CI replays are exact.
#[must_use]
pub fn fuzz(spec: &ModelSpec, cfg: &FuzzConfig) -> FuzzOutcome {
    let mut out = FuzzOutcome {
        runs: 0,
        steps: 0,
        clean_runs: 0,
        exhausted_runs: 0,
        violation: None,
    };
    for r in 0..cfg.runs {
        let mut rng = SimRng::new(cfg.seed).split(u64::from(r));
        let mut variant = spec.clone();
        if cfg.fault_churn && variant.fault.is_none() {
            let lanes = variant.compile().lane_count() as u64;
            variant.fault = Some(FaultSpec {
                lane: rng.below(lanes) as u16,
                repair: rng.chance(0.5),
            });
        }
        let (steps, res) = run_once(&variant, &mut rng, cfg.max_steps);
        out.runs += 1;
        out.steps += steps;
        match res {
            Ok(true) => out.clean_runs += 1,
            Ok(false) => out.exhausted_runs += 1,
            Err(cx) => {
                let shrunk = shrink(&variant, &cx);
                out.violation = Some((variant, shrunk));
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ModelProtocol, Mutation};
    use wavesim_topology::Topology;

    #[test]
    fn correct_clrp_fuzzes_clean_under_fault_churn() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 2)
            .msg(0, 3)
            .msg(3, 0)
            .msg(1, 2);
        let out = fuzz(
            &spec,
            &FuzzConfig {
                seed: 7,
                runs: 40,
                max_steps: 4_000,
                fault_churn: true,
            },
        );
        assert!(out.violation.is_none(), "{}", out.verdict());
        assert!(
            out.clean_runs > 0,
            "some runs must drain: {}",
            out.verdict()
        );
        assert_eq!(out.exhausted_runs, 0, "{}", out.verdict());
    }

    #[test]
    fn fuzzer_finds_and_shrinks_drop_release() {
        let spec = ModelSpec::new(Topology::mesh(&[2, 2]), ModelProtocol::Clrp, 1)
            .msg(0, 1)
            .msg(2, 3)
            .msg(0, 3)
            .mutate(Mutation::DropRelease);
        let out = fuzz(
            &spec,
            &FuzzConfig {
                seed: 3,
                runs: 200,
                max_steps: 2_000,
                fault_churn: false,
            },
        );
        let (variant, cx) = out.violation.expect("fuzzer must hit the deadlock");
        assert!(matches!(cx.kind, ViolationKind::Deadlock { .. }));
        // Shrunk and still violating.
        assert!(violates(&variant, &cx.schedule, &cx.kind));
        for i in 0..cx.schedule.len() {
            let mut c = cx.schedule.clone();
            c.remove(i);
            assert!(
                !violates(&variant, &c, &cx.kind),
                "schedule not 1-minimal at {i}"
            );
        }
    }
}
